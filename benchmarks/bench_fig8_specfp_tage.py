"""Figure 8: SPECfp IPC with the TAGE predictor.

Paper headline: fp register pressure bites — the MSP beats CPR only
with 64 registers per bank; low-stall programs (fma3d) favour even the
8-SP, while tight stencil kernels (swim, mgrid, equake) stall hard.
"""

from conftest import run_once

from repro.sim import experiments
from repro.workloads import SPECFP


def test_fig8_specfp_tage(benchmark):
    result = run_once(benchmark, experiments.figure8)
    print()
    print(result.to_table())
    for machine in result.machines:
        if machine != "CPR-192":
            ratio = result.speedup_over(machine, "CPR-192")
            print(f"{machine:>12s} vs CPR: {100 * (ratio - 1):+5.1f}%")
    stalls = experiments.bank_stalls(predictor="tage", suite=SPECFP)
    print("16-SP bank-stall cycles (top registers):")
    for bench, rows in stalls.items():
        print(f"  {bench:10s} {rows}")
    # The Fig. 8 ordering: small banks hurt fp workloads.
    assert result.mean_ipc("8-SP+Arb") < result.mean_ipc("CPR-192")
    # fma3d is the published low-stall exception: 8-SP >= CPR there.
    if "fma3d" in result.stats:
        assert result.ipc("fma3d", "8-SP+Arb") >= \
            0.95 * result.ipc("fma3d", "CPR-192")
