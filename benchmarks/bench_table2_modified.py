"""Table II: IPC for hand-modified benchmarks with the TAGE predictor.

The paper unrolled/re-register-allocated 1-3 hot loops in bzip2, twolf,
swim, mgrid and equake; the modified versions recover most of the n-SP
bank-stall losses while CPR and the ideal MSP barely move.
"""

from conftest import run_once

from repro.sim import experiments


def test_table2_modified_kernels(benchmark):
    rows = run_once(benchmark, experiments.table2)
    print()
    header = f"{'kernel/version':38s} {'unrl':>4s} {'%t':>3s} " \
             f"{'CPR-192':>8s} {'8-SP+Arb':>9s} {'16-SP+Arb':>10s} " \
             f"{'ideal-MSP':>10s}"
    print(header)
    for key, row in rows.items():
        print(f"{key:38s} {row['loops_unrolled']:4d} "
              f"{row['exec_time_pct']:3d} {row['CPR-192']:8.3f} "
              f"{row['8-SP+Arb']:9.3f} {row['16-SP+Arb']:10.3f} "
              f"{row['ideal-MSP']:10.3f}")
    # The paper's direction: modification helps the n-SP machines.
    gains = []
    for base in ("bzip2.generateMTFValues", "swim.calc3", "mgrid.resid",
                 "equake.smvp", "twolf.new_dbox_a"):
        original = rows[f"{base}/original"]["16-SP+Arb"]
        modified = rows[f"{base}/modified"]["16-SP+Arb"]
        gains.append(modified / original if original else 1.0)
    assert sum(gains) / len(gains) > 1.0
