"""Simulator throughput: committed instructions per wall-clock second.

Not a paper figure — this tracks the *performance trajectory* of the
simulator itself across PRs (the ``BENCH_*.json`` the driver records).
Four modes are measured on the same workload/machine via
:mod:`repro.sim.bench` (the same engine behind ``repro bench``):

* ``emulator``   — the fast functional interpreter
  (``Emulator.run_fast``, the sampled engine's fast-forward ceiling);
* ``ff+warmup``  — ``run_fast`` with the warm-up engine fused in
  (what fast-forward actually costs);
* ``detailed``   — the cycle-level core (full-detail cost);
* ``sampled``    — the complete sampled engine, reported as
  *represented* instructions per second (its whole point is that this
  exceeds the detailed rate).

Each rate lands in pytest-benchmark's ``extra_info`` so that JSON
artifact carries instructions/second per machine, and the module
writes the machine-readable ``BENCH_throughput.json`` trajectory
record (inst/s per mode, budgets, git SHA) once all four modes have
run.
"""

import os
from datetime import datetime, timezone

import pytest
from conftest import run_once

from repro.sim import bench

WORKLOAD = "gzip"
EMULATE_N = 200_000
DETAIL_N = 20_000
SAMPLED_N = 200_000

#: Where the trajectory record lands (repo root by default).
BENCH_JSON = os.environ.get(
    "REPRO_BENCH_JSON",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "BENCH_throughput.json"))

_collected = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """After the module's tests, write the trajectory artifact —
    only when every mode was measured (partial -k runs must not
    clobber the record with an incomplete one), and never over an
    existing record it would *regress*: like ``repro bench --check``,
    persisting a slower measurement would silently lower the CI
    gate's floor and make a real regression self-ratifying.  (These
    single-shot pytest rates carry no priming/best-of, so on a loaded
    machine the guard simply leaves the committed record alone.)"""
    yield
    if not set(bench.MODES) <= set(_collected):
        return
    record = {
        "schema": bench.SCHEMA,
        "workload": WORKLOAD,
        "git_sha": bench.git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "budgets": {"emulate": EMULATE_N, "detail": DETAIL_N,
                    "sampled": SAMPLED_N},
        "modes": dict(_collected),
    }
    try:
        existing = bench.load_json(BENCH_JSON)
    except (OSError, ValueError):
        existing = None
    failures = (bench.check_regressions(record, existing)
                if existing else [])
    if failures:
        print(f"\nnot overwriting {BENCH_JSON}: {'; '.join(failures)}")
        return
    bench.write_json(BENCH_JSON, record)
    print(f"\nwrote {BENCH_JSON}")


def _measure(benchmark, mode):
    row = run_once(benchmark, bench.measure_mode, mode, WORKLOAD,
                   EMULATE_N, DETAIL_N, SAMPLED_N)
    _collected[mode] = row
    benchmark.extra_info["instructions_per_second"] = \
        row["instructions_per_second"]
    print(f"\n{mode}: {row['instructions_per_second']:,.0f} inst/s")
    return row


def test_throughput_emulator(benchmark):
    row = _measure(benchmark, "emulator")
    assert row["instructions"] == EMULATE_N


def test_throughput_fastforward_with_warmup(benchmark):
    _measure(benchmark, "ff+warmup")


def test_throughput_detailed(benchmark):
    _measure(benchmark, "detailed")


def test_throughput_sampled(benchmark):
    row = _measure(benchmark, "sampled")
    benchmark.extra_info["represented_instructions_per_second"] = \
        row["instructions_per_second"]
    benchmark.extra_info["detail_instructions"] = \
        row["detail_instructions"]
    print(f"sampled detail cost: {row['detail_instructions']:,d} of "
          f"{row['instructions']:,d} represented")
    # The reason this subsystem exists: a sampled run must cycle-
    # simulate several times fewer instructions than it represents.
    assert row["detail_instructions"] * 5 <= row["instructions"]
