"""Simulator throughput: committed instructions per wall-clock second.

Not a paper figure — this tracks the *performance trajectory* of the
simulator itself across PRs (the ``BENCH_*.json`` the driver records).
Four modes are measured on the same workload/machine:

* ``emulator``   — the functional reference interpreter (the sampled
  engine's fast-forward ceiling);
* ``ff+warmup``  — the emulator with the warm-up observer attached
  (what fast-forward actually costs);
* ``detailed``   — the cycle-level core (full-detail cost);
* ``sampled``    — the complete sampled engine, reported as
  *represented* instructions per second (its whole point is that this
  exceeds the detailed rate).

Each rate lands in pytest-benchmark's ``extra_info`` so the JSON
artifact carries instructions/second per machine, not just seconds.
"""

import time

from conftest import run_once

from repro.isa import Emulator
from repro.sim import SimConfig, simulate
from repro.sim.sampling import WarmupEngine
from repro.workloads import get_program

WORKLOAD = "gzip"
EMULATE_N = 200_000
DETAIL_N = 20_000
SAMPLED_N = 200_000


def _rate(instructions, seconds):
    return instructions / seconds if seconds else 0.0


def test_throughput_emulator(benchmark):
    program = get_program(WORKLOAD)

    def run():
        t0 = time.perf_counter()
        result = Emulator(program).run(max_instructions=EMULATE_N)
        return result.retired, time.perf_counter() - t0

    retired, elapsed = run_once(benchmark, run)
    rate = _rate(retired, elapsed)
    benchmark.extra_info["instructions_per_second"] = rate
    print(f"\nemulator: {rate:,.0f} inst/s")
    assert retired == EMULATE_N


def test_throughput_fastforward_with_warmup(benchmark):
    program = get_program(WORKLOAD)
    config = SimConfig.baseline(predictor="tage")

    def run():
        emulator = Emulator(program)
        emulator.observer = WarmupEngine(config, program)
        t0 = time.perf_counter()
        result = emulator.run(max_instructions=EMULATE_N)
        return result.retired, time.perf_counter() - t0

    retired, elapsed = run_once(benchmark, run)
    rate = _rate(retired, elapsed)
    benchmark.extra_info["instructions_per_second"] = rate
    print(f"\nff+warmup: {rate:,.0f} inst/s")


def test_throughput_detailed(benchmark):
    program = get_program(WORKLOAD)

    def run():
        t0 = time.perf_counter()
        stats = simulate(program, SimConfig.baseline(predictor="tage"),
                         max_instructions=DETAIL_N)
        return stats.committed, time.perf_counter() - t0

    committed, elapsed = run_once(benchmark, run)
    rate = _rate(committed, elapsed)
    benchmark.extra_info["instructions_per_second"] = rate
    print(f"\ndetailed: {rate:,.0f} inst/s")


def test_throughput_sampled(benchmark):
    program = get_program(WORKLOAD)

    def run():
        t0 = time.perf_counter()
        stats = simulate(program, SimConfig.baseline(predictor="tage"),
                         max_instructions=SAMPLED_N, sampling=True)
        return stats, time.perf_counter() - t0

    stats, elapsed = run_once(benchmark, run)
    represented = _rate(stats.committed, elapsed)
    benchmark.extra_info["represented_instructions_per_second"] = \
        represented
    benchmark.extra_info["detail_instructions"] = \
        stats.detail_instructions
    print(f"\nsampled: {represented:,.0f} represented inst/s "
          f"({stats.detail_instructions:,d} detailed of "
          f"{stats.committed:,d} represented)")
    # The reason this subsystem exists: a sampled run must cycle-
    # simulate several times fewer instructions than it represents.
    assert stats.detail_instructions * 5 <= stats.committed
