"""Object vs structure-of-arrays in-flight state: the window-churn
micro-benchmark behind the SoA refactor.

Not a paper figure — this isolates the data-layout decision the
detailed cores are built on.  Both legs run the same synthetic pipeline
churn (allocate a fetch group, wire dependencies, issue/read operands,
write back, recycle the slot) over the same ring capacity and
instruction count; the only difference is the in-flight representation:

* ``object`` — one slotted Python object per dynamic instruction (the
  pre-refactor ``DynInst`` shape): every stage pays an attribute
  access per field.
* ``soa``    — the live :class:`repro.pipeline.window.InflightWindow`
  columns indexed by ``seq & mask``: every stage pays a C-speed list
  index per field.

The printed ratio is the claim to watch; the assertion only guards
direction (SoA must not be slower), since the magnitude is
machine-dependent.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.pipeline.window import InflightWindow

INSTRUCTIONS = 200_000
CAPACITY = 1024
GROUP = 4


class _DynInst:
    """The pre-refactor per-instruction record (representative subset
    of the old DynInst: the fields every stage touched)."""

    __slots__ = ("seq", "pc", "issued", "completed", "squashed",
                 "h0", "h1", "wait_count", "dest", "result",
                 "earliest_issue", "finish")

    def __init__(self, seq: int, pc: int) -> None:
        self.seq = seq
        self.pc = pc
        self.issued = False
        self.completed = False
        self.squashed = False
        self.h0 = 0
        self.h1 = 0
        self.wait_count = 0
        self.dest = 0
        self.result = 0
        self.earliest_issue = 0
        self.finish = 0


def churn_objects(n: int = INSTRUCTIONS) -> int:
    """Fetch/dispatch/issue/writeback/commit field traffic, object leg."""
    ring = [None] * CAPACITY
    mask = CAPACITY - 1
    checksum = 0
    for seq in range(n):
        di = _DynInst(seq, seq & 0xFFF)          # fetch: allocate
        ring[seq & mask] = di
        di.h0 = seq & 63                         # dispatch: wire deps
        di.h1 = (seq >> 2) & 63
        di.dest = seq & 127
        di.wait_count = 2
        di.earliest_issue = seq
        di.wait_count = 0                        # wakeup
        di.issued = True                         # issue: read operands
        di.result = di.h0 + di.h1
        di.finish = di.earliest_issue + 3
        di.completed = True                      # writeback
        older = ring[(seq - GROUP) & mask]       # commit: retire older
        if older is not None and older.completed and not older.squashed:
            checksum += older.result
    return checksum


def churn_soa(n: int = INSTRUCTIONS) -> int:
    """The same field traffic through the live SoA window columns."""
    w = InflightWindow(CAPACITY)
    mask = w.mask
    sq, pc, st = w.sq, w.pc, w.st
    h0, h1, wc = w.h0, w.h1, w.wc
    dest, res = w.dest, w.res
    eic, fin = w.eic, w.fin
    checksum = 0
    for seq in range(n):
        slot = seq & mask
        sq[slot] = seq                           # fetch: claim slot
        pc[slot] = seq & 0xFFF
        st[slot] = 0
        h0[slot] = seq & 63                      # dispatch: wire deps
        h1[slot] = (seq >> 2) & 63
        dest[slot] = seq & 127
        wc[slot] = 2
        eic[slot] = seq
        wc[slot] = 0                             # wakeup
        st[slot] = 1                             # issue: read operands
        res[slot] = h0[slot] + h1[slot]
        fin[slot] = eic[slot] + 3
        st[slot] = 1 | 2                         # writeback
        older = (seq - GROUP) & mask             # commit: retire older
        if sq[older] >= 0 and st[older] & 2 and not st[older] & 4:
            checksum += res[older]
    return checksum


def _time(fn) -> float:
    best = None
    for _ in range(3):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_backend_window_churn(benchmark):
    assert churn_objects(5_000) == churn_soa(5_000)  # same traffic
    obj = _time(churn_objects)
    soa = _time(churn_soa)
    run_once(benchmark, churn_soa)
    print()
    print(f"object leg: {obj * 1e3:8.1f} ms "
          f"({INSTRUCTIONS / obj:,.0f} inst/s)")
    print(f"soa leg:    {soa * 1e3:8.1f} ms "
          f"({INSTRUCTIONS / soa:,.0f} inst/s)")
    print(f"soa speedup over per-instruction objects: {obj / soa:.2f}x")
    # Directional guard only — magnitude is machine-dependent.
    assert soa <= obj * 1.10
