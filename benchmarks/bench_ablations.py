"""Ablation benches for the design-choice claims in the text.

* Sec. 3.2.2 — LCS propagation delay: "even a 4-cycle LCS computation
  degrades performance by less than 1% compared to a 1-cycle
  computation".
* Sec. 3.3 — renaming bandwidth per bank: "allowing only one
  [same-logical-register rename per cycle] leads to a 5% reduction in
  IPC", while three or more adds nothing over two.
* Sec. 4.3 — CPR register count: "CPR with 256 registers has a 1% IPC
  improvement and with 512 registers a 1.3% improvement", so the MSP's
  win is not its larger register file.
"""

from conftest import run_once

from repro.sim import experiments


def test_ablation_lcs_delay(benchmark):
    result = run_once(benchmark, experiments.ablation_lcs_delay)
    print()
    print(result.to_table())
    fast, slow = result.mean_ipc("lcs=0"), result.mean_ipc("lcs=4")
    degradation = 1 - slow / fast if fast else 0
    print(f"4-cycle vs 0-cycle LCS degradation: {100 * degradation:.2f}% "
          f"(paper: <1% vs 1-cycle)")
    assert degradation < 0.05


def test_ablation_same_register_rename_width(benchmark):
    result = run_once(benchmark, experiments.ablation_rename_width)
    print()
    print(result.to_table())
    one = result.mean_ipc("renames=1")
    two = result.mean_ipc("renames=2")
    three = result.mean_ipc("renames=3")
    print(f"1-per-cycle loss vs 2: {100 * (1 - one / two):.1f}% "
          f"(paper ~5%); 3-per-cycle gain over 2: "
          f"{100 * (three / two - 1):.2f}% (paper ~0%)")
    # Tolerances absorb short-run noise; the claim is directional.
    assert one <= two * 1.02
    assert abs(three - two) / two < 0.03


def test_ablation_arbitration_cost(benchmark):
    """Sec. 5.1: the banked 1R/1W file's arbitration stage is the price
    of its power/area wins; it must cost only a few percent IPC (the
    paper's 16-SP+Arb still beats CPR with it enabled)."""
    result = run_once(benchmark, experiments.ablation_arbitration)
    print()
    print(result.to_table())
    arb = result.mean_ipc("16-SP+Arb")
    full = result.mean_ipc("16-SP-fullport")
    print(f"arbitration cost: {100 * (1 - arb / full):.2f}% IPC")
    assert arb <= full * 1.01
    assert arb >= full * 0.85


def test_ablation_cpr_register_count(benchmark):
    result = run_once(benchmark, experiments.ablation_cpr_registers)
    print()
    print(result.to_table())
    base = result.mean_ipc("CPR-192")
    for label in ("CPR-256", "CPR-512"):
        gain = result.mean_ipc(label) / base - 1
        print(f"{label} vs CPR-192: {100 * gain:+.2f}% "
              f"(paper: +1% / +1.3%)")
    assert result.mean_ipc("CPR-512") < base * 1.10
