"""Figure 7: SPECint IPC with the TAGE predictor.

Paper headline: with the aggressive predictor CPR closes most of the
gap — 8-SP averages ~10% below CPR and 16-SP+Arb ~1% above.
"""

from conftest import run_once

from repro.sim import experiments


def test_fig7_specint_tage(benchmark):
    result = run_once(benchmark, experiments.figure7)
    print()
    print(result.to_table())
    for machine in result.machines:
        if machine != "CPR-192":
            ratio = result.speedup_over(machine, "CPR-192")
            print(f"{machine:>12s} vs CPR: {100 * (ratio - 1):+5.1f}%")
    stalls = experiments.bank_stalls(predictor="tage")
    print("16-SP bank-stall cycles (top registers):")
    for bench, rows in stalls.items():
        print(f"  {bench:10s} {rows}")
    assert result.mean_ipc("ideal-MSP") >= result.mean_ipc("16-SP+Arb")
