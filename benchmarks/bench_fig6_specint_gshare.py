"""Figure 6: SPECint IPC with the gshare predictor.

Paper series: Baseline, CPR, 8/16/32/64/128-SP, ideal MSP — plus the
16-SP stall cycles from the registers contributing most.

Paper headline: 16-SP+Arb improves average IPC by 14% over CPR with
gshare; 8-SP by ~5%; 128-SP is indistinguishable from the ideal MSP.
"""

from conftest import run_once

from repro.sim import experiments


def test_fig6_specint_gshare(benchmark):
    result = run_once(benchmark, experiments.figure6)
    print()
    print(result.to_table())
    for machine in result.machines:
        if machine != "CPR-192":
            ratio = result.speedup_over(machine, "CPR-192")
            print(f"{machine:>12s} vs CPR: {100 * (ratio - 1):+5.1f}%")
    stalls = experiments.bank_stalls(predictor="gshare")
    print("16-SP bank-stall cycles (top registers):")
    for bench, rows in stalls.items():
        print(f"  {bench:10s} {rows}")
    assert result.mean_ipc("ideal-MSP") >= result.mean_ipc("8-SP+Arb")
