"""Table III: register-file access power (mW) and access time (FO4),
plus the Sec. 5.1 area comparison.

Paper headline: the MSP's 512-entry, 32-bank, 1R/1W register file beats
CPR's 192-entry fully-ported banks on both power and access time, and a
512-entry 1R/1W file is half the area of a 256-entry fully-ported one.
"""

from conftest import run_once

from repro.power import section51_area, table3

PAPER = {
    "65nm": {
        "CPR 192x64b 4 banks 8R/4W": (4.75, 1.06, 4.50, 5.51),
        "CPR 192x64b 8 banks 8R/4W": (2.75, 1.06, 2.65, 5.51),
        "16-SP 512x64b 32 banks 1R/1W": (2.05, 0.85, 2.10, 4.44),
    },
    "45nm": {
        "CPR 192x64b 4 banks 8R/4W": (3.30, 1.29, 2.60, 6.11),
        "CPR 192x64b 8 banks 8R/4W": (2.10, 1.29, 2.10, 6.11),
        "16-SP 512x64b 32 banks 1R/1W": (2.00, 1.11, 1.65, 5.92),
    },
}


def test_table3_regfile_power_and_timing(benchmark):
    result = run_once(benchmark, table3)
    print()
    for tech, rows in result.items():
        print(tech)
        for config, row in rows.items():
            paper = PAPER[tech][config]
            print(f"  {config:32s} "
                  f"W {row['write_power_mw']:.2f}mW|"
                  f"{row['write_time_fo4']:.2f}  "
                  f"R {row['read_power_mw']:.2f}mW|"
                  f"{row['read_time_fo4']:.2f}  "
                  f"(paper W {paper[0]}|{paper[1]}  "
                  f"R {paper[2]}|{paper[3]})")
        # Orderings the paper draws its conclusion from.
        msp = rows["16-SP 512x64b 32 banks 1R/1W"]
        cpr8 = rows["CPR 192x64b 8 banks 8R/4W"]
        cpr4 = rows["CPR 192x64b 4 banks 8R/4W"]
        for key in ("write_power_mw", "read_power_mw",
                    "write_time_fo4", "read_time_fo4"):
            assert msp[key] < cpr8[key] <= cpr4[key] * 1.001

    area = section51_area()
    print(f"Sec 5.1 area at 45nm: MSP 512 banked = "
          f"{area['msp_512_banked_mm2']:.3f} mm^2 (paper 0.1), "
          f"CPR 256 fully ported = "
          f"{area['cpr_256_fullport_mm2']:.3f} mm^2 (paper 0.21)")
    assert area["msp_512_banked_mm2"] < area["cpr_256_fullport_mm2"]
