"""SimPoint calibration: clustered vs periodic vs full-detail IPC.

Not a paper figure — this reproduces the "SimPoint calibration" table
of EXPERIMENTS.md: on the quick SPECint grid, per-machine harmonic-mean
IPC of full detail, periodic sampling and simpoint sampling at the same
represented budget, plus each schedule's detailed-instruction cost (the
quantity simpoint exists to cut).

Budget knobs: ``REPRO_SIMPOINT_BUDGET`` (default 100000 — the PR 2
calibration budget; lower it for a faster smoke run).
"""

import os
from statistics import harmonic_mean

from conftest import run_once

from repro.sim import SimConfig, simulate
from repro.sim.sampling import SamplingParams
from repro.workloads import SPECINT

BENCHMARKS = SPECINT[::3]                      # the quick-mode set
BUDGET = int(os.environ.get("REPRO_SIMPOINT_BUDGET", "100000"))

MACHINES = (
    ("Baseline", lambda: SimConfig.baseline(predictor="tage")),
    ("CPR-192", lambda: SimConfig.cpr(predictor="tage")),
    ("16-SP", lambda: SimConfig.msp(16, predictor="tage")),
)

SCHEDULES = (
    ("full", None),
    ("periodic", True),
    ("simpoint", SamplingParams(mode="simpoint")),
)


def _measure():
    table = {}
    for label, make_config in MACHINES:
        config = make_config()
        rows = {}
        for schedule, sampling in SCHEDULES:
            ipcs, detail = [], 0
            for workload in BENCHMARKS:
                stats = simulate(workload, config,
                                 max_instructions=BUDGET,
                                 sampling=sampling)
                ipcs.append(stats.ipc)
                detail += (stats.detail_instructions if sampling
                           else stats.committed)
            rows[schedule] = (harmonic_mean(ipcs), detail)
        table[label] = rows
    return table


def test_simpoint_calibration(benchmark):
    table = run_once(benchmark, _measure)
    print()
    print(f"quick SPECint grid ({' '.join(BENCHMARKS)}), "
          f"TAGE, {BUDGET} represented instructions")
    print(f"{'machine':10s} {'full':>8s} {'periodic':>9s} {'err':>7s} "
          f"{'simpoint':>9s} {'err':>7s} {'reduction':>10s}")
    for label, rows in table.items():
        full, _ = rows["full"]
        per, per_detail = rows["periodic"]
        sp, sp_detail = rows["simpoint"]
        print(f"{label:10s} {full:8.4f} {per:9.4f} "
              f"{abs(per - full) / full:7.2%} {sp:9.4f} "
              f"{abs(sp - full) / full:7.2%} "
              f"{per_detail / sp_detail:9.2f}x")
        # The headline contract: detailed work drops >= 2x below
        # periodic sampling at equal represented budget (the IPC-error
        # discussion lives in EXPERIMENTS.md — mcf's data-driven
        # phases keep 16-SP above the 2% the other machines meet).
        assert sp_detail * 2 <= per_detail
