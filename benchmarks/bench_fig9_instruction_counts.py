"""Figure 9: total executed instructions for SPECint.

Per benchmark and machine (CPR and 16-SP under gshare and TAGE), the
stacked breakdown: correct-path executed, correct-path re-executed,
wrong-path executed.

Paper headline: the 16-SP executes 16.5% fewer instructions than CPR
with gshare (9.5% from precise recovery) and 12% fewer with TAGE.
"""

from conftest import run_once

from repro.sim import experiments


def test_fig9_executed_instruction_breakdown(benchmark):
    data = run_once(benchmark, experiments.figure9)
    print()
    for bench, cells in data.items():
        print(bench)
        for machine, row in cells.items():
            print(f"  {machine:18s} correct={row['correct_path']:7d} "
                  f"reexec={row['correct_path_reexecuted']:6d} "
                  f"wrong={row['wrong_path']:6d} "
                  f"total={row['total']:7d}")
    summary = experiments.figure9_summary(data)
    for predictor, reduction in summary.items():
        print(f"16-SP executes {100 * reduction:.1f}% fewer instructions "
              f"than CPR ({predictor})")
    # Shape assertions: MSP is precise (no correct-path re-execution)
    # and executes no more than CPR on average.
    for cells in data.values():
        for machine, row in cells.items():
            if machine.startswith("16-SP"):
                assert row["correct_path_reexecuted"] == 0
    assert summary["gshare"] > 0
