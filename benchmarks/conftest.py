"""Benchmark-harness helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports. Each experiment is run
once per session (``pedantic(rounds=1)``): the measured quantity is the
experiment's wall time; the scientific output is the printed report.

Environment knobs:

* ``REPRO_INSTRUCTIONS`` — committed instructions per simulation
  (default 3000).
* ``REPRO_BENCHSET=quick`` — trim benchmark lists and the n-SP sweep.
* ``REPRO_JOBS`` — campaign worker processes (the experiment harnesses
  shard their grids through :mod:`repro.sim.campaign`).

The persistent result cache is disabled here: a cache hit would time
the store lookup instead of the simulator, which is the quantity these
benchmarks exist to measure.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _no_result_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
