"""Recovery precision — the MSP's headline property (Secs. 1-2).

Runs a branchy workload on CPR with varying checkpoint budgets, and on
the MSP, tabulating the Fig. 9-style executed-instruction breakdown.
CPR discards and re-executes correct-path work whenever a misprediction
lands between checkpoints; the MSP's Recovery-StateId broadcast squashes
exactly the younger instructions, never older correct-path work.

Usage::

    python examples/recovery_precision.py
"""

from repro.sim import SimConfig, build_core
from repro.workloads import get_program

BUDGET = 5000


def run(config):
    core = build_core(get_program("vpr"), config)
    return core.run(max_instructions=BUDGET)


def main():
    print("vpr-like workload (near-50/50 branches), gshare predictor")
    print(f"{'machine':>26s} {'IPC':>7s} {'committed':>10s} "
          f"{'re-executed':>12s} {'wrong-path':>11s}")
    rows = [
        ("CPR, 2 checkpoints",
         SimConfig.cpr(predictor="gshare", checkpoints=2,
                       confidence_threshold=0)),
        ("CPR, 8 ckpts, no estimator",
         SimConfig.cpr(predictor="gshare", confidence_threshold=0)),
        ("CPR, 8 ckpts + estimator",
         SimConfig.cpr(predictor="gshare")),
        ("16-SP (precise recovery)",
         SimConfig.msp(16, predictor="gshare")),
    ]
    for label, config in rows:
        stats = run(config)
        print(f"{label:>26s} {stats.ipc:7.3f} {stats.committed:10d} "
              f"{stats.correct_path_reexecuted:12d} "
              f"{stats.wrong_path_executed:11d}")
    print("\nFewer checkpoints, or checkpoints placed away from the "
          "mispredicting branch,\nmean more correct-path work thrown "
          "away and redone. The MSP column is always 0.")


if __name__ == "__main__":
    main()
