"""Export figure data for external plotting.

Regenerates a reduced Figure 6 grid and writes it as CSV and Markdown —
the workflow a downstream user plotting the results in their own
toolchain would follow.

Usage::

    python examples/export_figure_data.py [output_dir]
"""

import os
import sys

from repro.sim import experiments
from repro.sim.report import result_to_rows, write_result


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    os.environ.setdefault("REPRO_INSTRUCTIONS", "2000")

    result = experiments.figure6(banks=[8, 16])
    csv_path = os.path.join(out_dir, "figure6.csv")
    md_path = os.path.join(out_dir, "figure6.md")
    write_result(result, csv_path, fmt="csv")
    write_result(result, md_path, fmt="md")

    print(result.to_table())
    print(f"\nwrote {csv_path} and {md_path}")
    rows = result_to_rows(result)
    best = max(rows, key=lambda b: rows[b]["ideal-MSP"])
    print(f"highest ideal-MSP IPC: {best} ({rows[best]['ideal-MSP']:.3f})")


if __name__ == "__main__":
    main()
