"""Register pressure and the Sec. 4.3 compiler fix.

The n-SP renames each logical register within its own fixed bank, so a
tight loop reusing one register stalls after n renamings in flight.
This example shows (1) the per-register stall attribution the right
bars of Figs. 6-8 report, and (2) Table II's remedy: unrolling the hot
loop with rotated destination registers.

Usage::

    python examples/register_pressure.py
"""

from repro.isa import reg_name
from repro.sim import SimConfig, build_core
from repro.workloads import get_program

BUDGET = 4000


def run(name, config):
    core = build_core(get_program(name), config)
    return core.run(max_instructions=BUDGET)


def main():
    print("swim's calc3 stencil (one fp accumulator + one fp temp), TAGE")
    print(f"{'machine':>12s} {'original':>9s} {'modified':>9s}")
    for config in (SimConfig.cpr(predictor="tage"),
                   SimConfig.msp(8, predictor="tage"),
                   SimConfig.msp(16, predictor="tage"),
                   SimConfig.msp(64, predictor="tage"),
                   SimConfig.msp_ideal(predictor="tage")):
        original = run("swim", config).ipc
        modified = run("swim_mod", config).ipc
        print(f"{config.label:>12s} {original:9.3f} {modified:9.3f}")

    stats = run("swim", SimConfig.msp(16, predictor="tage"))
    print("\n16-SP stall attribution on the original kernel:")
    for reg, cycles in stats.top_bank_stalls(3):
        print(f"  {reg_name(reg):>4s}: {cycles} stall cycles")
    print("\nUnrolling with rotated registers (the paper's hand "
          "modification) spreads renamings\nacross four banks and "
          "recovers most of the lost IPC — without helping CPR much.")


if __name__ == "__main__":
    main()
