"""Large-window latency masking — why these architectures exist.

Runs the mcf-like workload (streaming misses past the 1 MB L2, 380-cycle
memory latency) across window organisations: the baseline's 128-entry
ROB cannot hold enough independent misses in flight, while CPR and the
MSP overlap many more. Also sweeps the MSP bank size to show the
register file re-creating the window limit when banks are small.

Usage::

    python examples/latency_masking.py
"""

from repro.sim import SimConfig, simulate

BUDGET = 4000


def main():
    print("mcf-like workload: streaming memory misses, 380-cycle latency")
    print(f"{'machine':>12s} {'IPC':>7s}")
    configs = [
        SimConfig.baseline(predictor="tage"),
        SimConfig.cpr(predictor="tage"),
        SimConfig.msp(8, predictor="tage"),
        SimConfig.msp(16, predictor="tage"),
        SimConfig.msp(32, predictor="tage"),
        SimConfig.msp_ideal(predictor="tage"),
    ]
    baseline_ipc = None
    for config in configs:
        stats = simulate("mcf", config, max_instructions=BUDGET)
        if baseline_ipc is None:
            baseline_ipc = stats.ipc
        print(f"{config.label:>12s} {stats.ipc:7.3f} "
              f"({stats.ipc / baseline_ipc:4.2f}x baseline)")
    print("\nThe large-window machines overlap more memory misses; the")
    print("n-SP's reach grows with its per-logical-register bank size.")


if __name__ == "__main__":
    main()
