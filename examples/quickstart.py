"""Quickstart: build a tiny program, run it on all four machines.

Usage::

    python examples/quickstart.py
"""

from repro.isa import ProgramBuilder, int_reg
from repro.sim import SimConfig, simulate


def build_program():
    """A small kernel: sum an array, with a data-dependent branch."""
    b = ProgramBuilder("quickstart")
    data = b.data_region([(i * 13 + 5) % 97 for i in range(256)])
    out = b.reserve(1)
    r_i, r_n, r_base, r_even, r_odd = (int_reg(k) for k in range(1, 6))
    r_t, r_v, r_bit, r_one, r_out = (int_reg(k) for k in range(6, 11))

    b.li(r_base, data)
    b.li(r_out, out)
    b.li(r_n, 256)
    b.li(r_one, 1)
    b.li(r_i, 0)
    b.label("loop")
    b.add(r_t, r_base, r_i)
    b.ld(r_v, r_t, 0)
    b.and_(r_bit, r_v, r_one)
    b.beqz(r_bit, "even")          # data-dependent: mispredicts
    b.add(r_odd, r_odd, r_v)
    b.jmp("next")
    b.label("even")
    b.add(r_even, r_even, r_v)
    b.label("next")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "loop")
    b.add(r_t, r_even, r_odd)
    b.st(r_t, r_out, 0)
    b.li(r_i, 0)
    b.li(r_even, 0)
    b.li(r_odd, 0)
    b.jmp("loop")
    return b.build()


def main():
    program = build_program()
    machines = [
        SimConfig.baseline(predictor="gshare"),
        SimConfig.cpr(predictor="gshare"),
        SimConfig.msp(16, predictor="gshare"),
        SimConfig.msp_ideal(predictor="gshare"),
    ]
    print(f"{'machine':>12s} {'IPC':>7s} {'mispred':>8s} "
          f"{'re-executed':>12s} {'wrong-path':>11s}")
    for config in machines:
        stats = simulate(program, config, max_instructions=5000)
        print(f"{config.label:>12s} {stats.ipc:7.3f} "
              f"{stats.misprediction_rate:8.3f} "
              f"{stats.correct_path_reexecuted:12d} "
              f"{stats.wrong_path_executed:11d}")
    print("\nNote the CPR row: correct-path instructions re-executed after "
          "imprecise rollback.\nThe MSP rows recover precisely: zero "
          "re-execution.")


if __name__ == "__main__":
    main()
