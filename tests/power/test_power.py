"""Register-file power/timing/area model tests (Sec. 5, Table III)."""

import pytest

from repro.power import (
    BankGeometry,
    CPR_4BANK,
    CPR_8BANK,
    MSP_16SP,
    RegFileModel,
    SRAMBankModel,
    TECH_45NM,
    TECH_65NM,
    section51_area,
    table3,
)

PAPER_TABLE3 = {
    ("65nm", "CPR 192x64b 4 banks 8R/4W"): (4.75, 1.06, 4.50, 5.51),
    ("65nm", "CPR 192x64b 8 banks 8R/4W"): (2.75, 1.06, 2.65, 5.51),
    ("65nm", "16-SP 512x64b 32 banks 1R/1W"): (2.05, 0.85, 2.10, 4.44),
    ("45nm", "CPR 192x64b 4 banks 8R/4W"): (3.30, 1.29, 2.60, 6.11),
    ("45nm", "CPR 192x64b 8 banks 8R/4W"): (2.10, 1.29, 2.10, 6.11),
    ("45nm", "16-SP 512x64b 32 banks 1R/1W"): (2.00, 1.11, 1.65, 5.92),
}


def test_table3_orderings_msp_wins_everywhere():
    for tech, rows in table3().items():
        msp = rows["16-SP 512x64b 32 banks 1R/1W"]
        cpr4 = rows["CPR 192x64b 4 banks 8R/4W"]
        cpr8 = rows["CPR 192x64b 8 banks 8R/4W"]
        for key in msp:
            assert msp[key] < cpr4[key]
            assert msp[key] < cpr8[key]
        assert cpr8["read_power_mw"] < cpr4["read_power_mw"]


def test_table3_calibration_within_tolerance():
    """Absolute cells land within 35% of the paper's SPICE numbers
    (the fitted model; EXPERIMENTS.md records both)."""
    result = table3()
    for (tech, config), paper in PAPER_TABLE3.items():
        row = result[tech][config]
        measured = (row["write_power_mw"], row["write_time_fo4"],
                    row["read_power_mw"], row["read_time_fo4"])
        for got, want in zip(measured, paper):
            assert abs(got - want) / want < 0.35, \
                f"{tech}/{config}: {got:.2f} vs paper {want}"


def test_more_ports_cost_energy_and_time():
    small = SRAMBankModel(BankGeometry(16, 64, 1, 1), TECH_65NM)
    big = SRAMBankModel(BankGeometry(16, 64, 8, 4), TECH_65NM)
    assert big.read_energy_fj() > small.read_energy_fj()
    assert big.read_access_fo4() > small.read_access_fo4()
    assert big.area_mm2() > small.area_mm2()


def test_more_entries_cost_energy_and_time():
    small = SRAMBankModel(BankGeometry(16, 64, 1, 1), TECH_65NM)
    deep = SRAMBankModel(BankGeometry(256, 64, 1, 1), TECH_65NM)
    assert deep.read_energy_fj() > small.read_energy_fj()
    assert deep.read_access_fo4() > small.read_access_fo4()


def test_smaller_node_lower_dynamic_power():
    geo = BankGeometry(48, 64, 8, 4)
    assert (SRAMBankModel(geo, TECH_45NM).read_energy_fj()
            < SRAMBankModel(geo, TECH_65NM).read_energy_fj())


def test_total_power_uses_paper_equation():
    model = RegFileModel(MSP_16SP, TECH_65NM)
    bank = model.bank
    expected = (bank.access_power_mw(write=False)
                + (MSP_16SP.num_banks - 1) * bank.leakage_mw())
    assert model.total_access_power_mw(write=False) == pytest.approx(expected)


def test_write_faster_than_read():
    for config in (CPR_4BANK, CPR_8BANK, MSP_16SP):
        model = RegFileModel(config, TECH_65NM)
        assert model.access_time_fo4(write=True) < \
            model.access_time_fo4(write=False)


def test_section51_area_matches_paper_direction():
    area = section51_area()
    assert area["msp_512_banked_mm2"] == pytest.approx(0.1, rel=0.3)
    assert area["cpr_256_fullport_mm2"] == pytest.approx(0.21, rel=0.3)
    assert area["msp_512_banked_mm2"] < area["cpr_256_fullport_mm2"]
