"""Baseline ROB processor tests."""

from repro.isa import Emulator
from repro.sim import SimConfig, build_core


def run_baseline(program, budget=600, **overrides):
    config = SimConfig.baseline().with_(record_commits=True, **overrides)
    core = build_core(program, config)
    stats = core.run(max_instructions=budget)
    return core, stats


def test_commit_trace_matches_emulator(branchy_program):
    core, stats = run_baseline(branchy_program)
    emulator = Emulator(branchy_program, trace_pcs=True)
    reference = emulator.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace


def test_precise_branch_recovery(branchy_program):
    _, stats = run_baseline(branchy_program)
    assert stats.branch_mispredictions > 0
    assert stats.correct_path_reexecuted == 0


def test_retire_width_limits_commit(sum_loop_program):
    narrow = run_baseline(sum_loop_program, retire_width=1)[1]
    wide = run_baseline(sum_loop_program, retire_width=3)[1]
    assert wide.ipc >= narrow.ipc


def test_rob_bounds_window(fp_chain_program):
    small = run_baseline(fp_chain_program, rob_size=16)[1]
    large = run_baseline(fp_chain_program, rob_size=128)[1]
    assert large.ipc >= small.ipc


def test_free_list_conservation(sum_loop_program):
    core, _ = run_baseline(sum_loop_program)
    w, dec, mask = core.w, core._dec, core.w.mask
    referenced = set(core.rat) | set(core.arch_rat)
    referenced.update(w.dest[s & mask] for s in core.in_flight
                      if dec.wreg[w.pc[s & mask]])
    free = set(core.int_free) | set(core.fp_free)
    total = core.config.phys_int + core.config.phys_fp
    # Free and referenced partition the physical register file.
    assert not (free & referenced)
    assert len(free) + len(referenced) == total


def test_halting_program(halting_program):
    core, stats = run_baseline(halting_program, budget=100)
    assert core.done
    assert core.memory[halting_program.out_addr] == 42


def test_register_pressure_stalls_dispatch(fp_chain_program):
    core, stats = run_baseline(fp_chain_program, phys_int=40, phys_fp=40,
                               budget=400)
    assert stats.dispatch_stall_cycles.get("registers_full", 0) > 0
