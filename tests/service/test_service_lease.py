"""Lease table semantics (repro.sim.service.lease)."""

import pytest

from repro.sim import faults
from repro.sim.service.lease import LeaseTable, default_lease_ttl


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def test_grant_sets_deadline_one_ttl_out(clock):
    table = LeaseTable(ttl=5.0, clock=clock)
    lease = table.grant("k1", "w1")
    assert lease.deadline == pytest.approx(105.0)
    assert table.holder("k1") == "w1"
    assert len(table) == 1


def test_double_grant_rejected(clock):
    table = LeaseTable(ttl=5.0, clock=clock)
    table.grant("k1", "w1")
    with pytest.raises(ValueError):
        table.grant("k1", "w2")


def test_renew_pushes_deadline(clock):
    table = LeaseTable(ttl=5.0, clock=clock)
    table.grant("k1", "w1")
    table.grant("k2", "w1")
    table.grant("k3", "w2")
    clock.advance(4.0)
    assert table.renew("w1") == 2           # both of w1's leases
    clock.advance(2.0)                      # 106: k3 (deadline 105) dead
    dead = table.expired()
    assert [lease.key for lease in dead] == ["k3"]
    assert table.holder("k1") == "w1"       # renewed leases survive


def test_expired_pops_and_is_empty_after(clock):
    table = LeaseTable(ttl=1.0, clock=clock)
    table.grant("k1", "w1")
    clock.advance(1.0)
    assert [lease.key for lease in table.expired()] == ["k1"]
    assert table.expired() == []
    assert table.holder("k1") is None


def test_expire_worker_pops_only_its_leases(clock):
    table = LeaseTable(ttl=5.0, clock=clock)
    table.grant("k1", "w1")
    table.grant("k2", "w2")
    dead = table.expire_worker("w1")
    assert [lease.key for lease in dead] == ["k1"]
    assert table.held() == ["k2"]


def test_release_on_completion(clock):
    table = LeaseTable(ttl=5.0, clock=clock)
    table.grant("k1", "w1")
    assert table.release("k1").key == "k1"
    assert table.release("k1") is None
    assert len(table) == 0


def test_renew_passes_lease_renew_fault_point(clock):
    """A faulted renewal is skipped: the lease keeps aging toward
    expiry while the worker's heartbeats keep arriving — the
    deterministic lease-expiry test hook."""
    table = LeaseTable(ttl=5.0, clock=clock)
    table.grant("k1", "w1")
    with faults.active(faults.FaultPlan.parse("eio@lease-renew*1")):
        clock.advance(3.0)
        assert table.renew("w1") == 0       # injected: renewal skipped
        assert table.renew("w1") == 1       # plan exhausted: renews
    lease = table._leases["k1"]
    assert lease.renewals == 1
    assert lease.deadline == pytest.approx(clock.now + 5.0)


def test_default_ttl_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_LEASE_TTL", raising=False)
    assert default_lease_ttl() == 30.0
    monkeypatch.setenv("REPRO_LEASE_TTL", "2.5")
    assert default_lease_ttl() == 2.5
    monkeypatch.setenv("REPRO_LEASE_TTL", "0")
    assert default_lease_ttl() == 0.05      # floored: never instant-expiry
