"""Per-client admission quotas (repro.sim.service.quota)."""

import math

import pytest

from repro.sim.service.quota import (QuotaTable, default_quota_burst,
                                     default_quota_refill)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


def test_fresh_client_starts_with_full_burst(clock):
    quota = QuotaTable(burst=10, refill=1.0, clock=clock)
    assert quota.tokens("alice") == pytest.approx(10.0)


def test_admit_deducts_and_denies(clock):
    quota = QuotaTable(burst=10, refill=1.0, clock=clock)
    admitted, wait = quota.admit("alice", cost=8)
    assert admitted and wait == 0.0
    admitted, wait = quota.admit("alice", cost=8)
    assert not admitted
    assert wait == pytest.approx(6.0)       # needs 6 more tokens at 1/s


def test_refill_restores_admission(clock):
    quota = QuotaTable(burst=10, refill=2.0, clock=clock)
    quota.admit("alice", cost=10)
    assert not quota.admit("alice", cost=4)[0]
    clock.now += 2.0                        # +4 tokens
    assert quota.admit("alice", cost=4)[0]


def test_refill_caps_at_burst(clock):
    quota = QuotaTable(burst=5, refill=100.0, clock=clock)
    quota.admit("alice", cost=5)
    clock.now += 1000.0
    assert quota.tokens("alice") == pytest.approx(5.0)


def test_clients_are_independent(clock):
    quota = QuotaTable(burst=5, refill=1.0, clock=clock)
    quota.admit("alice", cost=5)
    assert quota.admit("bob", cost=5)[0]


def test_zero_cost_always_admitted(clock):
    """Fully-cached campaigns cost nothing: repeat queries are served
    regardless of quota state."""
    quota = QuotaTable(burst=5, refill=1.0, clock=clock)
    quota.admit("alice", cost=5)
    assert quota.admit("alice", cost=0) == (True, 0.0)


def test_cost_over_burst_is_permanent_rejection(clock):
    quota = QuotaTable(burst=5, refill=1.0, clock=clock)
    admitted, wait = quota.admit("alice", cost=6)
    assert not admitted and math.isinf(wait)
    assert quota.tokens("alice") == pytest.approx(5.0)  # nothing spent


def test_env_knobs(monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_TOKENS", raising=False)
    monkeypatch.delenv("REPRO_SERVICE_REFILL", raising=False)
    assert default_quota_burst() == 64
    assert default_quota_refill() == 1.0
    monkeypatch.setenv("REPRO_SERVICE_TOKENS", "8")
    monkeypatch.setenv("REPRO_SERVICE_REFILL", "0.25")
    assert default_quota_burst() == 8
    assert default_quota_refill() == 0.25
