"""Crash-safe service spool (repro.sim.service.queue)."""

import json

import pytest

from repro.sim.service.queue import QueueFull, SpoolQueue


def _submit(queue, cid="c1", keys=("k1", "k2")):
    queue.submit({"id": cid, "keys": list(keys)},
                 [(key, {"benchmark": key}) for key in keys])


# --------------------------------------------------------------------- #
# Round trip and replay.
# --------------------------------------------------------------------- #

def test_submit_claim_done_roundtrip(tmp_path):
    queue = SpoolQueue(tmp_path)
    _submit(queue)
    assert queue.depth() == 2
    key, payload = queue.claim()
    assert key == "k1" and payload == {"benchmark": "k1"}
    queue.mark_done("k1", "ok", attempts=1)
    assert queue.outcome("k1") == "ok"
    assert queue.depth() == 1


def test_replay_restores_pending_and_done(tmp_path):
    queue = SpoolQueue(tmp_path)
    _submit(queue)
    queue.claim()
    queue.mark_done("k1", "retried", attempts=2)

    fresh = SpoolQueue(tmp_path)
    assert fresh.outcome("k1") == "retried"
    assert fresh.attempts("k1") == 2
    # k2 was pending (claims are memory-only: a crash un-claims).
    key, _ = fresh.claim()
    assert key == "k2"
    assert fresh.campaign("c1")["keys"] == ["k1", "k2"]


def test_claim_is_fifo_and_requeue_fronts(tmp_path):
    queue = SpoolQueue(tmp_path)
    _submit(queue, keys=("a", "b", "c"))
    assert queue.claim()[0] == "a"
    assert queue.claim()[0] == "b"
    queue.requeue("b")              # lease expired: back to the front
    assert queue.claim()[0] == "b"
    assert queue.claim()[0] == "c"
    assert queue.claim() is None


def test_mark_done_is_idempotent(tmp_path):
    """A zombie worker's late duplicate settlement is a no-op."""
    queue = SpoolQueue(tmp_path)
    _submit(queue, keys=("k1",))
    queue.claim()
    queue.mark_done("k1", "retried", attempts=2)
    queue.mark_done("k1", "ok", attempts=1)      # the zombie's view
    assert queue.outcome("k1") == "retried"
    assert queue.attempts("k1") == 2


def test_unknown_outcome_rejected(tmp_path):
    queue = SpoolQueue(tmp_path)
    with pytest.raises(ValueError):
        queue.mark_done("k1", "exploded")


# --------------------------------------------------------------------- #
# Torn writes.
# --------------------------------------------------------------------- #

def test_torn_tail_line_is_dropped(tmp_path):
    queue = SpoolQueue(tmp_path)
    _submit(queue)
    with queue.path.open("a", encoding="utf-8") as fh:
        fh.write('{"event": "done", "key": "k1", "outc')   # torn write

    fresh = SpoolQueue(tmp_path)
    assert fresh.outcome("k1") is None          # torn settle never happened
    assert fresh.depth() == 2


def test_orphan_jobs_from_torn_submit_are_dropped(tmp_path):
    """Job lines whose campaign line never landed were never
    acknowledged: replay must not resurrect them."""
    queue = SpoolQueue(tmp_path)
    _submit(queue, cid="c1", keys=("k1",))
    with queue.path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps({"event": "job", "key": "orphan",
                             "job": {}}) + "\n")
        # crash before the campaign line

    fresh = SpoolQueue(tmp_path)
    keys = []
    while True:
        item = fresh.claim()
        if item is None:
            break
        keys.append(item[0])
    assert keys == ["k1"]


# --------------------------------------------------------------------- #
# Backpressure.
# --------------------------------------------------------------------- #

def test_queue_full_rejects_whole_submission(tmp_path):
    queue = SpoolQueue(tmp_path, cap=2)
    _submit(queue, cid="c1", keys=("k1", "k2"))
    with pytest.raises(QueueFull) as exc:
        _submit(queue, cid="c2", keys=("k3",))
    assert exc.value.retry_after > 0
    # Nothing of the rejected campaign was accepted.
    assert queue.campaign("c2") is None
    assert queue.depth() == 2


def test_settlement_frees_capacity(tmp_path):
    queue = SpoolQueue(tmp_path, cap=2)
    _submit(queue, cid="c1", keys=("k1", "k2"))
    queue.claim()
    queue.mark_done("k1", "ok")
    _submit(queue, cid="c2", keys=("k3",))      # now fits
    assert queue.depth() == 2


def test_duplicate_keys_across_campaigns_enqueue_once(tmp_path):
    queue = SpoolQueue(tmp_path)
    _submit(queue, cid="c1", keys=("k1", "k2"))
    _submit(queue, cid="c2", keys=("k2", "k3"))
    assert queue.depth() == 3                   # k2 shared, not doubled


# --------------------------------------------------------------------- #
# Compaction.
# --------------------------------------------------------------------- #

def test_compact_drops_settled_payloads(tmp_path):
    queue = SpoolQueue(tmp_path)
    _submit(queue, keys=("k1", "k2"))
    queue.claim()
    queue.mark_done("k1", "ok")
    raw_before = queue.path.read_text().count("\n")
    dropped = queue.compact()
    assert dropped >= 1                         # k1's payload line gone
    assert queue.path.read_text().count("\n") == raw_before - dropped

    fresh = SpoolQueue(tmp_path)
    assert fresh.outcome("k1") == "ok"
    assert fresh.claim()[0] == "k2"             # undone payload survived
    assert fresh.campaign("c1") is not None


def test_compact_noop_when_everything_live(tmp_path):
    queue = SpoolQueue(tmp_path)
    _submit(queue)
    assert queue.compact() == 0


def test_auto_compaction_bounds_spool_growth(tmp_path):
    queue = SpoolQueue(tmp_path, cap=10_000)
    for i in range(SpoolQueue._COMPACT_SLACK + 50):
        key = f"k{i}"
        queue.submit({"id": f"c{i}", "keys": [key]}, [(key, {})])
        queue.claim()
        queue.mark_done(key, "ok")
    jobs = SpoolQueue._COMPACT_SLACK + 50
    lines = queue.path.read_text().count("\n")
    # Live records (campaign + done per job) plus at most one slack's
    # worth of dead payload lines; without compaction this would be 3
    # lines per job.
    assert lines <= 2 * jobs + SpoolQueue._COMPACT_SLACK
    assert lines < 3 * jobs
