"""The headline invariants: kill -9 the daemon and lose nothing;
stall a worker and the job re-dispatches under its lease exactly once.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.sim.campaign.journal import CampaignJournal
from repro.sim.campaign.store import ResultStore
from repro.sim.config import SimConfig
from repro.sim.experiments import run_grid
from repro.sim.service import CampaignService

pytestmark = pytest.mark.skipif(sys.platform == "win32",
                                reason="POSIX signals")


def call(base, path, payload=None, timeout=15):
    req = urllib.request.Request(
        base + path,
        data=(json.dumps(payload).encode("utf-8")
              if payload is not None else None))
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


# --------------------------------------------------------------------- #
# kill -9 crash recovery, vs the serial oracle.
# --------------------------------------------------------------------- #

def _start_daemon(cache_dir, jobs=2):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(cache_dir), "--jobs", str(jobs)],
        stdout=subprocess.PIPE, text=True, bufsize=1,
        env=dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1"),
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))))
    line = proc.stdout.readline()
    assert "listening on http://" in line, line
    base = line.split("listening on ")[1].split()[0]
    # Wait until the API answers (workers may still be forking).
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        try:
            call(base, "/healthz", timeout=2)
            return proc, base
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise AssertionError("daemon never became healthy")


def test_kill9_restart_completes_bit_identical(tmp_path):
    cache = tmp_path / "cache"
    budget = 30_000
    spec = {"workloads": ["gzip", "mcf"],
            "machines": "baseline,msp:16",
            "instructions": budget, "name": "chaos"}

    proc, base = _start_daemon(cache)
    try:
        ack = call(base, "/campaigns", spec)
        cid = ack["campaign"]
        assert ack["jobs"] == 4
        # Let it make real progress, then murder it mid-flight.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            body = call(base, f"/campaigns/{cid}")
            if body["done"] >= 1:
                break
            time.sleep(0.1)
        assert body["done"] >= 1, body
    finally:
        proc.kill()                         # SIGKILL: no cleanup at all
        proc.wait(timeout=10)

    # Restart on the same cache dir: the spool replays the campaign
    # and its undone jobs; cells finished before (or during, by the
    # orphaned workers) the crash are recognized in the result store.
    proc, base = _start_daemon(cache)
    try:
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            body = call(base, f"/campaigns/{cid}")
            if body["state"] in ("done", "partial"):
                break
            time.sleep(0.2)
        assert body["state"] == "done", body
        assert body["quarantined"] == 0
        results = call(base, f"/campaigns/{cid}/results")
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    oracle = run_grid(
        "chaos", ["gzip", "mcf"],
        [SimConfig.from_token("baseline"),
         SimConfig.from_token("msp:16")],
        budget, jobs=1, cache_dir=tmp_path / "oracle")
    assert results["table"] == oracle.to_table()
    for bench in ("gzip", "mcf"):
        for label in ("Baseline", "16-SP+Arb"):
            expected = json.loads(json.dumps(
                oracle.stats[bench][label].to_dict()))
            assert results["cells"][bench][label] == expected, \
                f"{bench}/{label} diverged from the serial oracle"


# --------------------------------------------------------------------- #
# Lease expiry: stalled worker, job re-dispatched exactly once.
# --------------------------------------------------------------------- #

def test_stalled_worker_lease_expires_and_job_retries_once(tmp_path):
    service = CampaignService(cache_dir=tmp_path, workers=2,
                              lease_ttl=0.8)
    service.start()
    stopped_pid = None
    try:
        ack = service.submit(
            {"workloads": ["gzip"], "machines": ["baseline"],
             "instructions": 100_000, "name": "stall"})
        [key] = service.queue.campaign(ack["campaign"])["keys"]

        # Wait for the lease grant, then SIGSTOP its holder: beats
        # cease, the lease ages past REPRO_LEASE_TTL and expires.
        deadline = time.monotonic() + 30
        holder = None
        while time.monotonic() < deadline:
            with service._lock:
                holder = service.leases.holder(key)
                if holder is not None:
                    stopped_pid = service._workers[holder].process.pid
                    break
            time.sleep(0.02)
        assert holder is not None, "job never dispatched"
        os.kill(stopped_pid, signal.SIGSTOP)

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status = service.campaign_status(ack["campaign"])
            if status["state"] in ("done", "partial"):
                break
            time.sleep(0.1)
        assert status["state"] == "done", status

        # Re-dispatched exactly once: two attempts, outcome=retried.
        assert service.queue.attempts(key) == 2
        receipt = CampaignJournal(tmp_path).receipts()[key]
        assert receipt.outcome == "retried"
        assert receipt.attempts == 2
        assert receipt.error_class == "LeaseExpired"
        assert any("LeaseExpired" in err for err in receipt.errors)

        # The zombie resumes, finishes late, and changes nothing:
        # its settlement is an ignored duplicate, its store.put an
        # idempotent no-op on the same content-hashed key.
        before = ResultStore(tmp_path).get(key).to_dict()
        os.kill(stopped_pid, signal.SIGCONT)
        stopped_pid = None
        time.sleep(1.0)
        with service._lock:
            service._tick()
        assert service.queue.attempts(key) == 2
        assert service.queue.outcome(key) == "retried"
        assert ResultStore(tmp_path).get(key).to_dict() == before
    finally:
        if stopped_pid is not None:
            os.kill(stopped_pid, signal.SIGCONT)
        service.stop()


def test_heartbeat_fault_site_ages_lease_to_expiry(tmp_path,
                                                   monkeypatch):
    """eio@heartbeat suppresses the worker's beats: the lease expires
    even though the worker is healthy.  With a single worker the
    retry cannot be dispatched while the original still runs — its
    late result is accepted (work conservation) and the receipt
    carries the LeaseExpired evidence."""
    monkeypatch.setenv("REPRO_FAULT_INJECT", "eio@heartbeat*999")
    service = CampaignService(cache_dir=tmp_path, workers=1,
                              lease_ttl=0.5)
    service.start()
    try:
        ack = service.submit(
            {"workloads": ["gzip"], "machines": ["baseline"],
             "instructions": 60_000, "name": "mute"})
        [key] = service.queue.campaign(ack["campaign"])["keys"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status = service.campaign_status(ack["campaign"])
            if status["state"] in ("done", "partial"):
                break
            time.sleep(0.1)
        assert status["state"] == "done", status
        receipt = CampaignJournal(tmp_path).receipts()[key]
        assert any("LeaseExpired" in err for err in receipt.errors)
        assert ResultStore(tmp_path).get(key) is not None
    finally:
        service.stop()
