"""HTTP JSON API over an in-process daemon (repro.sim.service.api).

Real workers, real HTTP on an ephemeral loopback port; tiny
instruction budgets keep each grid cell sub-second.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.sim import faults
from repro.sim.config import SimConfig
from repro.sim.experiments import run_grid
from repro.sim.service import CampaignService, make_server

BUDGET = 3000
SPEC = {"workloads": ["gzip"], "machines": "baseline,msp:16",
        "instructions": BUDGET, "name": "api-test"}


@pytest.fixture
def daemon(tmp_path):
    service = CampaignService(cache_dir=tmp_path / "cache", workers=2,
                              lease_ttl=10.0)
    server = make_server(service, host="127.0.0.1", port=0)
    service.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    try:
        yield service, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def call(base, path, payload=None, headers=None):
    req = urllib.request.Request(
        base + path,
        data=(json.dumps(payload).encode("utf-8")
              if payload is not None else None),
        headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), \
                json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def wait_done(base, campaign_id, timeout=120.0):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = call(base, f"/campaigns/{campaign_id}")
        if body["state"] in ("done", "partial"):
            return body
        time.sleep(0.1)
    raise AssertionError(f"campaign {campaign_id} never settled")


# --------------------------------------------------------------------- #
# The happy path, against the serial oracle.
# --------------------------------------------------------------------- #

def test_submit_run_results_matches_serial_oracle(daemon, tmp_path):
    service, base = daemon
    status, _, ack = call(base, "/campaigns", SPEC)
    assert status == 200
    assert ack["jobs"] == 2 and ack["settled"] == 0
    body = wait_done(base, ack["campaign"])
    assert body == dict(body, state="done", done=2, quarantined=0)

    status, _, results = call(base,
                              f"/campaigns/{ack['campaign']}/results")
    assert status == 200
    oracle = run_grid(
        "api-test", ["gzip"],
        [SimConfig.from_token("baseline"),
         SimConfig.from_token("msp:16")],
        BUDGET, jobs=1, cache_dir=tmp_path / "oracle")
    assert results["table"] == oracle.to_table()
    # Bit-identical statistics, not just the rendered table (JSON
    # round-trip normalizes tuples to lists on both sides).
    assert results["cells"]["gzip"]["Baseline"] == json.loads(
        json.dumps(oracle.stats["gzip"]["Baseline"].to_dict()))


def test_resubmission_is_idempotent_and_cached(daemon):
    service, base = daemon
    _, _, first = call(base, "/campaigns", SPEC)
    wait_done(base, first["campaign"])
    status, _, again = call(base, "/campaigns", SPEC)
    assert status == 200
    assert again["campaign"] == first["campaign"]
    assert again["resubmitted"] is True
    assert again["settled"] == 2


def test_cached_cells_cost_no_quota_and_settle_instantly(daemon):
    service, base = daemon
    _, _, ack = call(base, "/campaigns", SPEC)
    wait_done(base, ack["campaign"])
    # Same cells under a different campaign name: new id, but every
    # cell is already settled at submit time — nothing to execute,
    # nothing charged against the quota.
    spec = dict(SPEC, name="api-test-2")
    _, _, ack2 = call(base, "/campaigns", spec)
    assert ack2["campaign"] != ack["campaign"]
    assert ack2["settled"] == 2
    body = wait_done(base, ack2["campaign"], timeout=5.0)
    assert body["state"] == "done"


# --------------------------------------------------------------------- #
# Input validation and error mapping.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("payload,fragment", [
    ({}, "workloads"),
    ({"workloads": ["gzip"]}, "machines"),
    ({"workloads": ["no-such"], "machines": ["baseline"]},
     "unknown workload"),
    ({"workloads": ["gzip"], "machines": ["warp9"]}, "unknown machine"),
    ({"workloads": ["gzip"], "machines": ["baseline"],
      "instructions": -5}, "positive"),
    ({"workloads": ["gzip"], "machines": ["baseline"],
      "instructions": "lots"}, "bad instruction budget"),
    ({"workloads": ["gzip"], "machines": ["baseline"],
      "sampling": {"mode": "warpdrive"}}, "bad sampling"),
])
def test_bad_specs_are_400(daemon, payload, fragment):
    _, base = daemon
    status, _, body = call(base, "/campaigns", payload)
    assert status == 400
    assert fragment in body["error"]


def test_unknown_campaign_and_route_are_404(daemon):
    _, base = daemon
    assert call(base, "/campaigns/nope")[0] == 404
    assert call(base, "/frobnicate")[0] == 404


def test_results_while_running_are_409(daemon):
    service, base = daemon
    _, _, ack = call(base, "/campaigns",
                     dict(SPEC, instructions=60_000))
    status, _, body = call(base,
                           f"/campaigns/{ack['campaign']}/results")
    assert status == 409
    assert "poll" in body["error"]
    wait_done(base, ack["campaign"])        # drain before teardown


def test_non_json_body_is_400(daemon):
    _, base = daemon
    req = urllib.request.Request(
        base + "/campaigns", data=b"not json{",
        headers={"Content-Length": "9"})
    with pytest.raises(urllib.error.HTTPError) as exc:
        urllib.request.urlopen(req, timeout=10)
    assert exc.value.code == 400


# --------------------------------------------------------------------- #
# Admission control.
# --------------------------------------------------------------------- #

def test_quota_backpressure_is_429_with_retry_after(tmp_path):
    service = CampaignService(cache_dir=tmp_path, workers=1,
                              quota_burst=2, quota_refill=0.01)
    server = make_server(service, host="127.0.0.1", port=0)
    # No start(): admission happens before any dispatch.
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        status, _, _ = call(base, "/campaigns", SPEC,
                            headers={"X-Repro-Client": "alice"})
        assert status == 200                # 2 cells == whole burst
        status, headers, body = call(
            base, "/campaigns", dict(SPEC, name="second"),
            headers={"X-Repro-Client": "alice"})
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        # An independent client is not starved by alice's burst.
        status, _, _ = call(base, "/campaigns", dict(SPEC, name="bob"),
                            headers={"X-Repro-Client": "bob"})
        assert status == 200
    finally:
        server.shutdown()
        server.server_close()


def test_grid_larger_than_burst_is_413(tmp_path):
    service = CampaignService(cache_dir=tmp_path, quota_burst=1)
    with pytest.raises(Exception) as exc:
        service.submit(SPEC, client="alice")
    assert getattr(exc.value, "status", None) == 413


def test_queue_cap_backpressure_is_429(tmp_path):
    service = CampaignService(cache_dir=tmp_path, queue_cap=1)
    from repro.sim.service import ApiError
    with pytest.raises(ApiError) as exc:
        service.submit(SPEC, client="alice")
    assert exc.value.status == 429
    assert exc.value.retry_after is not None
    # Nothing was accepted: the campaign is unknown.
    with pytest.raises(ApiError) as exc:
        service.campaign_status("c" + "0" * 12)
    assert exc.value.status == 404


def test_enqueue_fault_site_maps_to_503(tmp_path):
    """A spool that cannot be appended must reject the submission
    (unpersistable work is unacceptable work), not half-accept it."""
    from repro.sim.service import ApiError
    service = CampaignService(cache_dir=tmp_path)
    with faults.active(faults.FaultPlan.parse("enospc@enqueue")):
        with pytest.raises(ApiError) as exc:
            service.submit(SPEC, client="alice")
        assert exc.value.status == 503
        # The fault consumed; the retry is durably accepted.
        ack = service.submit(SPEC, client="alice")
    assert ack["jobs"] == 2
    assert service.queue.depth() == 2


# --------------------------------------------------------------------- #
# Health and readiness.
# --------------------------------------------------------------------- #

def test_healthz_and_readyz(daemon):
    service, base = daemon
    status, _, health = call(base, "/healthz")
    assert status == 200
    assert health["ok"] and health["workers"]["alive"] == 2

    status, _, ready = call(base, "/readyz")
    assert status == 200
    assert ready["ready"] is True
    assert ready["queue"]["cap"] == service.queue.cap
    # The machine-readable snapshot rides along (CI smoke reads it).
    assert "journal" in ready["status"]
    assert "cache" in ready["status"]


def test_readyz_not_ready_without_workers(tmp_path):
    service = CampaignService(cache_dir=tmp_path)
    server = make_server(service, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    try:
        status, _, body = call(f"http://{host}:{port}", "/readyz")
        assert status == 503
        assert body["ready"] is False
    finally:
        server.shutdown()
        server.server_close()
