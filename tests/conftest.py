"""Shared fixtures: small deterministic programs for core tests."""

from __future__ import annotations

import pytest

from repro.isa import ProgramBuilder, fp_reg, int_reg


@pytest.fixture(scope="session")
def _campaign_cache_root(tmp_path_factory):
    return tmp_path_factory.mktemp("repro-cache")


@pytest.fixture(autouse=True)
def _isolated_campaign_cache(_campaign_cache_root, monkeypatch):
    """Keep the campaign result cache away from ~/.cache during tests
    (simulations are deterministic, so sharing it across tests in one
    session is sound — and speeds repeated grids up)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(_campaign_cache_root))


@pytest.fixture
def sum_loop_program():
    """Array-sum loop with a store and a re-entrant outer loop."""
    b = ProgramBuilder("sum_loop")
    arr = b.data_region([(i * 7) % 13 for i in range(64)])
    out = b.reserve(4)
    r_i, r_n, r_base, r_sum, r_t, r_a, r_out = (int_reg(k)
                                                for k in range(1, 8))
    b.li(r_i, 0)
    b.li(r_n, 64)
    b.li(r_base, arr)
    b.li(r_out, out)
    b.li(r_sum, 0)
    b.label("loop")
    b.add(r_t, r_base, r_i)
    b.ld(r_a, r_t, 0)
    b.add(r_sum, r_sum, r_a)
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "loop")
    b.st(r_sum, r_out, 0)
    b.li(r_i, 0)
    b.li(r_sum, 0)
    b.jmp("loop")
    return b.build()


@pytest.fixture
def branchy_program():
    """Data-dependent branches over pseudo-random values (mispredicts)."""
    b = ProgramBuilder("branchy")
    bits = b.data_region([(i * 37 + 11) % 2 for i in range(128)])
    r_i, r_n, r_base, r_bit, r_t, r_x, r_y = (int_reg(k)
                                              for k in range(1, 8))
    b.li(r_i, 0)
    b.li(r_n, 128)
    b.li(r_base, bits)
    b.label("loop")
    b.add(r_t, r_base, r_i)
    b.ld(r_bit, r_t, 0)
    b.beqz(r_bit, "zero")
    b.addi(r_x, r_x, 1)
    b.jmp("next")
    b.label("zero")
    b.addi(r_y, r_y, 1)
    b.label("next")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "loop")
    b.li(r_i, 0)
    b.jmp("loop")
    return b.build()


@pytest.fixture
def fp_chain_program():
    """FP accumulation with loads — exercises fp banks and latencies."""
    b = ProgramBuilder("fp_chain")
    data = b.data_region([0.5 + 0.25 * (i % 4) for i in range(32)])
    r_i, r_n, r_base, r_t = (int_reg(k) for k in range(1, 5))
    f_acc, f_v = fp_reg(1), fp_reg(2)
    b.li(r_i, 0)
    b.li(r_n, 32)
    b.li(r_base, data)
    b.label("loop")
    b.add(r_t, r_base, r_i)
    b.fld(f_v, r_t, 0)
    b.fmul(f_v, f_v, f_v)
    b.fadd(f_acc, f_acc, f_v)
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "loop")
    b.li(r_i, 0)
    b.jmp("loop")
    return b.build()


@pytest.fixture
def halting_program():
    """Short program that HALTs, for end-of-program commit tests."""
    b = ProgramBuilder("halting")
    out = b.reserve(1)
    r_a, r_b, r_out = int_reg(1), int_reg(2), int_reg(3)
    b.li(r_a, 21)
    b.li(r_b, 2)
    b.mul(r_a, r_a, r_b)
    b.li(r_out, out)
    b.st(r_a, r_out, 0)
    b.halt()
    program = b.build()
    program.out_addr = out  # convenience for assertions
    return program
