"""Oracle cross-check: every core's committed instruction stream and
memory state must exactly match the architectural emulator, on every
workload. This is the system-level correctness contract that makes all
IPC comparisons meaningful.
"""

import pytest

from repro.isa import Emulator
from repro.sim import SimConfig, build_core
from repro.workloads import SPECFP, SPECINT, get_program

CONFIGS = [
    pytest.param(SimConfig.baseline(), id="baseline"),
    pytest.param(SimConfig.cpr(), id="cpr"),
    pytest.param(SimConfig.msp(8), id="msp8"),
    pytest.param(SimConfig.msp(16), id="msp16"),
    pytest.param(SimConfig.msp_ideal(), id="msp-ideal"),
]

# A representative slice: branchy int, indirect-heavy, memory-bound,
# store-heavy, and the tight Table II kernels (plus modified variants).
WORKLOADS = ["gzip", "mcf", "perlbmk", "vortex", "bzip2", "twolf",
             "swim", "equake", "bzip2_mod", "swim_mod"]


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_commit_stream_and_memory_match_oracle(workload, config):
    program = get_program(workload)
    core = build_core(program, config.with_(record_commits=True))
    stats = core.run(max_instructions=1200)
    assert stats.committed >= 1200

    emulator = Emulator(program, trace_pcs=True)
    reference = emulator.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace

    touched = set(core.memory) | set(emulator.memory)
    for addr in touched:
        assert core.memory.get(addr, 0) == emulator.memory.get(addr, 0), \
            f"memory divergence at {addr}"


@pytest.mark.parametrize("config", CONFIGS)
def test_full_suite_smoke(config):
    """Every workload runs (briefly) on every machine without errors."""
    for workload in SPECINT + SPECFP:
        stats = build_core(get_program(workload),
                           config).run(max_instructions=150)
        assert stats.committed >= 150
        assert stats.ipc > 0
