"""Differential fuzz harness: cores x schedulers vs oracle, plus the
divergence shrinker.

The sweep tests prove the harness passes cleanly on a healthy
simulator (and actually exercises both schedulers on all three cores);
the detection and shrinker tests exercise the failure paths with
synthetic mismatches, since planting a real simulator bug is not an
option in-tree.
"""

import pytest

from repro.workloads.fuzz import (
    BACKENDS,
    SCHEDULERS,
    Divergence,
    check_one,
    compare_with_oracle,
    fuzz_configs,
    run_differential,
    shrink,
)


@pytest.mark.parametrize("seed", range(3))
def test_clean_sweep_finds_no_divergence(seed):
    assert run_differential(seed, budget=400) == []


def test_sweep_covers_every_core_scheduler_and_backend():
    labels = {config.label for config in fuzz_configs()}
    assert len(labels) == 3
    assert set(SCHEDULERS) == {"event", "scan"}
    assert set(BACKENDS) == {"codegen", "ladder"}
    for config in fuzz_configs():
        for scheduler in SCHEDULERS:
            for backend in BACKENDS:
                assert check_one(5, config, scheduler, budget=300,
                                 backend=backend) is None


def test_sweep_exercises_window_growth(monkeypatch):
    """With a forced tiny ring, fuzz programs must cross the growth
    path (mask rebake + codegen regeneration) and still match the
    oracle on every cell."""
    monkeypatch.setenv("REPRO_WINDOW_CAP", "4")
    from repro.sim import build_core
    from repro.workloads.fuzz import random_program
    assert run_differential(1, budget=300) == []
    core = build_core(random_program(1),
                      fuzz_configs()[0].with_(record_commits=True))
    core.run(max_instructions=300)
    assert core.w.grows > 0          # the tiny ring actually doubled


def test_compare_detects_commit_trace_mismatch():
    kind, detail = compare_with_oracle([4, 8, 12], [4, 8, 16], {}, {})
    assert kind == "commit-trace"
    assert "commit #2" in detail and "16" in detail


def test_compare_detects_length_mismatch():
    kind, detail = compare_with_oracle([4, 8], [4, 8, 12], {}, {})
    assert kind == "commit-trace"
    assert "length mismatch" in detail


def test_compare_detects_memory_mismatch():
    kind, detail = compare_with_oracle([4], [4], {100: 7}, {100: 9})
    assert kind == "memory"
    assert "addr 100" in detail


def test_compare_agreement_is_none():
    assert compare_with_oracle([4, 8], [4, 8], {1: 2}, {1: 2}) is None


def _synthetic(min_blocks, min_budget):
    """A divergence that reproduces iff blocks >= min_blocks and
    budget >= min_budget — the monotone shape a real bug has."""
    def reproduces(blocks, budget):
        if blocks >= min_blocks and budget >= min_budget:
            return Divergence(seed=1, blocks=blocks, budget=budget,
                              machine="msp:8", scheduler="event",
                              kind="commit-trace", detail="synthetic")
        return None
    return reproduces


def test_shrink_converges_to_minimal_repro():
    start = _synthetic(3, 137)(8, 700)
    minimal = shrink(start, reproduces=_synthetic(3, 137))
    assert (minimal.blocks, minimal.budget) == (3, 137)


def test_shrink_keeps_an_already_minimal_divergence():
    start = _synthetic(1, 1)(1, 1)
    minimal = shrink(start, reproduces=_synthetic(1, 1))
    assert (minimal.blocks, minimal.budget) == (1, 1)


def test_shrink_real_recheck_path_is_stable():
    # On a healthy simulator check_one never diverges, so feed shrink a
    # divergence whose real recheck immediately fails to reproduce:
    # shrink must stop reducing blocks and bisect budget down to the
    # smallest value that "reproduces" (here: none do below the start,
    # so the original budget survives only if every probe fails).
    config = fuzz_configs()[0]
    start = Divergence(seed=2, blocks=2, budget=64,
                       machine=config.label, scheduler="event",
                       kind="commit-trace", detail="stale",
                       config=config)
    minimal = shrink(start)
    # Nothing reproduces, so the shrinker must return the input intact.
    assert (minimal.blocks, minimal.budget) == (2, 64)


def test_divergence_repro_command_and_dict():
    d = Divergence(seed=9, blocks=4, budget=250, machine="cpr",
                   scheduler="scan", kind="memory", detail="addr 8")
    assert "seed=9" in d.repro_command()
    assert "cpr/scan" in d.repro_command()
    assert d.to_dict()["kind"] == "memory"
    assert "config" not in d.to_dict()
