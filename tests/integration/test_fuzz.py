"""Fuzz cross-check: random structured programs, all cores vs oracle.

The single strongest correctness test in the repository: programs nobody
hand-wrote, exercising renaming, recovery, forwarding and commit on all
three machines, must commit exactly the emulator's instruction stream
and memory state.
"""

import pytest

from repro.isa import Emulator
from repro.sim import SimConfig, build_core
from repro.workloads.fuzz import random_program

CONFIGS = [
    pytest.param(SimConfig.baseline(), id="baseline"),
    pytest.param(SimConfig.cpr(), id="cpr"),
    pytest.param(SimConfig.msp(8), id="msp8"),
    pytest.param(SimConfig.msp_ideal(), id="msp-ideal"),
]


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("seed", range(12))
def test_random_program_matches_oracle(seed, config):
    program = random_program(seed)
    core = build_core(program, config.with_(record_commits=True))
    stats = core.run(max_instructions=700)
    assert stats.committed >= 700, "core stalled permanently"

    emulator = Emulator(program, trace_pcs=True)
    reference = emulator.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace

    for addr in set(core.memory) | set(emulator.memory):
        assert core.memory.get(addr, 0) == emulator.memory.get(addr, 0)


@pytest.mark.parametrize("seed", range(4))
def test_random_program_with_exceptions(seed):
    program = random_program(seed + 100)
    plan = frozenset({40, 41, 150})
    for config in (SimConfig.baseline(), SimConfig.cpr(),
                   SimConfig.msp(16)):
        core = build_core(program, config.with_(
            exception_ordinals=plan, record_commits=True))
        stats = core.run(max_instructions=500)
        assert stats.exceptions_taken == len(plan)
        emulator = Emulator(program, trace_pcs=True)
        reference = emulator.run(max_instructions=stats.committed)
        assert core.commit_trace == reference.pc_trace


def test_fuzz_programs_are_deterministic():
    a = random_program(7)
    b = random_program(7)
    assert [repr(i) for i in a.instructions] == \
        [repr(i) for i in b.instructions]
    assert a.initial_memory == b.initial_memory
