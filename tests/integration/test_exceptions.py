"""Exception-injection (failure-injection) tests.

The paper treats exceptions like branch recovery: precise in the MSP and
baseline, rollback-to-checkpoint (with correct-path re-execution) in
CPR. Exceptions are injected by architectural commit ordinal, so the
same fault hits the same instruction on every machine.
"""

import pytest

from repro.isa import Emulator
from repro.sim import SimConfig, build_core

ORDINALS = frozenset({50, 51, 200, 333})


def run_with_exceptions(program, config, budget=600):
    cfg = config.with_(exception_ordinals=ORDINALS, record_commits=True)
    core = build_core(program, cfg)
    stats = core.run(max_instructions=budget)
    return core, stats


@pytest.mark.parametrize("config", [
    pytest.param(SimConfig.baseline(), id="baseline"),
    pytest.param(SimConfig.cpr(), id="cpr"),
    pytest.param(SimConfig.msp(16), id="msp16"),
])
def test_exceptions_taken_once_and_stream_intact(config, branchy_program):
    core, stats = run_with_exceptions(branchy_program, config)
    assert stats.exceptions_taken == len(ORDINALS)
    emulator = Emulator(branchy_program, trace_pcs=True)
    reference = emulator.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace


def test_msp_exception_recovery_no_worse_than_cpr(branchy_program):
    """Precise exception recovery squashes only the excepting
    instruction and *younger* work; CPR additionally re-executes the
    older window back to its checkpoint."""
    _, msp = run_with_exceptions(branchy_program, SimConfig.msp(16))
    _, cpr = run_with_exceptions(
        branchy_program, SimConfig.cpr(confidence_threshold=0))
    assert msp.correct_path_reexecuted <= cpr.correct_path_reexecuted


def test_cpr_exception_recovery_is_imprecise(branchy_program):
    core, stats = run_with_exceptions(
        branchy_program, SimConfig.cpr(confidence_threshold=0))
    # Rolling back to the preceding checkpoint re-executes a window of
    # correct-path instructions per exception.
    assert stats.correct_path_reexecuted > stats.exceptions_taken


def test_exceptions_cost_cycles(branchy_program):
    clean = build_core(branchy_program,
                       SimConfig.msp(16)).run(max_instructions=600)
    _, faulted = run_with_exceptions(branchy_program, SimConfig.msp(16))
    assert faulted.cycles > clean.cycles


def test_exception_on_store_keeps_memory_consistent(sum_loop_program):
    config = SimConfig.msp(16).with_(
        exception_ordinals=frozenset(range(60, 75)), record_commits=True)
    core = build_core(sum_loop_program, config)
    stats = core.run(max_instructions=400)
    emulator = Emulator(sum_loop_program)
    emulator.run(max_instructions=stats.committed)
    for addr in set(core.memory) | set(emulator.memory):
        assert core.memory.get(addr, 0) == emulator.memory.get(addr, 0)
