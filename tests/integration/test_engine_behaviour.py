"""Cross-cutting engine behaviour: determinism, forwarding, indirect
jumps, store-queue hierarchy and fetch effects inside full cores."""

import pytest

from repro.isa import Emulator, Op, ProgramBuilder, int_reg
from repro.sim import SimConfig, build_core
from repro.workloads import get_program


def test_simulations_are_deterministic():
    """Same program + config => bit-identical statistics."""
    for config in (SimConfig.baseline(), SimConfig.cpr(),
                   SimConfig.msp(16)):
        a = build_core(get_program("twolf"), config).run(800).summary()
        b = build_core(get_program("twolf"), config).run(800).summary()
        assert a == b


def test_store_to_load_forwarding_used():
    """A load immediately after a store to the same address forwards
    from the store queue rather than waiting for commit."""
    b = ProgramBuilder("fwd")
    scratch = b.reserve(8)
    r_v, r_b, r_x, r_i = (int_reg(k) for k in range(1, 5))
    b.li(r_b, scratch)
    b.li(r_i, 0)
    b.label("loop")
    b.addi(r_v, r_v, 3)
    b.st(r_v, r_b, 0)
    b.ld(r_x, r_b, 0)       # forwards the just-stored value
    b.addi(r_i, r_i, 1)
    b.jmp("loop")
    core = build_core(b.build(), SimConfig.msp(16))
    core.run(max_instructions=400)
    assert core.sq.forwards > 0


def test_l2_store_queue_overflow_forwarding():
    """CPR/MSP spill old stores to the L2 SQ; forwarding from there
    carries the scan penalty but stays correct."""
    b = ProgramBuilder("spill")
    scratch = b.reserve(512)
    r_v, r_b, r_i, r_t, r_x = (int_reg(k) for k in range(1, 6))
    b.li(r_b, scratch)
    b.li(r_i, 0)
    b.label("loop")
    b.add(r_t, r_b, r_i)
    b.st(r_i, r_t, 0)
    b.addi(r_i, r_i, 1)
    b.bnez(r_i, "loop")
    program = b.build()
    config = SimConfig.msp(64).with_(sq_l1=4, sq_l2=64,
                                     record_commits=True)
    core = build_core(program, config)
    stats = core.run(max_instructions=600)
    emulator = Emulator(program, trace_pcs=True)
    reference = emulator.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace


def test_indirect_jump_recovery_all_machines():
    """A JR alternating between two targets defeats the last-target BTB
    about half the time; every machine must recover correctly."""
    b = ProgramBuilder("jrflip")
    b.jmp("start")
    b.label("t0")
    t0 = b.pc
    b.addi(int_reg(5), int_reg(5), 1)
    b.jmp("join")
    b.label("t1")
    t1 = b.pc
    b.addi(int_reg(6), int_reg(6), 1)
    b.label("join")
    b.addi(int_reg(1), int_reg(1), 1)
    b.and_(int_reg(2), int_reg(1), int_reg(7))   # r7 = 1
    b.mul(int_reg(3), int_reg(2), int_reg(8))    # r8 = t1 - t0
    b.addi(int_reg(3), int_reg(3), 0)
    b.add(int_reg(4), int_reg(3), int_reg(9))    # r9 = t0
    b.jr(int_reg(4))
    b.label("start")
    b.li(int_reg(7), 1)
    b.li(int_reg(8), t1 - t0)
    b.li(int_reg(9), t0)
    b.jmp("join")
    program = b.build()

    for config in (SimConfig.baseline(), SimConfig.cpr(),
                   SimConfig.msp(16)):
        core = build_core(program, config.with_(record_commits=True))
        stats = core.run(max_instructions=500)
        emulator = Emulator(program, trace_pcs=True)
        reference = emulator.run(max_instructions=stats.committed)
        assert core.commit_trace == reference.pc_trace
        assert stats.recoveries > 0     # BTB misses happened
        assert core.btb.mispredicted_targets > 0


def test_icache_pressure_costs_cycles():
    """A program larger than the I-cache with cold caches stalls fetch."""
    b = ProgramBuilder("icache")
    for k in range(64):
        b.addi(int_reg(1 + k % 8), int_reg(1 + k % 8), 1)
    b.jmp(0)
    warm = build_core(b.build(), SimConfig.baseline()).run(300)
    cold = build_core(b.build(),
                      SimConfig.baseline().with_(warm_caches=False))
    cold_stats = cold.run(300)
    assert cold_stats.cycles > warm.cycles
    assert cold.fetch.icache_stall_cycles > 0


def test_issue_respects_fu_limits():
    """With one LdSt unit, back-to-back loads serialise."""
    program = get_program("vortex")
    two = build_core(program, SimConfig.msp(64)).run(600)
    one = build_core(program, SimConfig.msp(64, ldst_units=1)).run(600)
    assert one.cycles >= two.cycles


def test_iq_size_bounds_window():
    program = get_program("mcf")
    small = build_core(program, SimConfig.cpr().with_(iq_size=16)).run(800)
    large = build_core(program, SimConfig.cpr()).run(800)
    assert large.ipc >= small.ipc


def test_msp_stateid_counter_grows_unbounded():
    core = build_core(get_program("crafty"), SimConfig.msp(8))
    core.run(max_instructions=2000)
    # Far beyond any encoded width: the simulator uses unbounded ids
    # (equivalence with the saturating encoding is proven separately).
    assert core.sc.current > 1000


def test_wrong_path_never_commits(branchy_program):
    for config in (SimConfig.baseline(), SimConfig.cpr(),
                   SimConfig.msp(16)):
        core = build_core(branchy_program,
                          config.with_(record_commits=True))
        stats = core.run(max_instructions=600)
        emulator = Emulator(branchy_program, trace_pcs=True)
        reference = emulator.run(max_instructions=stats.committed)
        assert core.commit_trace == reference.pc_trace


def test_nops_flow_through():
    b = ProgramBuilder("nops")
    b.li(int_reg(1), 1)
    for _ in range(5):
        b.nop()
    b.addi(int_reg(1), int_reg(1), 1)
    b.halt()
    for config in (SimConfig.baseline(), SimConfig.cpr(),
                   SimConfig.msp(16)):
        core = build_core(b.build(), config)
        stats = core.run(max_instructions=50)
        assert core.done
        assert stats.committed == 8


def test_branch_op_metadata_consistency():
    # Guard against opcode-table drift: every control op must resolve.
    from repro.isa.opcodes import CONTROL_OPS, op_is_control
    for op in CONTROL_OPS:
        assert op_is_control(op)
    assert not op_is_control(Op.ADD)
