"""Register namespace tests."""

import pytest

from repro.isa import registers as regs_mod
from repro.isa import (
    NUM_INT_REGS,
    NUM_LOGICAL_REGS,
    RegClass,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
    parse_reg,
    reg_class,
    reg_name,
)


def test_int_reg_maps_identity():
    assert int_reg(0) == 0
    assert int_reg(31) == 31


def test_fp_reg_offsets_past_int_space():
    assert fp_reg(0) == NUM_INT_REGS
    assert fp_reg(31) == NUM_LOGICAL_REGS - 1


@pytest.mark.parametrize("index", [-1, 32, 100])
def test_out_of_range_indices_rejected(index):
    with pytest.raises(ValueError):
        int_reg(index)
    with pytest.raises(ValueError):
        fp_reg(index)


def test_reg_class_partition():
    for reg in range(NUM_LOGICAL_REGS):
        if reg < NUM_INT_REGS:
            assert reg_class(reg) is RegClass.INT
            assert is_int_reg(reg) and not is_fp_reg(reg)
        else:
            assert reg_class(reg) is RegClass.FP
            assert is_fp_reg(reg) and not is_int_reg(reg)


def test_reg_class_rejects_out_of_range():
    with pytest.raises(ValueError):
        reg_class(NUM_LOGICAL_REGS)


def test_names_round_trip():
    for reg in range(NUM_LOGICAL_REGS):
        assert parse_reg(reg_name(reg)) == reg


def test_name_formats():
    assert reg_name(int_reg(7)) == "r7"
    assert reg_name(fp_reg(3)) == "f3"


def test_parse_rejects_garbage():
    for bad in ("x3", "r", "", "q12"):
        with pytest.raises(ValueError):
            parse_reg(bad)


def test_reg_name_rejects_out_of_range():
    with pytest.raises(ValueError):
        reg_name(NUM_LOGICAL_REGS)


def test_namespace_sizes():
    assert regs_mod.NUM_INT_REGS == 32
    assert regs_mod.NUM_FP_REGS == 32
    assert regs_mod.NUM_LOGICAL_REGS == 64
