"""Reference-emulator tests."""

from repro.isa import Emulator, ProgramBuilder, int_reg, fp_reg, run_program


def test_halting_program_memory_effect(halting_program):
    emulator = Emulator(halting_program)
    result = emulator.run()
    assert result.halted and not result.fell_off
    assert emulator.memory[halting_program.out_addr] == 42


def test_fall_off_end_detected():
    b = ProgramBuilder("falloff")
    b.li(int_reg(1), 1)
    program = b.build()
    result = run_program(program)
    assert result.fell_off and not result.halted
    assert result.retired == 1


def test_budget_stops_infinite_loop():
    b = ProgramBuilder("spin")
    b.label("top")
    b.jmp("top")
    result = run_program(b.build(), max_instructions=50)
    assert result.retired == 50
    assert not result.terminated


def test_branch_trace_records_outcomes(branchy_program):
    emulator = Emulator(branchy_program, trace_branches=True)
    result = emulator.run(max_instructions=200)
    assert result.branch_outcomes
    taken = sum(1 for _, t in result.branch_outcomes if t)
    assert 0 < taken < len(result.branch_outcomes)


def test_pc_trace_matches_retired(sum_loop_program):
    emulator = Emulator(sum_loop_program, trace_pcs=True)
    result = emulator.run(max_instructions=300)
    assert len(result.pc_trace) == result.retired == 300


def test_loads_default_to_zero():
    b = ProgramBuilder("zeroload")
    r = int_reg(1)
    b.li(r, 12345)
    b.ld(r, r, 0)          # uninitialised address
    b.halt()
    emulator = Emulator(b.build())
    emulator.run()
    assert emulator.regs[r] == 0


def test_fld_returns_float():
    b = ProgramBuilder("fload")
    data = b.data_region([3])
    b.li(int_reg(1), data)
    b.fld(fp_reg(0), int_reg(1), 0)
    b.halt()
    emulator = Emulator(b.build())
    emulator.run()
    value = emulator.regs[fp_reg(0)]
    assert value == 3.0 and isinstance(value, float)


def test_indirect_jump_follows_register():
    b = ProgramBuilder("jr")
    b.li(int_reg(1), 3)
    b.jr(int_reg(1))
    b.li(int_reg(2), 99)   # skipped
    b.halt()               # pc 3
    emulator = Emulator(b.build())
    result = emulator.run()
    assert result.halted
    assert emulator.regs[int_reg(2)] == 0


def test_store_then_load_round_trip():
    b = ProgramBuilder("stld")
    scratch = b.reserve(2)
    r_v, r_b, r_out = int_reg(1), int_reg(2), int_reg(3)
    b.li(r_v, 777)
    b.li(r_b, scratch)
    b.st(r_v, r_b, 1)
    b.ld(r_out, r_b, 1)
    b.halt()
    emulator = Emulator(b.build())
    emulator.run()
    assert emulator.regs[r_out] == 777
