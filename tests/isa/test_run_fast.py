"""Oracle tests for the predecoded fast interpreter loop.

``Emulator.run_fast`` must be bit-identical to the reference ``step()``
path — architectural state, result flags and retire counts — both bare
and with the warm-up engine fused in, and its copy-on-write snapshots
must behave exactly like eager copies.
"""

import random

import pytest

from repro.isa.emulator import Emulator
from repro.sim import SimConfig
from repro.sim.sampling import WarmupEngine
from repro.workloads import get_program
from repro.workloads.fuzz import random_program


def _arch_state(emulator):
    return (emulator.pc, list(emulator.regs), dict(emulator.memory),
            emulator.retired_total)


def _flags(result):
    return (result.retired, result.halted, result.fell_off)


def _warm_state(warm):
    caches = []
    for cache in (warm.hierarchy.icache, warm.hierarchy.dcache,
                  warm.hierarchy.l2):
        # items() order is the LRU order — it must match exactly, not
        # just the membership.
        caches.append((cache.hits, cache.misses, cache.writebacks,
                       [list(s.items()) for s in cache._sets]))
    predictor = {key: value
                 for key, value in warm.predictor.__dict__.items()
                 if not key.startswith("_scratch")
                 # Instance-bound specialised closures: distinct (but
                 # behaviourally identical) objects per instance.
                 and key not in ("train", "predict")}
    if "ghr" in predictor and hasattr(warm.predictor, "history_mask"):
        predictor["ghr"] = predictor["ghr"] & warm.predictor.history_mask
    confidence = warm.confidence
    return (predictor, caches,
            [list(s.items()) for s in warm.btb._table],
            None if confidence is None else
            (confidence.table, confidence.ghr, confidence.queries,
             confidence.low_confidence),
            warm.instructions)


@pytest.mark.parametrize("seed", range(8))
def test_run_fast_matches_step_on_random_programs(seed):
    program = random_program(seed)
    reference = Emulator(program)
    fast = Emulator(program)
    ref_result = reference.run(max_instructions=6000)
    fast_result = fast.run_fast(6000)
    assert _flags(ref_result) == _flags(fast_result)
    assert _arch_state(reference) == _arch_state(fast)


@pytest.mark.parametrize("workload", ["gzip", "mcf", "crafty", "ammp"])
def test_run_fast_matches_step_on_workloads(workload):
    program = get_program(workload)
    reference = Emulator(program)
    fast = Emulator(program)
    ref_result = reference.run(max_instructions=20000)
    fast_result = fast.run_fast(20000)
    assert _flags(ref_result) == _flags(fast_result)
    assert _arch_state(reference) == _arch_state(fast)


def test_run_fast_chunked_equals_one_shot():
    program = get_program("gzip")
    reference = Emulator(program)
    fast = Emulator(program)
    reference.run(max_instructions=21000)
    for _ in range(7):
        fast.run_fast(3000)
    assert _arch_state(reference) == _arch_state(fast)


def test_negative_static_target_matches_reference_falloff():
    # Program() accepts instruction lists ProgramBuilder would never
    # emit; a negative branch target must fall off exactly like the
    # reference path instead of wrapping Python list indexing.
    from repro.isa.instructions import Instruction
    from repro.isa.opcodes import Op
    from repro.isa.program import Program
    program = Program("wild", [
        Instruction(Op.LI, dest=1, imm=0),
        Instruction(Op.BEQZ, srcs=(1,), target=-3),
        Instruction(Op.LI, dest=2, imm=9),
    ])
    reference = Emulator(program)
    fast = Emulator(program)
    ref_result = reference.run(max_instructions=100)
    fast_result = fast.run_fast(100)
    assert _flags(ref_result) == _flags(fast_result)
    assert _arch_state(reference) == _arch_state(fast)
    assert ref_result.fell_off


def test_run_fast_halt_and_falloff_flags():
    # A program that halts almost immediately.
    from repro.isa.program import ProgramBuilder
    builder = ProgramBuilder("tiny")
    builder.li(1, 7)
    builder.halt()
    program = builder.build()
    result = Emulator(program).run_fast(100)
    assert result.halted and not result.fell_off and result.retired == 1

    builder = ProgramBuilder("falls-off")
    builder.li(1, 7)
    program = builder.build()
    result = Emulator(program).run_fast(100)
    assert result.fell_off and result.retired == 1


@pytest.mark.parametrize("arch,predictor",
                         [("baseline", "tage"), ("cpr", "tage"),
                          ("baseline", "gshare")])
def test_fused_warm_forward_matches_observer_path(arch, predictor):
    config = (SimConfig.cpr(predictor=predictor) if arch == "cpr"
              else SimConfig.baseline(predictor=predictor))
    for program in (get_program("gzip"), random_program(3)):
        reference = Emulator(program)
        ref_warm = WarmupEngine(config, program)
        reference.observer = ref_warm
        reference.run(max_instructions=12000)

        fast = Emulator(program)
        fast_warm = WarmupEngine(config, program)
        fast.run_fast(12000, warmup=fast_warm)

        assert _arch_state(reference) == _arch_state(fast)
        assert _warm_state(ref_warm) == _warm_state(fast_warm)


def test_run_fast_with_observer_falls_back_to_reference_path():
    program = get_program("gzip")
    seen = []
    emulator = Emulator(program)
    emulator.observer = lambda pc, inst, taken, mem, nxt: seen.append(pc)
    result = emulator.run_fast(500)
    assert result.retired == 500
    assert len(seen) == 500


def test_run_fast_rejects_conflicting_observer_and_warmup():
    program = get_program("gzip")
    config = SimConfig.baseline()
    emulator = Emulator(program)
    emulator.observer = lambda *args: None
    with pytest.raises(ValueError):
        emulator.run_fast(100, warmup=WarmupEngine(config, program))


# --------------------------------------------------------------------- #
# Copy-on-write snapshots.
# --------------------------------------------------------------------- #

def test_shared_snapshot_is_point_in_time():
    program = get_program("gzip")
    emulator = Emulator(program)
    emulator.run_fast(1000)
    shared = emulator.snapshot(share=True)
    eager = emulator.snapshot()
    emulator.run_fast(5000)  # must copy-on-write away from the snapshot
    assert shared.pc == eager.pc
    assert shared.regs == eager.regs
    assert dict(shared.memory) == dict(eager.memory)


def test_shared_snapshot_restore_determinism():
    program = get_program("gzip")
    emulator = Emulator(program)
    emulator.run_fast(1000)
    shared = emulator.snapshot(share=True)
    emulator.run_fast(4000)

    resumed = Emulator(program)
    resumed.restore(shared)
    resumed.run_fast(4000)
    straight = Emulator(program)
    straight.run_fast(5000)
    assert _arch_state(resumed) == _arch_state(straight)


def test_released_snapshot_avoids_the_copy():
    program = get_program("gzip")
    emulator = Emulator(program)
    emulator.run_fast(1000)
    shared = emulator.snapshot(share=True)
    live_dict = emulator.memory
    shared.release()
    emulator.run_fast(1000)
    # No copy was made: the emulator still mutates its original dict.
    assert emulator.memory is live_dict


def test_unreleased_snapshot_forces_exactly_one_copy():
    program = get_program("gzip")
    emulator = Emulator(program)
    emulator.run_fast(1000)
    shared = emulator.snapshot(share=True)
    live_dict = emulator.memory
    emulator.run_fast(1000)
    assert emulator.memory is not live_dict
    assert shared.memory is live_dict


def test_releasing_one_of_two_shared_snapshots_keeps_the_guard():
    program = get_program("gzip")
    emulator = Emulator(program)
    emulator.run_fast(1000)
    first = emulator.snapshot(share=True)
    second = emulator.snapshot(share=True)  # same dict, no execution
    first.release()
    first.release()  # idempotent: must not double-decrement
    frozen = dict(second.memory)
    emulator.run_fast(2000)  # must still copy-on-write for `second`
    assert dict(second.memory) == frozen
    second.release()
    live_dict = emulator.memory
    emulator.run_fast(1000)
    assert emulator.memory is live_dict
