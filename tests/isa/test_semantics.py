"""Functional-semantics tests, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import Op
from repro.isa.semantics import branch_taken, effective_address, evaluate, wrap_int

int64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


@given(int64, int64)
def test_add_matches_two_complement(a, b):
    assert evaluate(Op.ADD, (a, b)) == wrap_int(a + b)


@given(int64, int64)
def test_sub_then_add_round_trips(a, b):
    diff = evaluate(Op.SUB, (a, b))
    assert evaluate(Op.ADD, (diff, b)) == wrap_int(a)


@given(int64)
def test_xor_self_is_zero(a):
    assert evaluate(Op.XOR, (a, a)) == 0


@given(int64, st.integers(min_value=0, max_value=63))
def test_shift_left_then_right_masks(a, s):
    shifted = evaluate(Op.SHL, (a, s))
    assert shifted == wrap_int(a << s)


@given(int64)
def test_wrap_int_idempotent(a):
    assert wrap_int(wrap_int(a)) == wrap_int(a)


def test_div_by_zero_defined():
    assert evaluate(Op.DIV, (42, 0)) == 0
    assert evaluate(Op.FDIV, (1.5, 0.0)) == 0.0


def test_div_truncates_toward_zero():
    assert evaluate(Op.DIV, (7, 2)) == 3
    assert evaluate(Op.DIV, (-7, 2)) == -3


def test_slt_and_fcmplt():
    assert evaluate(Op.SLT, (1, 2)) == 1
    assert evaluate(Op.SLT, (2, 1)) == 0
    assert evaluate(Op.FCMPLT, (0.5, 1.0)) == 1
    assert evaluate(Op.FCMPLT, (1.5, 1.0)) == 0


def test_immediate_ops():
    assert evaluate(Op.LI, (), imm=77) == 77
    assert evaluate(Op.ADDI, (5,), imm=-3) == 2
    assert evaluate(Op.MOV, (9,)) == 9


def test_fcvt_converts_int_to_float():
    assert evaluate(Op.FCVT, (3,)) == 3.0
    assert isinstance(evaluate(Op.FCVT, (3,)), float)


@given(int64, int64)
def test_branch_semantics_consistent(a, b):
    assert branch_taken(Op.BEQ, (a, b)) == (a == b)
    assert branch_taken(Op.BNE, (a, b)) == (a != b)
    assert branch_taken(Op.BLT, (a, b)) == (a < b)
    assert branch_taken(Op.BGE, (a, b)) == (a >= b)


@given(int64)
def test_zero_branches(a):
    assert branch_taken(Op.BEQZ, (a,)) == (a == 0)
    assert branch_taken(Op.BNEZ, (a,)) == (a != 0)


def test_branch_taken_rejects_non_branch():
    with pytest.raises(ValueError):
        branch_taken(Op.ADD, (1, 2))


def test_evaluate_rejects_control_ops():
    with pytest.raises(ValueError):
        evaluate(Op.BEQ, (1, 2))


@given(st.integers(min_value=0, max_value=2 ** 40),
       st.integers(min_value=-64, max_value=64))
def test_effective_address_non_negative(base, imm):
    assert effective_address(base, imm) >= 0


def test_effective_address_handles_float_base():
    assert effective_address(10.7, 2) == 12
