"""Functional-semantics tests, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import Op
from repro.isa.semantics import BRANCH_FNS, EVAL_FNS, branch_taken, \
    effective_address, evaluate, wrap_int

int64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


@given(int64, int64)
def test_add_matches_two_complement(a, b):
    assert evaluate(Op.ADD, (a, b)) == wrap_int(a + b)


@given(int64, int64)
def test_sub_then_add_round_trips(a, b):
    diff = evaluate(Op.SUB, (a, b))
    assert evaluate(Op.ADD, (diff, b)) == wrap_int(a)


@given(int64)
def test_xor_self_is_zero(a):
    assert evaluate(Op.XOR, (a, a)) == 0


@given(int64, st.integers(min_value=0, max_value=63))
def test_shift_left_then_right_masks(a, s):
    shifted = evaluate(Op.SHL, (a, s))
    assert shifted == wrap_int(a << s)


@given(int64)
def test_wrap_int_idempotent(a):
    assert wrap_int(wrap_int(a)) == wrap_int(a)


def test_div_by_zero_defined():
    assert evaluate(Op.DIV, (42, 0)) == 0
    assert evaluate(Op.FDIV, (1.5, 0.0)) == 0.0


def test_div_truncates_toward_zero():
    assert evaluate(Op.DIV, (7, 2)) == 3
    assert evaluate(Op.DIV, (-7, 2)) == -3


def test_slt_and_fcmplt():
    assert evaluate(Op.SLT, (1, 2)) == 1
    assert evaluate(Op.SLT, (2, 1)) == 0
    assert evaluate(Op.FCMPLT, (0.5, 1.0)) == 1
    assert evaluate(Op.FCMPLT, (1.5, 1.0)) == 0


def test_immediate_ops():
    assert evaluate(Op.LI, (), imm=77) == 77
    assert evaluate(Op.ADDI, (5,), imm=-3) == 2
    assert evaluate(Op.MOV, (9,)) == 9


def test_fcvt_converts_int_to_float():
    assert evaluate(Op.FCVT, (3,)) == 3.0
    assert isinstance(evaluate(Op.FCVT, (3,)), float)


@given(int64, int64)
def test_branch_semantics_consistent(a, b):
    assert branch_taken(Op.BEQ, (a, b)) == (a == b)
    assert branch_taken(Op.BNE, (a, b)) == (a != b)
    assert branch_taken(Op.BLT, (a, b)) == (a < b)
    assert branch_taken(Op.BGE, (a, b)) == (a >= b)


@given(int64)
def test_zero_branches(a):
    assert branch_taken(Op.BEQZ, (a,)) == (a == 0)
    assert branch_taken(Op.BNEZ, (a,)) == (a != 0)


def test_branch_taken_rejects_non_branch():
    with pytest.raises(ValueError):
        branch_taken(Op.ADD, (1, 2))


def test_evaluate_rejects_control_ops():
    with pytest.raises(ValueError):
        evaluate(Op.BEQ, (1, 2))


@given(st.integers(min_value=0, max_value=2 ** 40),
       st.integers(min_value=-64, max_value=64))
def test_effective_address_non_negative(base, imm):
    assert effective_address(base, imm) >= 0


def test_effective_address_handles_float_base():
    assert effective_address(10.7, 2) == 12


# --------------------------------------------------------------------- #
# Pre-bound per-op closure parity: the timing cores execute exclusively
# through EVAL_FNS/BRANCH_FNS (both schedulers share that path, so the
# scan-vs-event equivalence suite cannot catch a closure that drifts
# from the reference ladder) — these properties are the actual pin.
# --------------------------------------------------------------------- #

_INT_BINARY_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.AND, Op.OR,
                   Op.XOR, Op.SHL, Op.SHR, Op.SLT)
_FP_BINARY_OPS = (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FCMPLT)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


def test_closure_tables_cover_exactly_the_right_ops():
    from repro.isa.opcodes import BRANCH_OPS, LOAD_OPS, WRITES_REG
    assert set(EVAL_FNS) == WRITES_REG - LOAD_OPS
    assert set(BRANCH_FNS) == BRANCH_OPS


@given(int64, int64, int64)
def test_eval_fns_match_evaluate_on_int_ops(a, b, imm):
    for op in _INT_BINARY_OPS:
        assert EVAL_FNS[op]((a, b), imm) == evaluate(op, (a, b), imm), op
    assert EVAL_FNS[Op.ADDI]((a,), imm) == evaluate(Op.ADDI, (a,), imm)
    assert EVAL_FNS[Op.MOV]((a,), imm) == evaluate(Op.MOV, (a,), imm)
    assert EVAL_FNS[Op.LI]((), imm) == evaluate(Op.LI, (), imm)


@given(finite, finite)
def test_eval_fns_match_evaluate_on_fp_ops(x, y):
    for op in _FP_BINARY_OPS:
        expected = evaluate(op, (x, y))
        got = EVAL_FNS[op]((x, y), 0)
        assert got == expected or (got != got and expected != expected), op
    assert EVAL_FNS[Op.FMOV]((x,), 0) == evaluate(Op.FMOV, (x,))
    assert EVAL_FNS[Op.FCVT]((x,), 0) == evaluate(Op.FCVT, (x,))


def test_eval_fns_match_division_by_zero_totality():
    assert EVAL_FNS[Op.DIV]((42, 0), 0) == evaluate(Op.DIV, (42, 0)) == 0
    assert EVAL_FNS[Op.FDIV]((4.2, 0.0), 0) \
        == evaluate(Op.FDIV, (4.2, 0.0)) == 0.0


@given(int64, int64)
def test_branch_fns_match_branch_taken(a, b):
    for op in BRANCH_FNS:
        assert BRANCH_FNS[op]((a, b)) == branch_taken(op, (a, b)), op
