"""ProgramBuilder and Instruction validation tests."""

import pytest

from repro.isa import Instruction, Op, ProgramBuilder, int_reg, run_program


def test_forward_label_resolution():
    b = ProgramBuilder("fwd")
    b.beq(int_reg(1), int_reg(2), "later")
    b.li(int_reg(3), 1)
    b.label("later")
    b.halt()
    program = b.build()
    assert program.instructions[0].target == 2


def test_undefined_label_raises():
    b = ProgramBuilder("bad")
    b.jmp("nowhere")
    with pytest.raises(ValueError, match="nowhere"):
        b.build()


def test_duplicate_label_raises():
    b = ProgramBuilder("dup")
    b.label("x")
    with pytest.raises(ValueError, match="duplicate"):
        b.label("x")


def test_data_regions_do_not_overlap():
    b = ProgramBuilder("data")
    first = b.data_region([1, 2, 3])
    second = b.data_region([4, 5])
    assert second >= first + 3
    program = b.build()
    assert program.initial_memory[first + 2] == 3
    assert program.initial_memory[second + 1] == 5


def test_data_region_alignment():
    b = ProgramBuilder("align")
    b.data_region([1])
    aligned = b.data_region([2], align=64)
    assert aligned % 64 == 0


def test_reserve_fills_default():
    b = ProgramBuilder("reserve")
    base = b.reserve(4)
    program = b.build()
    assert all(program.initial_memory[base + i] == 0 for i in range(4))


def test_instruction_requires_dest_consistency():
    with pytest.raises(ValueError):
        Instruction(Op.ADD, dest=None, srcs=(1, 2))
    with pytest.raises(ValueError):
        Instruction(Op.ST, dest=3, srcs=(1, 2))
    with pytest.raises(ValueError):
        Instruction(Op.BEQ, srcs=(1, 2), target=None)


def test_instruction_metadata_flags():
    load = Instruction(Op.LD, dest=1, srcs=(2,))
    assert load.is_load and load.is_mem and load.writes_reg
    store = Instruction(Op.ST, srcs=(1, 2))
    assert store.is_store and not store.writes_reg
    branch = Instruction(Op.BNE, srcs=(1, 2), target=0)
    assert branch.is_branch and branch.is_control
    jump = Instruction(Op.JR, srcs=(1,))
    assert jump.is_indirect and jump.is_control and not jump.is_branch


def test_fetch_out_of_range_returns_none():
    b = ProgramBuilder("tiny")
    b.halt()
    program = b.build()
    assert program.fetch(0) is not None
    assert program.fetch(1) is None
    assert program.fetch(-1) is None


def test_listing_contains_labels():
    b = ProgramBuilder("listing")
    b.label("start")
    b.li(int_reg(1), 5)
    b.jmp("start")
    text = b.build().listing()
    assert "start:" in text
    assert "li" in text


def test_memory_line_addrs_cached_and_line_granular():
    b = ProgramBuilder("lines")
    b.data_region(list(range(20)))
    program = b.build()
    lines = program.memory_line_addrs
    assert lines == program.memory_line_addrs  # cached
    assert all(addr % 8 == 0 for addr in lines)
    # 20 words starting at a 0x1000-aligned base span 3 lines.
    assert len(lines) == 3


def test_builder_program_executes(halting_program):
    result = run_program(halting_program)
    assert result.halted
    assert result.retired == 5
