"""``EmulatorState.release`` reference counting (copy-on-write memory).

Shared checkpoints (``snapshot(share=True)``) alias the emulator's live
memory dict; ``_mem_shared`` counts the live aliases and ``_mem_cow``
guards the dict against in-place mutation.  A buggy release — double
decrement, or a decrement credited against the wrong dict generation —
would lift the guard while a sibling checkpoint still aliases the dict,
letting the emulator scribble over the sibling's supposedly
point-in-time memory.
"""

from __future__ import annotations

from repro.isa.emulator import Emulator, EmulatorResult
from repro.isa import ProgramBuilder, int_reg


def _store_loop_program():
    """Keeps storing fresh values so every resumed run mutates memory."""
    b = ProgramBuilder("store_loop")
    out = b.data_region([0] * 8)
    r_i, r_out = int_reg(1), int_reg(2)
    b.li(r_out, out)
    b.label("loop")
    b.addi(r_i, r_i, 1)
    b.st(r_i, r_out, 0)
    b.jmp("loop")
    program = b.build()
    program.out_addr = out
    return program


def _run(emulator, n):
    result = EmulatorResult()
    for _ in range(n):
        if not emulator.step(result):
            break
    return result


def test_release_is_idempotent():
    emulator = Emulator(_store_loop_program())
    _run(emulator, 10)
    state = emulator.snapshot(share=True)
    assert emulator._mem_cow and emulator._mem_shared == 1
    state.release()
    assert not emulator._mem_cow
    state.release()                      # double release: no-op
    state.release()
    assert emulator._mem_shared >= 0
    assert not emulator._mem_cow


def test_double_release_does_not_unguard_sibling():
    """Two shared checkpoints of the same dict: releasing one twice
    must not count for the sibling — the emulator must still detach
    before mutating, keeping the survivor point-in-time."""
    program = _store_loop_program()
    emulator = Emulator(program)
    _run(emulator, 10)
    first = emulator.snapshot(share=True)
    second = emulator.snapshot(share=True)   # same dict generation
    assert first.memory is second.memory is emulator.memory
    assert emulator._mem_shared == 2

    first.release()
    first.release()                          # the attempted double-free
    first.release()
    assert emulator._mem_cow, "sibling checkpoint lost its COW guard"

    frozen = dict(second.memory)
    _run(emulator, 30)                       # mutates memory via stores
    assert second.memory == frozen, "sibling checkpoint was corrupted"
    assert emulator.memory is not second.memory


def test_release_after_restore_does_not_unguard_new_generation():
    """Restoring installs a fresh private dict; releasing a checkpoint
    from the *old* generation afterwards must not lift the guard a
    *new* shared checkpoint holds on the new dict."""
    program = _store_loop_program()
    emulator = Emulator(program)
    _run(emulator, 10)
    old = emulator.snapshot(share=True)

    private = emulator.snapshot()            # private restore point
    _run(emulator, 5)
    emulator.restore(private)                # new dict, _mem_cow False
    fresh = emulator.snapshot(share=True)    # new generation alias
    assert fresh.memory is emulator.memory
    assert old.memory is not emulator.memory

    old.release()                            # stale-generation release
    old.release()
    assert emulator._mem_cow, "stale release lifted the new guard"

    frozen = dict(fresh.memory)
    _run(emulator, 30)
    assert fresh.memory == frozen
    assert emulator.memory is not fresh.memory


def test_resume_from_shared_checkpoint_is_deterministic():
    """End to end: a shared checkpoint seeded back into an emulator
    replays the exact same stream even after its sibling was released
    and the original emulator kept running."""
    program = _store_loop_program()
    emulator = Emulator(program)
    _run(emulator, 17)
    checkpoint = emulator.snapshot(share=True)
    sibling = emulator.snapshot(share=True)
    sibling.release()
    _run(emulator, 40)                       # donor keeps mutating

    replay_a = Emulator(program)
    replay_a.restore(checkpoint)
    _run(replay_a, 25)
    replay_b = Emulator(program)
    replay_b.restore(checkpoint)
    _run(replay_b, 25)
    assert replay_a.memory == replay_b.memory
    assert replay_a.pc == replay_b.pc
    assert replay_a.regs == replay_b.regs
