"""Bit-exactness oracle tests for the folded-history TAGE fast paths.

The predictor keeps three incrementally-maintained fold registers per
tagged component (packed into three group integers) and a generated,
geometry-specialised ``train``.  Everything here pins those fast paths
to the reference implementations: ``_fold`` re-folding the whole
history, ``_index``/``_tag`` recomputed from an explicit history, and
``train_reference`` (the public predict/update/restore composition).
"""

import pickle
import random

import pytest

from repro.branch.tage import TagePredictor, _fold


def _drive(predictor, rng, steps, pc_space=4096, bias=0.6):
    """Drive the reference predict/update/repair discipline."""
    for _ in range(steps):
        pc = rng.randrange(pc_space)
        prediction = predictor.predict(pc)
        taken = rng.random() < bias
        predictor.update(prediction, taken)
        if prediction.taken != taken:
            prediction.taken = taken
            predictor.restore(prediction)


def _state(predictor):
    """Comparable architectural state (scratch buffers excluded, ghr
    normalised — the generated train defers masking)."""
    state = {key: value for key, value in predictor.__getstate__().items()
             if not key.startswith("_scratch")}
    state["ghr"] = state["ghr"] & predictor.history_mask
    return state


def _assert_folds_match_reference(predictor):
    for comp, length in enumerate(predictor.history_lengths):
        history = predictor.ghr
        assert predictor._folded(comp) == (
            _fold(history, length, predictor.table_bits),
            _fold(history, length, predictor.tag_bits),
            _fold(history, length, predictor.tag_bits - 1),
        ), f"component {comp} fold registers diverged"


def test_fold_registers_track_reference_over_random_stream():
    predictor = TagePredictor()
    rng = random.Random(7)
    for step in range(2000):
        pc = rng.randrange(1 << 14)
        prediction = predictor.predict(pc)
        taken = rng.random() < 0.6
        predictor.update(prediction, taken)
        if prediction.taken != taken:
            prediction.taken = taken
            predictor.restore(prediction)
        if step % 97 == 0:
            _assert_folds_match_reference(predictor)
    _assert_folds_match_reference(predictor)


def test_prediction_indices_and_tags_match_fold_reference():
    predictor = TagePredictor(table_bits=8, tag_bits=7)
    rng = random.Random(3)
    for _ in range(1200):
        pc = rng.randrange(4096)
        history = predictor.ghr & predictor.history_mask
        prediction = predictor.predict(pc)
        _snap, _prov, _alt, indices, tags, _pp, _ap = prediction.meta
        for comp in range(predictor.num_tagged):
            assert indices[comp] == predictor._index(pc, comp, history)
            assert tags[comp] == predictor._tag(pc, comp, history)
        taken = rng.random() < 0.5
        predictor.update(prediction, taken)
        if prediction.taken != taken:
            prediction.taken = taken
            predictor.restore(prediction)


@pytest.mark.parametrize("table_bits,tag_bits,period",
                         [(12, 10, 256 * 1024),   # default geometry
                          (7, 6, 997),            # non-pow2 decay period
                          (6, 4, 64)])            # tiny, frequent decay
def test_train_bit_identical_to_reference_flow(table_bits, tag_bits,
                                               period):
    reference = TagePredictor(table_bits=table_bits, tag_bits=tag_bits,
                              useful_reset_period=period)
    fast = TagePredictor(table_bits=table_bits, tag_bits=tag_bits,
                         useful_reset_period=period)
    rng = random.Random(table_bits * 31 + period)
    for step in range(6000):
        pc = rng.randrange(4096)
        taken = rng.random() < 0.55
        assert reference.train_reference(pc, taken) \
            == fast.train(pc, taken), f"correctness diverged at {step}"
    assert _state(reference) == _state(fast)


@pytest.mark.parametrize("table_bits,tag_bits",
                         [(12, 10),               # default geometry
                          (7, 6),                 # odd widths
                          (6, 4)])                # tiny tables
def test_predict_bit_identical_to_reference(table_bits, tag_bits):
    """The geometry-specialised ``predict`` (bound on instances) must
    match the class-level reference bit for bit: same taken bit, same
    meta tuple (snapshot, provider/alt, indices, tags, component
    predictions) and same fold/ghr side effects, across updates,
    allocations and mispredict restores."""
    reference = TagePredictor(table_bits=table_bits, tag_bits=tag_bits)
    fast = TagePredictor(table_bits=table_bits, tag_bits=tag_bits)
    rng = random.Random(table_bits * 17 + tag_bits)
    for step in range(4000):
        pc = rng.randrange(4096)
        ref_pred = TagePredictor.predict(reference, pc)  # class reference
        fast_pred = fast.predict(pc)                     # bound specialised
        assert fast_pred.taken == ref_pred.taken, f"taken @ {step}"
        assert fast_pred.meta == ref_pred.meta, f"meta @ {step}"
        taken = rng.random() < 0.55
        reference.update(ref_pred, taken)
        fast.update(fast_pred, taken)
        if ref_pred.taken != taken:
            ref_pred.taken = taken
            reference.restore(ref_pred)
            fast_pred.taken = taken
            fast.restore(fast_pred)
    assert _state(reference) == _state(fast)


def test_train_interleaves_with_predict_update():
    """A predictor must survive mixing the two disciplines (the warm
    predictor is cloned into windows that run predict/update)."""
    mixed = TagePredictor(table_bits=7, tag_bits=6)
    reference = TagePredictor(table_bits=7, tag_bits=6)
    rng = random.Random(11)
    for step in range(3000):
        pc = rng.randrange(2048)
        taken = rng.random() < 0.6
        reference.train_reference(pc, taken)
        if step % 3 == 0:
            prediction = mixed.predict(pc)
            correct = prediction.taken == taken
            mixed.update(prediction, taken)
            if not correct:
                prediction.taken = taken
                mixed.restore(prediction)
        else:
            mixed.train(pc, taken)
    assert _state(mixed) == _state(reference)


def test_set_history_rebuilds_folds():
    predictor = TagePredictor()
    rng = random.Random(5)
    for _ in range(300):
        predictor.train(rng.randrange(1024), rng.random() < 0.5)
    snapshot = rng.getrandbits(predictor.max_history)
    predictor.set_history(snapshot)
    assert predictor.get_history() == snapshot & predictor.history_mask
    _assert_folds_match_reference(predictor)
    predictor.set_history_appended(snapshot, True)
    assert predictor.get_history() \
        == ((snapshot << 1) | 1) & predictor.history_mask
    _assert_folds_match_reference(predictor)


def test_clone_shares_no_fold_or_table_state():
    predictor = TagePredictor(table_bits=6, tag_bits=5)
    rng = random.Random(9)
    for _ in range(500):
        predictor.train(rng.randrange(512), rng.random() < 0.5)
    twin = predictor.clone()
    assert _state(twin) == _state(predictor)
    frozen = _state(predictor)
    # Training the clone (fast path) must not leak into the original —
    # this also catches a stale generated-train binding, which would
    # mutate the original's tables.
    for _ in range(500):
        twin.train(rng.randrange(512), rng.random() < 0.5)
    assert _state(predictor) == frozen
    _assert_folds_match_reference(twin)


def test_pickle_roundtrip_rebinds_generated_train():
    predictor = TagePredictor(table_bits=6, tag_bits=5)
    rng = random.Random(13)
    for _ in range(200):
        predictor.train(rng.randrange(512), rng.random() < 0.5)
    restored = pickle.loads(pickle.dumps(predictor,
                                         pickle.HIGHEST_PROTOCOL))
    assert _state(restored) == _state(predictor)
    # Both must continue identically through the fast path.
    for _ in range(200):
        pc = rng.randrange(512)
        taken = rng.random() < 0.5
        assert restored.train(pc, taken) == predictor.train(pc, taken)
    assert _state(restored) == _state(predictor)


def test_columnar_decay_matches_dense_semantics():
    predictor = TagePredictor(table_bits=6, tag_bits=5)
    predictor.useful_table[0][3] = 3
    predictor.useful_table[4][10] = 1
    predictor._decay_useful()
    assert predictor.useful_table[0][3] == 2
    assert predictor.useful_table[4][10] == 0
    assert all(value == 0 for value in predictor.useful_table[1])
