"""Direction predictor tests: gshare, TAGE, bimodal, static."""

import pytest

from repro.branch import (
    BimodalPredictor,
    GsharePredictor,
    StaticPredictor,
    TagePredictor,
    make_predictor,
)


def train(predictor, pc, outcome_fn, count):
    correct = 0
    for i in range(count):
        prediction = predictor.predict(pc)
        actual = outcome_fn(i)
        if prediction.taken == actual:
            correct += 1
        predictor.update(prediction, actual)
        if prediction.taken != actual:
            prediction.taken = actual
            predictor.restore(prediction)
    return correct / count


@pytest.mark.parametrize("factory", [GsharePredictor, TagePredictor,
                                     BimodalPredictor])
def test_learns_always_taken(factory):
    accuracy = train(factory(), pc=100, outcome_fn=lambda i: True, count=300)
    assert accuracy > 0.95


@pytest.mark.parametrize("factory", [GsharePredictor, TagePredictor])
def test_learns_short_alternation(factory):
    accuracy = train(factory(), 100, lambda i: i % 2 == 0, 600)
    assert accuracy > 0.9


def test_tage_beats_gshare_on_long_low_entropy_pattern():
    """The Figs. 6/7 differentiator: on a long low-entropy pattern
    (ambiguous 16-bit windows), TAGE's geometric histories cut the
    misprediction rate far below gshare's."""
    import random
    rng = random.Random(7)
    pattern = [True] * 61
    for zero in rng.sample(range(61), 4):
        pattern[zero] = False
    outcome = lambda i: pattern[i % 61]
    gshare_acc = train(GsharePredictor(), 12, outcome, 6000)
    tage_acc = train(TagePredictor(), 12, outcome, 6000)
    assert tage_acc >= gshare_acc
    assert (1 - tage_acc) < 0.5 * (1 - gshare_acc)
    assert tage_acc > 0.99


def test_gshare_history_speculative_update_and_restore():
    predictor = GsharePredictor(history_bits=8)
    p1 = predictor.predict(10)
    ghr_after = predictor.ghr
    assert ghr_after & 1 == (1 if p1.taken else 0)
    # A squash repairs the history with the actual outcome.
    p1.taken = not p1.taken
    predictor.restore(p1)
    assert predictor.ghr & 1 == (1 if p1.taken else 0)


def test_history_snapshot_round_trip():
    for predictor in (GsharePredictor(), TagePredictor()):
        predictor.predict(3)
        predictor.predict(5)
        snap = predictor.get_history()
        predictor.predict(9)
        predictor.set_history(snap)
        assert predictor.get_history() == snap


def test_set_history_appended():
    predictor = GsharePredictor(history_bits=8)
    predictor.set_history_appended(0b1010, True)
    assert predictor.get_history() == 0b10101


def test_static_predictor_never_learns():
    predictor = StaticPredictor(taken=False)
    accuracy = train(predictor, 5, lambda i: True, 50)
    assert accuracy == 0.0


def test_bimodal_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BimodalPredictor(entries=1000)


def test_gshare_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        GsharePredictor(pht_entries=1000)


def test_factory_dispatch():
    assert isinstance(make_predictor("gshare"), GsharePredictor)
    assert isinstance(make_predictor("tage"), TagePredictor)
    with pytest.raises(ValueError):
        make_predictor("nonsense")


def test_accuracy_statistic_tracks():
    predictor = GsharePredictor()
    train(predictor, 3, lambda i: True, 100)
    assert predictor.predictions == 100
    assert predictor.accuracy > 0.9


def test_tage_geometric_lengths_strictly_increase():
    predictor = TagePredictor()
    lengths = predictor.history_lengths
    assert len(lengths) == 7
    assert all(b > a for a, b in zip(lengths, lengths[1:]))
    assert lengths[-1] >= 128
