"""TAGE internal-mechanism tests: allocation, provider selection,
useful counters, the use_alt heuristic and history folding."""

from repro.branch.tage import TagePredictor, _fold


def test_fold_reduces_to_requested_bits():
    assert _fold(0, 64, 8) == 0
    value = (1 << 40) | (1 << 20) | 3
    folded = _fold(value, 64, 8)
    assert 0 <= folded < 256


def test_fold_masks_history_length():
    # Bits beyond the history length must not affect the fold.
    base = 0b1010
    assert _fold(base, 4, 4) == _fold(base | (1 << 10), 4, 4)


def test_allocation_on_misprediction():
    predictor = TagePredictor(table_bits=6, tag_bits=6)
    pc = 33
    # Base predictor starts weakly-taken: a not-taken branch
    # mispredicts and must allocate a tagged entry.
    prediction = predictor.predict(pc)
    assert prediction.taken
    predictor.update(prediction, False)
    allocated = sum(1 for table in predictor.tag_table
                    for tag in table if tag)
    assert allocated >= 1


def test_provider_overrides_base_after_training():
    predictor = TagePredictor(table_bits=6, tag_bits=6)
    pc = 12
    # Train an alternating pattern the 2-bit base can never capture.
    correct_late = 0
    for i in range(400):
        prediction = predictor.predict(pc)
        actual = i % 2 == 0
        if i > 300 and prediction.taken == actual:
            correct_late += 1
        predictor.update(prediction, actual)
        if prediction.taken != actual:
            prediction.taken = actual
            predictor.restore(prediction)
    assert correct_late > 80


def test_useful_counter_decay():
    predictor = TagePredictor(useful_reset_period=8)
    predictor.useful_table[0][0] = 3
    for i in range(8):
        prediction = predictor.predict(i * 64)
        predictor.update(prediction, True)
    assert predictor.useful_table[0][0] <= 2


def test_clone_is_independent_and_identical():
    predictor = TagePredictor(table_bits=6, tag_bits=6)
    for i in range(300):
        prediction = predictor.predict(i % 11)
        predictor.update(prediction, (i * 2654435761) % 3 == 0)
    twin = predictor.clone()
    assert twin.ctr_table == predictor.ctr_table
    assert twin.ghr == predictor.ghr
    # Identical futures from identical state...
    assert twin.predict(5).taken == predictor.predict(5).taken
    # ...and training the clone must not touch the original.
    before = [table[:] for table in predictor.ctr_table]
    for i in range(300):
        prediction = twin.predict(i % 11)
        twin.update(prediction, i % 2 == 0)
    assert predictor.ctr_table == before


def test_use_alt_counter_bounded():
    predictor = TagePredictor()
    for i in range(2000):
        prediction = predictor.predict(i % 7)
        predictor.update(prediction, (i * 2654435761) % 3 == 0)
        if prediction.taken != ((i * 2654435761) % 3 == 0):
            prediction.taken = not prediction.taken
            predictor.restore(prediction)
    assert 0 <= predictor.use_alt <= 15


def test_history_mask_applied():
    predictor = TagePredictor()
    for i in range(predictor.max_history + 50):
        prediction = predictor.predict(5)
        predictor.update(prediction, True)
    assert predictor.ghr <= predictor.history_mask
