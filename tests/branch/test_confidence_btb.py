"""JRS confidence estimator and BTB tests."""

import pytest

from repro.branch import BranchTargetBuffer, ConfidenceEstimator


def test_confidence_rises_with_correct_streak():
    est = ConfidenceEstimator(threshold=3, history_bits=0)
    pc = 40
    assert not est.is_confident(pc)
    for _ in range(3):
        est.update(pc, correct=True, taken=True)
    assert est.is_confident(pc)


def test_confidence_resets_on_mispredict():
    est = ConfidenceEstimator(threshold=3, history_bits=0)
    pc = 40
    for _ in range(5):
        est.update(pc, correct=True, taken=True)
    assert est.is_confident(pc)
    est.update(pc, correct=False, taken=False)
    assert not est.is_confident(pc)


def test_confidence_counter_saturates():
    est = ConfidenceEstimator(counter_bits=4, threshold=3, history_bits=0)
    for _ in range(100):
        est.update(7, correct=True, taken=True)
    assert est.table[est._index(7)] == 15


def test_low_confidence_rate_statistic():
    est = ConfidenceEstimator(threshold=3, history_bits=0)
    est.is_confident(1)
    est.is_confident(2)
    assert est.low_confidence_rate == 1.0


def test_confidence_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        ConfidenceEstimator(entries=1000)


def test_btb_learns_last_target():
    btb = BranchTargetBuffer()
    assert btb.predict(10) is None
    btb.update(10, 500, correct=False)
    assert btb.predict(10) == 500
    btb.update(10, 900, correct=False)
    assert btb.predict(10) == 900
    assert btb.mispredicted_targets == 2


def test_btb_lru_eviction_within_set():
    btb = BranchTargetBuffer(sets=2, ways=2)
    # Three pcs that collide in set 0 (pc & 1 == 0).
    btb.update(0, 11, True)
    btb.update(4, 22, True)
    btb.update(8, 33, True)      # evicts pc 0
    assert btb.predict(0) is None
    assert btb.predict(4) == 22
    assert btb.predict(8) == 33


def test_btb_hit_statistics():
    btb = BranchTargetBuffer()
    btb.predict(3)
    btb.update(3, 77, True)
    btb.predict(3)
    assert btb.lookups == 2
    assert btb.hits == 1
