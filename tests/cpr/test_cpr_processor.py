"""CPR processor behaviour tests (checkpoints, refcounts, rollback)."""

from repro.isa import Emulator
from repro.sim import SimConfig, build_core


def run_cpr(program, budget=600, **overrides):
    config = SimConfig.cpr(predictor="gshare").with_(
        record_commits=True, **overrides)
    core = build_core(program, config)
    stats = core.run(max_instructions=budget)
    return core, stats


def test_commit_trace_matches_emulator(branchy_program):
    core, stats = run_cpr(branchy_program)
    emulator = Emulator(branchy_program, trace_pcs=True)
    reference = emulator.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace


def test_imprecise_recovery_reexecutes_correct_path(branchy_program):
    """The cost MSP removes: with few checkpoints, CPR re-executes
    correct-path instructions after rollback."""
    core, stats = run_cpr(branchy_program, confidence_threshold=0)
    assert stats.branch_mispredictions > 0
    assert stats.correct_path_reexecuted > 0


def test_checkpoint_count_respects_limit(branchy_program):
    core, stats = run_cpr(branchy_program, checkpoints=4)
    assert len(core.checkpoints) <= 4
    assert stats.checkpoints_created > 0


def test_more_checkpoints_reduce_reexecution(branchy_program):
    few = run_cpr(branchy_program, checkpoints=2,
                  confidence_threshold=0)[1]
    many = run_cpr(branchy_program, checkpoints=16,
                   confidence_threshold=15)[1]
    assert many.correct_path_reexecuted <= few.correct_path_reexecuted


def test_refcounts_consistent_after_run(sum_loop_program):
    core, _ = run_cpr(sum_loop_program)
    # Recompute holds from first principles and compare.
    counts = [0] * core.num_phys
    for handle in core.rat:
        counts[handle] += 1
    for checkpoint in core.checkpoints:
        for handle in checkpoint.rat_snapshot:
            counts[handle] += 1
    w, dec, mask = core.w, core._dec, core.w.mask
    for s in core.in_flight:
        slot = s & mask
        st = w.st[slot]
        pc = w.pc[slot]
        if not st & 1:                      # not yet issued: reader holds
            nsrc = dec.nsrc[pc]
            if nsrc:
                counts[w.h0[slot]] += 1
                if nsrc > 1:
                    counts[w.h1[slot]] += 1
        if dec.wreg[pc] and not st & 2:     # writer hold until complete
            counts[w.dest[slot]] += 1
    assert counts == core.refcount


def test_free_list_disjoint_from_live(sum_loop_program):
    core, _ = run_cpr(sum_loop_program)
    live = set(core.rat)
    for checkpoint in core.checkpoints:
        live.update(checkpoint.rat_snapshot)
    free = set(core.int_free) | set(core.fp_free)
    assert not (free & live)


def test_aggressive_release_beats_commit_time_release(sum_loop_program):
    """CPR frees registers pre-commit: with only 72 free regs beyond the
    architectural 64+64, a 128-deep window still flows."""
    core, stats = run_cpr(sum_loop_program, budget=400)
    assert stats.committed >= 400  # bulk commit may overshoot the budget


def test_bulk_commit_is_interval_grained(branchy_program):
    core, stats = run_cpr(branchy_program, budget=500)
    assert stats.committed >= 500
    # Oldest checkpoint always covers the in-flight window.
    if core.in_flight:
        assert core.checkpoints[0].seq < core.in_flight[0]


def test_halting_program_drains(halting_program):
    core, stats = run_cpr(halting_program, budget=100)
    assert core.done
    assert stats.committed == 6  # includes HALT
    assert core.memory[halting_program.out_addr] == 42


def test_rollback_restores_predictor_history(branchy_program):
    core, stats = run_cpr(branchy_program, budget=500)
    assert stats.recoveries > 0
    # History must stay within the predictor's mask after rollbacks.
    assert core.predictor.get_history() <= core.predictor.history_mask
