"""Graceful degradation of the persistence layer under disk faults."""

import threading

import pytest

from repro.sim import SimConfig, faults
from repro.sim.artifacts import ArtifactStore
from repro.sim.campaign import CampaignJournal, Job, run_jobs
from repro.sim.campaign import executor as executor_mod
from repro.sim.faults import FaultPlan


@pytest.fixture(autouse=True)
def _fast_backoff(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")


@pytest.fixture
def warnings(monkeypatch):
    """Capture executor/store log lines instead of printing them."""
    captured = []

    def fake_log(message, level="info"):
        captured.append((level, message))
    monkeypatch.setattr(executor_mod, "log", fake_log)
    import repro.sim.artifacts as artifacts_mod
    monkeypatch.setattr(artifacts_mod, "log", fake_log)
    import repro.sim.campaign.journal as journal_mod
    monkeypatch.setattr(journal_mod, "log", fake_log)
    return captured


def test_store_put_enospc_degrades_to_memory(tmp_path, warnings):
    """Satellite (a): a full disk after a successful simulation keeps
    the result in memory instead of aborting the campaign."""
    jobs = [Job("gzip", SimConfig.baseline(), 250),
            Job("crafty", SimConfig.baseline(), 250)]
    report = run_jobs(jobs, workers=1, cache_dir=tmp_path,
                      fault_plan=FaultPlan.parse("enospc@put"))
    assert not report.failures and len(report.results) == 2
    assert report.store_errors == 1
    assert any("keeping the result in memory only" in msg
               for _level, msg in warnings)
    # The faulted put was lost; the second one landed on disk.
    from repro.sim.campaign import ResultStore
    assert len(ResultStore(tmp_path)) == 1


def test_store_put_failure_does_not_fail_receipt(tmp_path):
    job = Job("gzip", SimConfig.baseline(), 250)
    report = run_jobs([job], workers=1, cache_dir=tmp_path,
                      fault_plan=FaultPlan.parse("erofs@put"))
    receipt = report.receipts[job.cache_key()]
    assert receipt.outcome == "ok" and receipt.attempts == 1


def test_artifact_put_degrades_with_warning(tmp_path, warnings):
    store = ArtifactStore(tmp_path)
    with faults.active(FaultPlan.parse("enospc@artifact-put")):
        store.put("trace", "k" * 16, {"payload": 1})
    assert any("artifact store write failed" in msg
               for level, msg in warnings if level == "warn")
    assert store.get("trace", "k" * 16) is None
    # The fault is exhausted: the next put persists normally.
    store.put("trace", "k" * 16, {"payload": 1})
    assert store.get("trace", "k" * 16) == {"payload": 1}


def test_journal_write_failure_warns_once_and_disables(tmp_path,
                                                       warnings):
    journal = CampaignJournal(tmp_path)
    with faults.active(FaultPlan.parse("eio@journal*99")):
        journal.begin(total=4, pending=4, resume=False)
        journal.interrupted("SIGTERM", ["a", "b"])
    journal_warnings = [msg for level, msg in warnings
                        if "journal write failed" in msg]
    assert len(journal_warnings) == 1       # warn once, then go quiet
    assert not journal.path.exists()
    assert journal.receipts() == {}


def test_alarm_unusable_off_main_thread_warns(tmp_path, warnings):
    """Satellite (b): the serial per-job SIGALRM watchdog silently
    disarming off the main thread now says so."""
    from repro.sim.campaign.executor import _execute_job
    job = Job("gzip", SimConfig.baseline(), 200)
    done = []
    thread = threading.Thread(
        target=lambda: done.append(_execute_job(job, timeout=5.0)))
    thread.start()
    thread.join()
    assert done and done[0][0]["committed"] >= 200
    assert any("per-job timeout disabled" in msg and "SIGALRM" in msg
               for level, msg in warnings if level == "warn")


def test_alarm_usable_on_main_thread_no_warning(warnings):
    from repro.sim.campaign.executor import _execute_job
    job = Job("gzip", SimConfig.baseline(), 200)
    stats_dict, _prof = _execute_job(job, timeout=5.0)
    assert stats_dict["committed"] >= 200
    assert not any("per-job timeout disabled" in msg
                   for _level, msg in warnings)
