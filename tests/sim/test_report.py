"""Report-writer tests."""

import pytest

from repro.sim import SimConfig
from repro.sim.experiments import ExperimentResult
from repro.sim.report import (
    grid_to_csv,
    grid_to_markdown,
    result_to_rows,
    write_result,
)
from repro.pipeline.stats import SimStats


def _fake_result():
    result = ExperimentResult("test", ["A", "B"])
    for bench, (a, b) in (("x", (100, 200)), ("y", (300, 150))):
        sa, sb = SimStats(), SimStats()
        sa.cycles = 100
        sa.committed = a
        sb.cycles = 100
        sb.committed = b
        result.stats[bench] = {"A": sa, "B": sb}
    return result


def test_result_to_rows():
    rows = result_to_rows(_fake_result())
    assert rows == {"x": {"A": 1.0, "B": 2.0},
                    "y": {"A": 3.0, "B": 1.5}}


def test_csv_round_trip():
    text = grid_to_csv(result_to_rows(_fake_result()), ["A", "B"])
    lines = text.strip().splitlines()
    assert lines[0] == "benchmark,A,B"
    assert lines[1] == "x,1.0000,2.0000"


def test_markdown_table_shape():
    text = grid_to_markdown(result_to_rows(_fake_result()), ["A", "B"])
    lines = text.splitlines()
    assert lines[0].startswith("| benchmark |")
    assert len(lines) == 4


def test_write_result_formats(tmp_path):
    result = _fake_result()
    csv_path = tmp_path / "out.csv"
    md_path = tmp_path / "out.md"
    write_result(result, str(csv_path), fmt="csv")
    write_result(result, str(md_path), fmt="md")
    assert "benchmark,A,B" in csv_path.read_text()
    assert "| benchmark |" in md_path.read_text()
    with pytest.raises(ValueError):
        write_result(result, str(csv_path), fmt="xml")


def test_end_to_end_with_real_run(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "200")
    from repro.sim import experiments
    result = experiments._run_grid(
        "mini", ["crafty"], [SimConfig.baseline(), SimConfig.msp(8)])
    path = tmp_path / "mini.csv"
    write_result(result, str(path))
    content = path.read_text()
    assert "crafty" in content and "Baseline" in content
