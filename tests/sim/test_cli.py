"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "fma3d" in out and "figure6" in out


def test_run_command_msp(capsys):
    assert main(["run", "crafty", "--arch", "msp", "--banks", "8",
                 "-n", "300"]) == 0
    out = capsys.readouterr().out
    assert "8-SP+Arb" in out and "ipc" in out


def test_run_command_all_arches(capsys):
    for arch in ("baseline", "cpr", "ideal"):
        assert main(["run", "crafty", "--arch", arch, "-n", "200"]) == 0
    out = capsys.readouterr().out
    assert "Baseline" in out and "CPR-192" in out and "ideal-MSP" in out


def test_compare_command(capsys):
    assert main(["compare", "crafty", "-n", "200",
                 "--predictor", "gshare"]) == 0
    out = capsys.readouterr().out
    for label in ("Baseline", "CPR-192", "8-SP+Arb", "ideal-MSP"):
        assert label in out


def test_experiment_table3(capsys):
    assert main(["experiment", "table3"]) == 0
    out = capsys.readouterr().out
    assert "65nm" in out and "Sec 5.1" in out


def test_experiment_unknown_rejected(capsys):
    assert main(["experiment", "figure99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_listing_command(capsys):
    assert main(["listing", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "scan:" in out and "ld" in out


def test_run_unknown_workload_exits_with_one_liner(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "nonesuch", "-n", "100"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown workload 'nonesuch'" in err
    assert "gzip" in err and "Traceback" not in err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
