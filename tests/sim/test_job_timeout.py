"""Per-job SIGALRM lifecycle in the campaign executor.

Pool workers (and the serial in-process path) run many jobs back to
back, so the per-job watchdog alarm must be fully torn down on every
exit: a fast job that follows a near-timeout job must not inherit a
pending alarm, and the process's original SIGALRM handler must be back
in place.
"""

from __future__ import annotations

import signal
import time

import pytest

from repro.sim.campaign.executor import JobTimeout, _execute_job, run_jobs
from repro.sim.campaign.job import Job
from repro.sim.config import SimConfig


def _job(instructions=200) -> Job:
    return Job(workload="gzip", config=SimConfig.baseline(),
               instructions=instructions)


@pytest.fixture
def sigalrm_guard():
    """Fail loudly (instead of dying on SIG_DFL) if a stale alarm fires,
    and restore the process handler afterwards."""
    fired = []

    def _handler(signum, frame):
        fired.append(time.monotonic())
    previous = signal.signal(signal.SIGALRM, _handler)
    signal.alarm(0)
    try:
        yield fired
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def test_success_cancels_alarm_and_restores_handler(sigalrm_guard):
    guard_handler = signal.getsignal(signal.SIGALRM)
    _execute_job(_job(), timeout=60)
    # No pending alarm survives the job (alarm(0) returns the seconds
    # that were remaining — must be 0)...
    assert signal.alarm(0) == 0
    # ...and the pre-job handler is back in place.
    assert signal.getsignal(signal.SIGALRM) is guard_handler
    assert sigalrm_guard == []


def test_fast_job_after_near_timeout_job_does_not_inherit_alarm(
        sigalrm_guard):
    """A 1s-timeout job that finishes just under the wire must leave
    nothing armed: waiting past the would-be expiry and running a second
    job must not observe any SIGALRM."""
    _execute_job(_job(), timeout=1)      # job 1: succeeds within 1s
    deadline = time.monotonic() + 1.2    # stale alarm would fire in here
    while time.monotonic() < deadline:
        time.sleep(0.05)
    _execute_job(_job(), timeout=60)     # job 2: fast follow-up
    assert sigalrm_guard == [], "a stale per-job alarm fired"
    assert signal.alarm(0) == 0


def test_timeout_raises_and_still_cleans_up(sigalrm_guard, monkeypatch):
    import repro.sim.runner as runner

    def _wedged(*args, **kwargs):
        while True:              # interruptible only by the alarm
            time.sleep(0.05)
    monkeypatch.setattr(runner, "simulate", _wedged)
    guard_handler = signal.getsignal(signal.SIGALRM)
    start = time.monotonic()
    with pytest.raises(JobTimeout):
        _execute_job(_job(), timeout=1)
    assert time.monotonic() - start < 5
    assert signal.alarm(0) == 0
    assert signal.getsignal(signal.SIGALRM) is guard_handler
    assert sigalrm_guard == []


def test_serial_run_jobs_sequences_timeouts_cleanly(tmp_path,
                                                    sigalrm_guard):
    """Two jobs through the serial executor path with a timeout: both
    succeed and nothing stays armed between or after them."""
    report = run_jobs([_job(200), _job(300)], workers=1, timeout=30,
                      cache_dir=tmp_path, use_cache=False)
    assert len(report.results) == 2
    assert report.failures == {}
    assert signal.alarm(0) == 0
    assert sigalrm_guard == []
