"""Deterministic fault-injection registry (repro.sim.faults)."""

import errno

import pytest

from repro.defaults import EnvConfigError
from repro.sim import faults
from repro.sim.faults import FaultPlan


# --------------------------------------------------------------------- #
# Parsing.
# --------------------------------------------------------------------- #

def test_parse_job_and_site_tokens():
    plan = FaultPlan.parse("worker-kill@2,enospc@put,timeout@4")
    assert plan.job_faults == {2: "worker-kill", 4: "timeout"}
    assert len(plan.site_faults) == 1
    fault = plan.site_faults[0]
    assert (fault.kind, fault.site, fault.remaining) == ("enospc", "put", 1)


def test_parse_repeat_and_probability_suffixes():
    plan = FaultPlan.parse("eio@journal*3,erofs@artifact-put%50")
    assert plan.site_faults[0].remaining == 3
    assert plan.site_faults[1].probability == 0.5


def test_parse_tolerates_blank_tokens():
    plan = FaultPlan.parse(" ,worker-kill@1, ")
    assert plan.job_faults == {1: "worker-kill"}


@pytest.mark.parametrize("site", faults.SITES)
def test_every_advertised_site_parses_and_fires(site):
    plan = FaultPlan.parse(f"eio@{site}*2")
    with pytest.raises(OSError):
        plan.fire(site)
    plan.fire("some-other-site")           # no cross-site firing
    with pytest.raises(OSError):
        plan.fire(site)
    plan.fire(site)                        # *2 exhausted: silent


def test_service_sites_are_advertised():
    """The service grammar extension: submission (enqueue), daemon-side
    renewal (lease-renew) and worker-side beats (heartbeat)."""
    for site in ("enqueue", "lease-renew", "heartbeat"):
        assert site in faults.SITES


@pytest.mark.parametrize("spec", [
    "worker-kill",                 # no @
    "@put",                        # no kind
    "worker-kill@",                # no target
    "frobnicate@3",                # unknown job kind
    "enospc@3",                    # site kind at a dispatch ordinal
    "frobnicate@put",              # unknown site kind
    "worker-kill@put",             # job kind at a site
    "enospc@put*x",                # bad repeat count
    "enospc@put%x",                # bad probability
    "eio@spool",                   # unknown site name
    "eio@Heartbeat",               # sites are case-sensitive
])
def test_parse_rejects_malformed_tokens(spec):
    with pytest.raises(EnvConfigError):
        FaultPlan.parse(spec)


def test_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv("REPRO_FAULT_INJECT", "timeout@1")
    plan = FaultPlan.from_env()
    assert plan is not None and plan.job_faults == {1: "timeout"}
    monkeypatch.setenv("REPRO_FAULT_SEED", "nope")
    with pytest.raises(EnvConfigError):
        FaultPlan.from_env()


# --------------------------------------------------------------------- #
# Firing.
# --------------------------------------------------------------------- #

def test_job_fault_consumed_once():
    plan = FaultPlan.parse("oserror@3")
    assert plan.job_fault(1) is None
    assert plan.job_fault(3) == "oserror"
    assert plan.job_fault(3) is None       # consumed: retry is clean


def test_site_fault_decrements_and_converges():
    plan = FaultPlan.parse("enospc@put*2")
    for _ in range(2):
        with pytest.raises(OSError) as err:
            plan.fire("put")
        assert err.value.errno == errno.ENOSPC
        assert "injected enospc at put" in str(err.value)
    plan.fire("put")                        # exhausted: no raise
    plan.fire("journal")                    # other sites never fault


def test_probabilistic_site_fault_is_seed_deterministic():
    def fire_pattern(seed):
        plan = FaultPlan.parse("eio@put*100%50", seed=seed)
        pattern = []
        for _ in range(20):
            try:
                plan.fire("put")
                pattern.append(False)
            except OSError:
                pattern.append(True)
        return pattern
    assert fire_pattern(7) == fire_pattern(7)
    assert True in fire_pattern(7) and False in fire_pattern(7)


# --------------------------------------------------------------------- #
# The global registry (zero-overhead-when-off contract).
# --------------------------------------------------------------------- #

def test_fire_is_noop_when_disarmed():
    assert not faults.armed()
    faults.fire("put")                      # must not raise or allocate


def test_active_arms_and_restores():
    plan = FaultPlan.parse("enospc@put")
    with faults.active(plan):
        assert faults.armed() and faults.current() is plan
        with pytest.raises(OSError):
            faults.fire("put")
    assert not faults.armed()


def test_active_none_leaves_armed_plan_alone():
    outer = FaultPlan.parse("enospc@put")
    with faults.active(outer):
        with faults.active(None):           # nested run without a plan
            assert faults.current() is outer
    assert not faults.armed()


def test_active_restores_on_error():
    with pytest.raises(RuntimeError):
        with faults.active(FaultPlan.parse("enospc@put")):
            raise RuntimeError("boom")
    assert not faults.armed()
