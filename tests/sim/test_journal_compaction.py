"""Journal compaction: superseded begin/receipt pairs are dropped on
successful run completion; torn-tail tolerance and the flock are kept.
"""

import json

from repro.sim import SimConfig
from repro.sim.campaign import CampaignJournal, CampaignSpec, \
    JobReceipt, run_jobs


def _receipt(key, outcome="ok", attempts=1):
    return JobReceipt(key=key, label=f"cell/{key}", outcome=outcome,
                      attempts=attempts)


def _lines(journal):
    return [json.loads(line) for line
            in journal.path.read_text().splitlines() if line.strip()]


# --------------------------------------------------------------------- #
# compact() semantics.
# --------------------------------------------------------------------- #

def test_compact_keeps_latest_receipt_per_key(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.begin(total=2, pending=2, resume=False)
    journal.record(_receipt("k1", "quarantined", attempts=3))
    journal.record(_receipt("k2"))
    journal.begin(total=2, pending=1, resume=True)   # the resume run
    journal.record(_receipt("k1", "retried", attempts=2))

    dropped = journal.compact()
    assert dropped == 2                  # stale begin + superseded k1
    events = _lines(journal)
    assert [e["event"] for e in events].count("begin") == 1
    assert [e for e in events if e["event"] == "begin"][0]["resume"] \
        is True                          # the *latest* begin survived
    receipts = journal.receipts()
    assert receipts["k1"].outcome == "retried"
    assert receipts["k2"].outcome == "ok"


def test_compact_drops_interrupted_markers(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.begin(total=1, pending=1, resume=False)
    journal.interrupted("SIGINT", ["gzip/Baseline@250"])
    journal.begin(total=1, pending=1, resume=True)
    journal.record(_receipt("k1"))
    assert journal.compact() == 2
    assert all(e["event"] != "interrupted" for e in _lines(journal))


def test_compact_noop_leaves_file_untouched(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.begin(total=1, pending=1, resume=False)
    journal.record(_receipt("k1"))
    before = journal.path.read_text()
    assert journal.compact() == 0
    assert journal.path.read_text() == before


def test_compact_on_missing_journal_is_harmless(tmp_path):
    assert CampaignJournal(tmp_path).compact() == 0


def test_compact_drops_torn_tail(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.begin(total=1, pending=1, resume=False)
    journal.record(_receipt("k1"))
    with journal.path.open("a", encoding="utf-8") as fh:
        fh.write('{"event": "receipt", "key')        # torn write
    assert journal.compact() == 1                    # the torn line
    receipts = CampaignJournal(tmp_path).receipts()
    assert set(receipts) == {"k1"}


# --------------------------------------------------------------------- #
# The executor compacts after every successful run.
# --------------------------------------------------------------------- #

def test_successful_run_compacts_superseded_lines(tmp_path):
    spec = CampaignSpec("c", ["gzip"],
                        [SimConfig.baseline(), SimConfig.msp(8)], 250)
    run_jobs(spec.jobs(), workers=1, cache_dir=tmp_path)
    run_jobs(spec.jobs(), workers=1, cache_dir=tmp_path)  # warm rerun
    journal = CampaignJournal(tmp_path)
    events = _lines(journal)
    # Two runs appended two begins; post-run compaction keeps one.
    assert [e["event"] for e in events].count("begin") == 1
    assert len(journal.receipts()) == 2
    assert len(events) == 3              # 1 begin + 2 receipts, no slack
