"""Supervised pool, retry/quarantine, and chaos convergence.

The chaos invariant (the PR's acceptance criterion): under injected
worker kills, timeouts and disk faults, ``run_jobs`` completes, retried
jobs carry receipts proving ``attempts > 1``, poison jobs are
quarantined without sinking the grid, and every surviving result is
bit-identical to a fault-free run.
"""

import pytest

from repro.sim import SimConfig
from repro.sim.campaign import CampaignSpec, Job, run_jobs
from repro.sim.campaign.executor import (
    JobTimeout,
    TRANSIENT_ERRORS,
    WorkerLost,
    classify_error,
)
from repro.sim.faults import FaultPlan

#: Provenance counters may legitimately differ on retried cells (a
#: retry can replay checkpoints its first attempt recorded); everything
#: else must be bit-identical.
PROVENANCE = {"checkpoint_hits", "ff_executed_instructions",
              "ff_skipped_instructions"}


@pytest.fixture(autouse=True)
def _fast_backoff(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")


def _grid_jobs(budget=250):
    spec = CampaignSpec("chaos", ["gzip", "crafty"],
                        [SimConfig.baseline(), SimConfig.msp(8)], budget)
    return spec.jobs()


def _payload(stats):
    return {k: v for k, v in stats.to_dict().items()
            if k not in PROVENANCE}


def test_classification():
    assert classify_error(JobTimeout("t")) == "transient"
    assert classify_error(WorkerLost("w")) == "transient"
    assert classify_error(OSError(28, "enospc")) == "transient"
    assert classify_error(AssertionError("a")) == "permanent"
    assert classify_error(ValueError("v")) == "permanent"
    assert JobTimeout in TRANSIENT_ERRORS


def test_worker_kill_respawns_pool_and_converges():
    jobs = _grid_jobs()
    clean = run_jobs(jobs, workers=2, use_cache=False)
    faulted = run_jobs(jobs, workers=2, use_cache=False, retries=2,
                       fault_plan=FaultPlan.parse("worker-kill@1"))
    assert not faulted.failures
    assert faulted.retried_attempts >= 1
    retried = [r for r in faulted.receipts.values()
               if r.outcome == "retried"]
    assert retried and all(r.attempts > 1 for r in retried)
    assert any(r.error_class == "WorkerLost" for r in retried)
    assert set(faulted.results) == set(clean.results)
    for key, stats in clean.results.items():
        assert _payload(faulted.results[key]) == _payload(stats)


def test_injected_timeout_is_retried_then_succeeds():
    jobs = _grid_jobs()
    report = run_jobs(jobs, workers=1, use_cache=False, retries=1,
                      fault_plan=FaultPlan.parse("timeout@1"))
    assert not report.failures and report.simulated == 4
    retried = [r for r in report.receipts.values()
               if r.outcome == "retried"]
    assert len(retried) == 1
    assert retried[0].attempts == 2
    assert retried[0].error_class == "JobTimeout"
    assert any("injected job timeout" in e for e in retried[0].errors)


def test_injected_oserror_is_transient():
    job = Job("gzip", SimConfig.baseline(), 250)
    report = run_jobs([job], workers=1, use_cache=False, retries=1,
                      fault_plan=FaultPlan.parse("oserror@1"))
    assert not report.failures
    receipt = report.receipts[job.cache_key()]
    assert receipt.outcome == "retried" and receipt.attempts == 2
    assert receipt.error_class == "OSError"


def test_assertion_quarantined_immediately_without_sinking_grid():
    jobs = _grid_jobs()
    report = run_jobs(jobs, workers=1, use_cache=False, retries=3,
                      raise_on_error=False,
                      fault_plan=FaultPlan.parse("assert@1"))
    assert report.quarantined == 1 and len(report.failures) == 1
    quarantined = [r for r in report.receipts.values()
                   if r.outcome == "quarantined"]
    assert len(quarantined) == 1
    # Permanent: one attempt, never retried despite the budget of 3.
    assert quarantined[0].attempts == 1
    assert quarantined[0].error_class == "AssertionError"
    # The other three cells finished normally.
    assert report.simulated == 3
    assert len(report.results) == 3


def test_retry_budget_exhaustion_quarantines():
    job = Job("gzip", SimConfig.baseline(), 250)
    report = run_jobs([job], workers=1, use_cache=False, retries=1,
                      raise_on_error=False,
                      fault_plan=FaultPlan.parse("timeout@1,timeout@2"))
    receipt = report.receipts[job.cache_key()]
    assert receipt.outcome == "quarantined"
    assert receipt.attempts == 2 and len(receipt.errors) == 2
    assert report.quarantined == 1 and not report.results


def test_serial_worker_kill_degrades_to_worker_lost():
    job = Job("crafty", SimConfig.baseline(), 250)
    report = run_jobs([job], workers=1, use_cache=False, retries=1,
                      fault_plan=FaultPlan.parse("worker-kill@1"))
    assert not report.failures
    receipt = report.receipts[job.cache_key()]
    assert receipt.outcome == "retried"
    assert receipt.error_class == "WorkerLost"


def test_parallel_chaos_matches_serial_clean(tmp_path):
    """The full chaos invariant: kills + timeouts in a parallel run
    still converge to the serial fault-free results."""
    jobs = _grid_jobs()
    clean = run_jobs(jobs, workers=1, use_cache=False)
    faulted = run_jobs(jobs, workers=2, cache_dir=tmp_path, retries=2,
                       fault_plan=FaultPlan.parse(
                           "worker-kill@2,timeout@1"))
    assert not faulted.failures
    assert faulted.retried_attempts >= 2
    for key, stats in clean.results.items():
        assert _payload(faulted.results[key]) == _payload(stats)


def test_retries_zero_quarantines_on_first_transient():
    job = Job("gzip", SimConfig.baseline(), 250)
    report = run_jobs([job], workers=1, use_cache=False, retries=0,
                      raise_on_error=False,
                      fault_plan=FaultPlan.parse("timeout@1"))
    assert report.quarantined == 1
    assert report.receipts[job.cache_key()].attempts == 1


def test_env_retry_knobs(monkeypatch):
    from repro.sim.campaign.executor import default_backoff, \
        default_retries
    monkeypatch.setenv("REPRO_RETRIES", "3")
    assert default_retries() == 3
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.5")
    assert default_backoff() == 0.5
    monkeypatch.setenv("REPRO_RETRIES", "nope")
    from repro.defaults import EnvConfigError
    with pytest.raises(EnvConfigError):
        default_retries()
