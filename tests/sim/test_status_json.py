"""Machine-readable campaign status (``campaign status --json``)."""

import json

from repro.cli import main
from repro.sim.campaign.journal import CampaignJournal, JobReceipt
from repro.sim.campaign.status import status_snapshot


def _run_small_grid(tmp_path, capsys):
    assert main(["campaign", "run", "--workloads", "gzip",
                 "--machines", "baseline,msp:8", "-n", "300",
                 "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()


def test_status_json_snapshot_shape(tmp_path, capsys):
    _run_small_grid(tmp_path, capsys)
    assert main(["campaign", "status", "--json",
                 "--cache-dir", str(tmp_path)]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["cache"]["entries"] == 2
    assert snapshot["cache"]["path"] == str(tmp_path / "results.jsonl")
    assert snapshot["artifacts"]["blobs"] >= 0
    journal = snapshot["journal"]
    assert journal["receipts"] == 2
    assert journal["outcomes"] == {"ok": 2, "retried": 0,
                                   "quarantined": 0}
    assert journal["quarantined"] == []
    assert snapshot["phases"] is None          # profiling was off


def test_status_json_surfaces_quarantined_receipts(tmp_path, capsys):
    journal = CampaignJournal(tmp_path)
    journal.record(JobReceipt(
        key="k1", label="gzip/Baseline@300", outcome="quarantined",
        attempts=3, error_class="JobTimeout", errors=["t1", "t2", "t3"]))
    snapshot = status_snapshot(tmp_path)
    assert snapshot["journal"]["outcomes"]["quarantined"] == 1
    [bad] = snapshot["journal"]["quarantined"]
    assert bad["label"] == "gzip/Baseline@300"
    assert bad["error_class"] == "JobTimeout"


def test_status_json_on_empty_cache(tmp_path, capsys):
    assert main(["campaign", "status", "--json",
                 "--cache-dir", str(tmp_path)]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["cache"]["entries"] == 0
    assert snapshot["journal"]["receipts"] == 0


def test_human_output_unchanged_without_flag(tmp_path, capsys):
    _run_small_grid(tmp_path, capsys)
    assert main(["campaign", "status",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "entries 2" in out              # still the prose format
