"""The throughput-bench library and the ``repro bench`` command."""

import json

import pytest

from repro.cli import main
from repro.sim import bench


def test_measure_produces_all_modes_and_schema():
    record = bench.measure(workload="gzip", emulate_n=3000,
                           detail_n=300, sampled_n=3000)
    assert record["schema"] == bench.SCHEMA
    assert set(record["modes"]) == set(bench.MODES)
    for mode, row in record["modes"].items():
        assert row["instructions"] > 0, mode
        assert row["instructions_per_second"] > 0, mode
    assert record["modes"]["sampled"]["detail_instructions"] > 0
    assert record["budgets"]["emulate"] == 3000


def test_json_roundtrip(tmp_path):
    record = bench.measure(workload="gzip", emulate_n=2000,
                           detail_n=200, sampled_n=2000,
                           modes=["emulator"])
    path = tmp_path / "bench.json"
    bench.write_json(str(path), record)
    assert bench.load_json(str(path)) == json.loads(path.read_text())


def test_check_regression_flags_only_real_regressions():
    base = {"git_sha": "abc",
            "modes": {"ff+warmup": {"instructions_per_second": 1000.0}}}
    ok = {"modes": {"ff+warmup": {"instructions_per_second": 800.0}}}
    slow = {"modes": {"ff+warmup": {"instructions_per_second": 600.0}}}
    assert bench.check_regression(ok, base, tolerance=0.30) is None
    message = bench.check_regression(slow, base, tolerance=0.30)
    assert message is not None and "regressed" in message
    # Missing modes are not a regression (new baselines bootstrap).
    assert bench.check_regression({"modes": {}}, base) is None
    assert bench.check_regression(ok, {"modes": {}}) is None
    # Records for different workloads are never comparable — even a
    # faster rate must fail rather than silently ratify a baseline the
    # CI gate can't reproduce.
    mismatch = bench.check_regression(
        {"workload": "mcf", "modes": ok["modes"]},
        {"workload": "gzip", **base})
    assert mismatch is not None and "not comparable" in mismatch


def test_cli_bench_writes_artifact_and_gates(tmp_path, capsys):
    out = tmp_path / "BENCH_throughput.json"
    assert main(["bench", "-n", "2000", "-o", str(out)]) == 0
    record = json.loads(out.read_text())
    assert set(record["modes"]) == set(bench.MODES)
    captured = capsys.readouterr()
    assert "inst/s" in captured.out

    # Same machine, same code: the gate must pass against itself.
    # Tolerance is deliberately loose — this asserts the check
    # *plumbing*, and two independent millisecond-scale timings under
    # a loaded test machine can legitimately differ far more than the
    # production 30%.
    assert main(["bench", "-n", "2000", "-o", "", "--check",
                 "--baseline", str(out), "--tolerance", "0.95"]) == 0

    # An absurdly fast fake baseline must trip the gate — and a failed
    # check must never overwrite the baseline it compared against (the
    # regression would self-ratify on the next run).
    record["modes"]["ff+warmup"]["instructions_per_second"] *= 1000
    fake = tmp_path / "fake.json"
    fake.write_text(json.dumps(record))
    before = fake.read_text()
    assert main(["bench", "-n", "2000", "-o", str(fake), "--check",
                 "--baseline", str(fake)]) == 1
    assert fake.read_text() == before


def test_check_regressions_covers_detailed_mode():
    """The gate watches the detailed cycle cores too (event-scheduler
    PR): a detailed-only collapse must fail even when fast-forward is
    healthy."""
    assert "detailed" in bench.GATED_MODES
    base = {"workload": "gzip", "modes": {
        "ff+warmup": {"instructions_per_second": 1000.0},
        "detailed": {"instructions_per_second": 100.0}}}
    healthy = {"workload": "gzip", "modes": {
        "ff+warmup": {"instructions_per_second": 990.0},
        "detailed": {"instructions_per_second": 95.0}}}
    detail_collapse = {"workload": "gzip", "modes": {
        "ff+warmup": {"instructions_per_second": 990.0},
        "detailed": {"instructions_per_second": 30.0}}}
    assert bench.check_regressions(healthy, base, tolerance=0.30) == []
    failures = bench.check_regressions(detail_collapse, base,
                                       tolerance=0.30)
    assert len(failures) == 1 and "detailed" in failures[0]
    # A workload mismatch fails once, not once per gated mode.
    mismatch = bench.check_regressions(
        {"workload": "mcf", "modes": healthy["modes"]}, base)
    assert len(mismatch) == 1 and "not comparable" in mismatch[0]


def test_check_regressions_covers_sampled_engines():
    """The gate watches the end-to-end sampled engines too (simpoint
    PR): a sampled/simpoint-only collapse must fail even when
    fast-forward and the detailed cores are healthy."""
    assert "sampled" in bench.GATED_MODES
    assert "simpoint" in bench.GATED_MODES
    base = {"workload": "gzip", "modes": {
        "sampled": {"instructions_per_second": 1000.0},
        "simpoint": {"instructions_per_second": 2000.0}}}
    healthy = {"workload": "gzip", "modes": {
        "sampled": {"instructions_per_second": 950.0},
        "simpoint": {"instructions_per_second": 1900.0}}}
    collapse = {"workload": "gzip", "modes": {
        "sampled": {"instructions_per_second": 950.0},
        "simpoint": {"instructions_per_second": 500.0}}}
    assert bench.check_regressions(healthy, base, tolerance=0.30) == []
    failures = bench.check_regressions(collapse, base, tolerance=0.30)
    assert len(failures) == 1 and "simpoint" in failures[0]


def test_simpoint_reduction_floor():
    """The simpoint cell's detailed-work reduction over periodic
    sampling is regression-guarded at >= 2x — but only at budgets
    where >= 2x is achievable with the default schedule."""
    from repro.sim.sampling import SamplingParams
    defaults = SamplingParams()
    big = (defaults.period * defaults.clusters
           * bench.MIN_SIMPOINT_DETAIL_REDUCTION)

    def record(reduction, budget):
        return {"workload": "gzip",
                "budgets": {"sampled": budget},
                "modes": {"simpoint": {
                    "instructions_per_second": 1000.0,
                    "detail_instructions": 100,
                    "detail_reduction_vs_sampled": reduction}}}

    assert bench.check_simpoint_reduction(record(2.5, big)) is None
    failure = bench.check_simpoint_reduction(record(1.4, big))
    assert failure is not None and "simpoint" in failure \
        and "floor" in failure
    # Small smoke budgets cannot reach the floor even with perfect
    # clustering: not a regression signal.
    assert bench.check_simpoint_reduction(record(1.0, 2000)) is None
    # Records without the cell (pre-simpoint baselines) pass.
    assert bench.check_simpoint_reduction({"modes": {}}) is None
    # The floor also feeds the aggregate gate.
    failures = bench.check_regressions(record(1.4, big),
                                       {"modes": {}})
    assert len(failures) == 1 and "floor" in failures[0]


def test_detailed_slowdown_ceiling():
    """The detailed core's cost relative to the emulator in the same
    record is regression-guarded (SoA-window/codegen PR): the seed's
    ~43x slowdown must fail, the post-PR ~36x must pass."""

    def record(emulator, detailed):
        return {"workload": "gzip", "modes": {
            "emulator": {"instructions_per_second": emulator},
            "detailed": {"instructions_per_second": detailed}}}

    ceiling = bench.MAX_DETAILED_SLOWDOWN_VS_EMULATOR
    assert ceiling < 43.0            # the seed-era ratio must not pass
    assert bench.check_detailed_slowdown(
        record(2_580_000.0, 72_000.0)) is None          # ~36x
    failure = bench.check_detailed_slowdown(
        record(2_580_000.0, 60_000.0))                  # ~43x (seed)
    assert failure is not None and "ceiling" in failure
    # Smoke budgets can't amortize core-build + codegen compile: the
    # ceiling stands down rather than flagging fixed cost.
    smoke = record(2_580_000.0, 20_000.0)
    smoke["budgets"] = {"detail": 1000}
    assert bench.check_detailed_slowdown(smoke) is None
    # Partial records (either leg missing) are not a regression.
    assert bench.check_detailed_slowdown({"modes": {}}) is None
    assert bench.check_detailed_slowdown(
        {"modes": {"detailed": {"instructions_per_second": 1.0}}}) is None
    # The ceiling feeds the aggregate gate.
    failures = bench.check_regressions(
        record(2_580_000.0, 60_000.0), {"modes": {}})
    assert len(failures) == 1 and "ceiling" in failures[0]


def test_measure_annotates_simpoint_reduction():
    from repro.sim.bench import _annotate_simpoint_reduction
    record = {"budgets": {"sampled": 100_000}, "modes": {
        "sampled": {"detail_instructions": 15000},
        "simpoint": {"detail_instructions": 6000}}}
    _annotate_simpoint_reduction(record)
    assert record["modes"]["simpoint"][
        "detail_reduction_vs_sampled"] == pytest.approx(2.5)
    # No periodic cell to compare against: no annotation.
    lone = {"modes": {"simpoint": {"detail_instructions": 6000}}}
    _annotate_simpoint_reduction(lone)
    assert "detail_reduction_vs_sampled" not in lone["modes"]["simpoint"]


@pytest.mark.parametrize("content", [
    None, "", "{not json", "{}", '{"modes": {}}',
    # Non-empty but records none of the gated modes: silently passing
    # would let the run self-ratify a fresh baseline.
    '{"workload": "gzip", "modes": '
    '{"emulator": {"instructions_per_second": 1.0}}}',
])
def test_cli_bench_check_needs_usable_baseline(tmp_path, capsys, content):
    """``--check`` against a missing, empty, corrupt or gated-mode-less
    baseline fails with a one-line actionable error and never writes a
    record (PR 3's \"never persist a failing record\" rule)."""
    baseline = tmp_path / "BENCH_throughput.json"
    if content is not None:
        baseline.write_text(content)
    out = tmp_path / "out.json"
    assert main(["bench", "-n", "1500", "-o", str(out), "--check",
                 "--baseline", str(baseline)]) == 1
    err = capsys.readouterr().err
    bench_lines = [line for line in err.splitlines()
                   if line.startswith("bench:")]
    assert len(bench_lines) == 1
    assert "repro bench --output" in bench_lines[0]
    assert not out.exists(), "failed --check must not write a record"
