"""The content-addressed artifact store itself: blob format, hygiene
(corruption/truncation/staleness -> evict + warn, never crash), keys,
sparse memory deltas, and the REPRO_CHECKPOINTS switch."""

from __future__ import annotations

import json

import pytest

from repro.sim import artifacts as art
from repro.sim.artifacts import (
    ArtifactStore,
    FunctionalTrace,
    TraceWindow,
    apply_delta,
    checkpoints_enabled,
    functional_fingerprint,
    memory_delta,
    profile_key,
    resolve_store,
    trace_key,
    warm_profile_fingerprint,
)
from repro.sim.config import SimConfig
from repro.sim.sampling import SamplingParams


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path)


def _blob(store, kind="trace", key="k" * 32):
    """Publish one payload and return its on-disk path."""
    store.put(kind, key, {"payload": list(range(16))})
    return store._blob_path(kind, key)


# --------------------------------------------------------------------- #
# Round trip.
# --------------------------------------------------------------------- #

def test_roundtrip_returns_equal_payload(store):
    value = FunctionalTrace(
        [TraceWindow(1, 2, 3, 4, 5, [0, 1], {8: 9}, 10)], 1234)
    store.put("trace", "a" * 32, value)
    loaded = store.get("trace", "a" * 32)
    assert isinstance(loaded, FunctionalTrace)
    assert loaded == value


def test_miss_returns_none_and_counts(store):
    assert store.get("trace", "b" * 32) is None
    assert store.usage() == {"hits": 0, "misses": 1}
    _blob(store, key="b" * 32)
    assert store.get("trace", "b" * 32) is not None
    assert store.usage() == {"hits": 1, "misses": 1}
    assert store.hits == 1 and store.misses == 1


def test_status_and_clear(store):
    _blob(store, key="c" * 32)
    _blob(store, kind="profile", key="d" * 32)
    status = store.status()
    assert status["blobs"] == 2 and status["bytes"] > 0
    assert store.clear() == 2
    assert store.status()["blobs"] == 0
    # Usage counters are dropped with the blobs.
    assert store.usage() == {"hits": 0, "misses": 0}


# --------------------------------------------------------------------- #
# Hygiene: every malformed blob is evicted with a warning, not served.
# --------------------------------------------------------------------- #

def _expect_evicted(store, path, capsys):
    assert store.get("trace", path.name[len("trace-"):-len(".blob")]) \
        is None
    assert not path.exists()
    err = capsys.readouterr().err
    assert "evicting artifact" in err and path.name in err


def test_truncated_blob_is_evicted(store, capsys):
    path = _blob(store)
    raw = path.read_bytes()
    path.write_bytes(raw[:len(raw) // 2])
    _expect_evicted(store, path, capsys)


def test_corrupt_header_is_evicted(store, capsys):
    path = _blob(store)
    path.write_bytes(b"not json at all\n" + b"\x80\x04junk")
    _expect_evicted(store, path, capsys)


def test_corrupt_payload_is_evicted(store, capsys):
    path = _blob(store)
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    path.write_bytes(raw[:newline + 1]
                     + bytes(len(raw) - newline - 1))
    _expect_evicted(store, path, capsys)


def test_stale_fingerprint_is_evicted(store, capsys):
    path = _blob(store)
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    header = json.loads(raw[:newline])
    header["fingerprint"] = "0" * 16
    path.write_bytes(json.dumps(header).encode() + raw[newline:])
    _expect_evicted(store, path, capsys)


def test_undecodable_pickle_is_evicted(store, capsys, monkeypatch):
    # Valid header and digest, but a payload the unpickler rejects.
    import hashlib
    path = _blob(store)
    payload = b"\x80\x04 definitely not a pickle"
    header = json.dumps({
        "schema": art.SCHEMA, "kind": "trace", "key": "k" * 32,
        "fingerprint": functional_fingerprint(),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "size": len(payload)})
    path.write_bytes(header.encode() + b"\n" + payload)
    _expect_evicted(store, path, capsys)


def test_eviction_then_republish_recovers(store, capsys):
    path = _blob(store)
    path.write_bytes(b"garbage")
    assert store.get("trace", "k" * 32) is None
    capsys.readouterr()
    _blob(store)
    assert store.get("trace", "k" * 32) == {"payload": list(range(16))}
    assert "evicting" not in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Keys and fingerprints.
# --------------------------------------------------------------------- #

def test_trace_key_workload_side_only(halting_program):
    params = SamplingParams()
    key = trace_key(halting_program, params, 1000)
    assert key == trace_key(halting_program, params, 1000)
    assert key != trace_key(halting_program, params, 2000)
    assert key != trace_key(
        halting_program, SamplingParams(interval=7), 1000)


def test_program_fingerprint_ignores_name(halting_program,
                                          sum_loop_program):
    fp = halting_program.content_fingerprint()
    renamed_fp = None
    # Same content under a different name hashes identically...
    import copy
    clone = copy.copy(halting_program)
    clone.name = "other"
    clone._fingerprint = None
    renamed_fp = clone.content_fingerprint()
    assert renamed_fp == fp
    # ...different programs do not.
    assert sum_loop_program.content_fingerprint() != fp


def test_profile_key_ignores_window_knobs(halting_program):
    base = profile_key(halting_program, 1000, 500, 0)
    assert base == profile_key(halting_program, 1000, 500, 0)
    assert base != profile_key(halting_program, 1000, 400, 0)
    assert base != profile_key(halting_program, 1000, 500, 100)


def test_warm_profile_shared_across_machine_grid():
    grid = [SimConfig.baseline(predictor="tage"),
            SimConfig.cpr(predictor="tage"),
            SimConfig.msp(8, predictor="tage"),
            SimConfig.msp(16, predictor="tage"),
            SimConfig.msp_ideal(predictor="tage")]
    profiles = {warm_profile_fingerprint(config) for config in grid}
    assert len(profiles) == 1
    # A predictor change is a different warm profile.
    assert warm_profile_fingerprint(
        SimConfig.baseline(predictor="gshare")) not in profiles


# --------------------------------------------------------------------- #
# Sparse memory deltas.
# --------------------------------------------------------------------- #

def test_memory_delta_roundtrip():
    initial = {0: 1, 1: 2, 2: 3.5}
    memory = {**initial, 1: 7, 3: 9}
    delta = memory_delta(initial, memory)
    assert delta == {1: 7, 3: 9}
    assert apply_delta(initial, delta) == memory


def test_memory_delta_is_type_exact():
    # 1 == 1.0 in Python, but an int and a float word are different
    # architectural values: the delta must keep the float.
    delta = memory_delta({4: 1}, {4: 1.0})
    assert delta == {4: 1.0} and isinstance(delta[4], float)
    assert isinstance(apply_delta({4: 1}, delta)[4], float)


# --------------------------------------------------------------------- #
# The enable switch and store resolution.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("value,enabled", [
    ("", True), ("1", True), ("on", True), ("anything", True),
    ("0", False), ("off", False), ("false", False), ("no", False),
    ("OFF", False),
])
def test_checkpoints_env_parsing(monkeypatch, value, enabled):
    monkeypatch.setenv("REPRO_CHECKPOINTS", value)
    assert checkpoints_enabled() is enabled


def test_resolve_store(tmp_path, monkeypatch):
    assert resolve_store(False) is None
    store = ArtifactStore(tmp_path)
    assert resolve_store(store) is store
    assert resolve_store(tmp_path).dir == tmp_path / "artifacts"
    monkeypatch.setenv("REPRO_CHECKPOINTS", "off")
    assert resolve_store(None) is None
    monkeypatch.delenv("REPRO_CHECKPOINTS")
    resolved = resolve_store(None)
    assert isinstance(resolved, ArtifactStore)
