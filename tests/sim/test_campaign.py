"""Campaign subsystem: job keys, store, executor, cache semantics."""

import pytest

from repro.sim import SimConfig, simulate
from repro.sim.campaign import (
    CampaignError,
    CampaignSpec,
    Job,
    ResultStore,
    run_jobs,
)
from repro.sim.campaign.executor import run_job
from repro.sim import experiments


# --------------------------------------------------------------------- #
# Job model.
# --------------------------------------------------------------------- #

def test_job_key_stable_and_sensitive():
    job = Job("gzip", SimConfig.msp(16), 300)
    assert job.cache_key() == Job("gzip", SimConfig.msp(16),
                                  300).cache_key()
    assert job.cache_key() != Job("mcf", SimConfig.msp(16),
                                  300).cache_key()
    assert job.cache_key() != Job("gzip", SimConfig.msp(8),
                                  300).cache_key()
    assert job.cache_key() != Job("gzip", SimConfig.msp(16),
                                  301).cache_key()
    assert job.cache_key() != Job("gzip", SimConfig.msp(16), 300,
                                  seed=1).cache_key()


def test_job_key_ignores_display_label():
    """The same machine under a different display label shares cache
    entries (figure9 relabels figure7's machines)."""
    plain = Job("gzip", SimConfig.cpr(predictor="tage"), 300)
    labeled = Job("gzip", SimConfig.cpr(predictor="tage").with_(
        label_override="CPR-192 tage"), 300)
    assert plain.cache_key() == labeled.cache_key()


def test_job_key_includes_package_version(monkeypatch):
    """A release that changes simulator semantics must not serve stale
    cached figures."""
    import repro
    job = Job("gzip", SimConfig.msp(16), 300)
    before = job.cache_key()
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert job.cache_key() != before


def test_no_cache_env_tokens(monkeypatch):
    from repro.sim.campaign.executor import cache_enabled_by_default
    for value in ("1", "true", "yes", "on", "2", "y"):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert not cache_enabled_by_default()
    for value in ("", "0", "false", "no", "off"):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert cache_enabled_by_default()


def test_job_roundtrip():
    job = Job("mcf", SimConfig.cpr(), 500, seed=7)
    clone = Job.from_dict(job.to_dict())
    assert clone == job and clone.cache_key() == job.cache_key()


def test_spec_expands_row_major():
    spec = CampaignSpec("s", ["gzip", "mcf"],
                        [SimConfig.baseline(), SimConfig.msp(8)], 300)
    jobs = spec.jobs()
    assert [(j.workload, j.config.label) for j in jobs] == [
        ("gzip", "Baseline"), ("gzip", "8-SP+Arb"),
        ("mcf", "Baseline"), ("mcf", "8-SP+Arb")]


# --------------------------------------------------------------------- #
# Result store.
# --------------------------------------------------------------------- #

def test_store_roundtrip_and_clear(tmp_path):
    store = ResultStore(tmp_path)
    stats = simulate("crafty", SimConfig.baseline(),
                     max_instructions=200)
    store.put("k1", stats, meta={"why": "test"})
    assert "k1" in store and len(store) == 1

    fresh = ResultStore(tmp_path)          # re-read from disk
    loaded = fresh.get("k1")
    assert loaded is not None and vars(loaded) == vars(stats)
    assert fresh.get("absent") is None
    assert fresh.clear() == 1
    assert len(ResultStore(tmp_path)) == 0


def test_store_last_record_wins_and_compact(tmp_path):
    store = ResultStore(tmp_path)
    a = simulate("crafty", SimConfig.baseline(), max_instructions=200)
    b = simulate("crafty", SimConfig.msp(8), max_instructions=200)
    store.put("k", a)
    store.put("k", b)
    assert vars(ResultStore(tmp_path).get("k")) == vars(b)
    store.compact()
    assert len(store.path.read_text().splitlines()) == 1
    assert vars(ResultStore(tmp_path).get("k")) == vars(b)


def test_store_auto_compacts_on_load(tmp_path):
    store = ResultStore(tmp_path)
    stats = simulate("crafty", SimConfig.baseline(),
                     max_instructions=200)
    for _ in range(ResultStore._COMPACT_SLACK + 2):
        store.put("k", stats)
    assert len(store.path.read_text().splitlines()) > 64
    fresh = ResultStore(tmp_path)
    assert len(fresh) == 1                  # triggers the auto-compact
    assert len(store.path.read_text().splitlines()) == 1
    assert vars(fresh.get("k")) == vars(stats)


def test_compact_preserves_concurrent_appends(tmp_path):
    """compact() must re-read the file, not trust its stale snapshot."""
    import json
    store = ResultStore(tmp_path)
    stats = simulate("crafty", SimConfig.baseline(),
                     max_instructions=200)
    store.put("mine", stats)
    # Another process appends after our snapshot was loaded.
    other = {"key": "theirs", "stats": stats.to_dict(), "meta": {}}
    with store.path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(other) + "\n")
    store.compact()
    fresh = ResultStore(tmp_path)
    assert "mine" in fresh and "theirs" in fresh


def test_store_skips_torn_tail_line(tmp_path):
    store = ResultStore(tmp_path)
    store.put("k1", simulate("crafty", SimConfig.baseline(),
                             max_instructions=200))
    with store.path.open("a") as fh:
        fh.write('{"key": "k2", "stats"')    # crash mid-write
    fresh = ResultStore(tmp_path)
    assert len(fresh) == 1 and fresh.get("k1") is not None


# --------------------------------------------------------------------- #
# Executor: serial == parallel, caching, failures, timeout.
# --------------------------------------------------------------------- #

def _grid_jobs(budget=300):
    spec = CampaignSpec("g", ["gzip", "crafty"],
                        [SimConfig.baseline(), SimConfig.msp(8)], budget)
    return spec.jobs()


def test_parallel_matches_serial_exactly(tmp_path):
    jobs = _grid_jobs()
    serial = run_jobs(jobs, workers=1, use_cache=False)
    parallel = run_jobs(jobs, workers=4, use_cache=False)
    assert serial.simulated == parallel.simulated == 4
    assert set(serial.results) == set(parallel.results)
    for key, stats in serial.results.items():
        assert vars(parallel.results[key]) == vars(stats)


def test_warm_cache_performs_zero_simulations(tmp_path):
    jobs = _grid_jobs()
    cold = run_jobs(jobs, workers=2, cache_dir=tmp_path)
    assert (cold.hits, cold.simulated) == (0, 4)
    warm = run_jobs(jobs, workers=2, cache_dir=tmp_path)
    assert (warm.hits, warm.simulated) == (4, 0)
    for key in cold.results:
        assert vars(warm.results[key]) == vars(cold.results[key])


def test_no_cache_bypasses_store(tmp_path):
    jobs = _grid_jobs()
    run_jobs(jobs, workers=1, cache_dir=tmp_path)
    again = run_jobs(jobs, workers=1, cache_dir=tmp_path,
                     use_cache=False)
    assert again.hits == 0 and again.simulated == 4


def test_duplicate_cells_simulated_once(tmp_path):
    job = Job("gzip", SimConfig.baseline(), 300)
    report = run_jobs([job, job, job], workers=1, cache_dir=tmp_path)
    assert report.simulated == 1 and len(report.results) == 1


def test_failed_job_raises_campaign_error(tmp_path):
    bad = Job("gzip", SimConfig(arch="vliw"), 100)
    with pytest.raises(CampaignError, match="vliw"):
        run_jobs([bad], workers=1, cache_dir=tmp_path)
    report = run_jobs([bad], workers=1, cache_dir=tmp_path,
                      raise_on_error=False)
    assert report.failures and not report.results


def test_failed_job_raises_in_parallel_mode(tmp_path):
    bad = Job("gzip", SimConfig(arch="vliw"), 100)
    good = Job("gzip", SimConfig.baseline(), 300)
    report = run_jobs([bad, good], workers=2, cache_dir=tmp_path,
                      raise_on_error=False)
    assert len(report.failures) == 1
    assert vars(report.stats_for(good))
    # Missing cells are named, not raised as a bare sha256 KeyError.
    with pytest.raises(CampaignError, match="no result for gzip/"):
        report.stats_for(bad)


def test_grid_names_missing_cells(tmp_path):
    spec = CampaignSpec("s", ["gzip"], [SimConfig(arch="vliw")], 100)
    report = run_jobs(spec.jobs(), workers=1, cache_dir=tmp_path,
                      raise_on_error=False)
    with pytest.raises(CampaignError, match="gzip"):
        spec.grid(report)


def test_cache_key_includes_code_fingerprint():
    from repro.sim.campaign.job import code_fingerprint
    fingerprint = code_fingerprint()
    assert fingerprint == code_fingerprint() and len(fingerprint) == 16
    job = Job("gzip", SimConfig.msp(16), 300)
    assert job.cache_key() == job.cache_key()


def test_progress_callback_reports_each_cell(tmp_path):
    lines = []
    run_jobs(_grid_jobs(), workers=1, cache_dir=tmp_path,
             progress=lines.append)
    assert len(lines) == 4
    assert any("gzip/Baseline@300" in line for line in lines)
    assert lines[-1].startswith("[4/4]")


def test_run_job_single(tmp_path):
    job = Job("crafty", SimConfig.baseline(), 250)
    stats = run_job(job, workers=1, cache_dir=tmp_path)
    assert stats.committed >= 250


# --------------------------------------------------------------------- #
# Experiment harness integration (the acceptance criterion).
# --------------------------------------------------------------------- #

def test_experiment_parallel_table_identical_and_cached(
        tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "300")
    monkeypatch.setenv("REPRO_BENCHSET", "quick")
    serial = experiments.figure7(banks=[8], use_cache=False)
    parallel = experiments.figure7(banks=[8], jobs=4,
                                   cache_dir=tmp_path)
    assert parallel.to_table() == serial.to_table()

    # Second warm invocation: zero new simulations.
    lines = []
    warm = experiments.figure7(banks=[8], jobs=4, cache_dir=tmp_path,
                               progress=lines.append)
    assert lines == []                     # progress fires per sim only
    assert warm.to_table() == serial.to_table()
