"""SimConfig canonical serialization and cache-key stability."""

import dataclasses
import json

import pytest

from repro.sim import SimConfig


def _perturbed_value(config, field):
    current = getattr(config, field.name)
    if isinstance(current, bool):
        return not current
    if isinstance(current, frozenset):
        return frozenset({12345})
    if isinstance(current, dict):
        return {"perturbed": 1}
    if isinstance(current, int):
        return (current or 0) + 7
    if isinstance(current, str):
        return current + "_x"
    if current is None:
        return 17
    raise AssertionError(f"unhandled field type for {field.name}")


def test_equal_configs_share_cache_key():
    assert (SimConfig.msp(16).cache_key()
            == SimConfig.msp(16).cache_key())
    assert (SimConfig.baseline().cache_key()
            == SimConfig.baseline().cache_key())


@pytest.mark.parametrize(
    "field", dataclasses.fields(SimConfig), ids=lambda f: f.name)
def test_every_field_perturbs_cache_key(field):
    base = SimConfig.msp(16)
    changed = base.with_(**{field.name: _perturbed_value(base, field)})
    if field.name in ("label_override", "codegen"):
        # label_override is presentation-only and codegen is a
        # bit-identical-by-contract implementation toggle: the same
        # machine under a different display label or exec backend must
        # share cache entries.
        assert changed.cache_key() == base.cache_key()
    else:
        assert changed.cache_key() != base.cache_key()


def test_to_dict_roundtrip():
    config = SimConfig.cpr(registers=256).with_(
        exception_ordinals=frozenset({10, 70}),
        predictor_kwargs={"bits": 12})
    clone = SimConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert clone == config
    assert clone.cache_key() == config.cache_key()
    assert isinstance(clone.exception_ordinals, frozenset)


def test_from_dict_ignores_unknown_keys():
    data = SimConfig.baseline().to_dict()
    data["from_the_future"] = 1
    assert SimConfig.from_dict(data) == SimConfig.baseline()


def test_from_dict_defaults_codegen_for_old_payloads():
    """A result dict serialized before the ``codegen`` field existed
    (PR 8 era) must load with codegen enabled, be equal to a
    freshly-built config, and land on the same cache key — so old
    checkpoint/profile store entries stay addressable."""
    old = SimConfig.baseline(predictor="tage").to_dict()
    del old["codegen"]                     # pre-field serialization
    loaded = SimConfig.from_dict(old)
    assert loaded.codegen is True
    assert loaded == SimConfig.baseline(predictor="tage")
    assert (loaded.cache_key()
            == SimConfig.baseline(predictor="tage").cache_key())
    # And the toggle itself round-trips when present.
    off = SimConfig.baseline().with_(codegen=False)
    clone = SimConfig.from_dict(json.loads(json.dumps(off.to_dict())))
    assert clone.codegen is False
    assert clone == off
    assert clone.cache_key() == SimConfig.baseline().cache_key()


def test_key_is_order_independent():
    a = SimConfig.baseline().with_(
        exception_ordinals=frozenset({3, 1, 2}))
    b = SimConfig.baseline().with_(
        exception_ordinals=frozenset({2, 3, 1}))
    assert a.cache_key() == b.cache_key()
