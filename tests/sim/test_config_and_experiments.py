"""SimConfig presets, runner, and experiment harness tests."""

import pytest

from repro.baseline import BaselineProcessor
from repro.core import MSPProcessor
from repro.cpr import CPRProcessor
from repro.sim import SimConfig, build_core, simulate
from repro.sim import experiments


def test_presets_match_table1():
    base = SimConfig.baseline()
    assert (base.rob_size, base.iq_size, base.phys_int) == (128, 48, 96)
    assert base.sq_l1 == 24 and base.sq_l2 == 0

    cpr = SimConfig.cpr()
    assert cpr.iq_size == 128 and cpr.phys_int == 192
    assert cpr.checkpoints == 8
    assert (cpr.sq_l1, cpr.sq_l2) == (48, 256)

    msp = SimConfig.msp(16)
    assert msp.bank_size == 16 and msp.arbitration and msp.lcs_delay == 1

    ideal = SimConfig.msp_ideal()
    assert ideal.bank_size is None and not ideal.arbitration
    assert ideal.lcs_delay == 0 and ideal.sq_l1 is None


def test_labels():
    assert SimConfig.baseline().label == "Baseline"
    assert SimConfig.cpr().label == "CPR-192"
    assert SimConfig.cpr(registers=512).label == "CPR-512"
    assert SimConfig.msp(8).label == "8-SP+Arb"
    assert SimConfig.msp(8, arbitration=False).label == "8-SP"
    assert SimConfig.msp_ideal().label == "ideal-MSP"
    assert SimConfig.msp(8, label_override="X").label == "X"


def test_with_copies_and_overrides():
    config = SimConfig.msp(16)
    other = config.with_(lcs_delay=4)
    assert other.lcs_delay == 4 and config.lcs_delay == 1


def test_build_core_dispatch():
    program_cfgs = [
        (SimConfig.baseline(), BaselineProcessor),
        (SimConfig.cpr(), CPRProcessor),
        (SimConfig.msp(8), MSPProcessor),
    ]
    from repro.workloads import get_program
    program = get_program("crafty")
    for config, cls in program_cfgs:
        assert isinstance(build_core(program, config), cls)
    with pytest.raises(ValueError):
        build_core(program, SimConfig(arch="vliw"))


def test_simulate_accepts_workload_name():
    stats = simulate("crafty", SimConfig.baseline(), max_instructions=200)
    assert stats.committed >= 200


def test_experiment_grid_structure(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "300")
    result = experiments.figure6(banks=[8])
    assert result.machines == ["Baseline", "CPR-192", "8-SP+Arb",
                               "ideal-MSP"]
    assert len(result.stats) == 12
    table = result.to_table()
    assert "hmean" in table and "Baseline" in table
    assert result.speedup_over("ideal-MSP", "CPR-192") > 0


def test_figure9_summary_shape(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "300")
    monkeypatch.setenv("REPRO_BENCHSET", "quick")
    data = experiments.figure9()
    summary = experiments.figure9_summary(data)
    assert set(summary) == {"gshare", "tage"}
    for cells in data.values():
        for row in cells.values():
            assert row["total"] == (row["correct_path"]
                                    + row["correct_path_reexecuted"]
                                    + row["wrong_path"])


def test_quick_mode_trims(monkeypatch):
    monkeypatch.setenv("REPRO_BENCHSET", "quick")
    assert len(experiments._benchmarks(["a"] * 12)) == 4
    assert experiments._bank_sweep() == [8, 16]
    monkeypatch.delenv("REPRO_BENCHSET")
    assert experiments._bank_sweep() == [8, 16, 32, 64, 128]
