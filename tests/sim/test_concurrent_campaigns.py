"""Two concurrent ``campaign run`` processes sharing one cache dir.

The store, journal and artifact layers all take the same per-cache
``flock`` sidecar; two whole campaigns racing over the same grid must
both succeed, leave exactly one record per cell, tear no receipts, and
account every cell as either simulated or a cache hit — never lose one.
"""

import json
import os
import re
import subprocess
import sys

from repro.sim.campaign import CampaignJournal
from repro.sim.campaign.store import ResultStore

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _campaign(cache_dir, workloads="gzip,mcf"):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         "--workloads", workloads, "--machines", "baseline,msp:16",
         "-n", "4000", "--cache-dir", str(cache_dir), "--jobs", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=dict(os.environ, PYTHONPATH="src", REPRO_LOG="warn"),
        cwd=REPO)


def test_concurrent_campaigns_share_cache_without_tearing(tmp_path):
    cache = tmp_path / "shared"
    first = _campaign(cache)
    second = _campaign(cache)
    out1, err1 = first.communicate(timeout=300)
    out2, err2 = second.communicate(timeout=300)
    assert first.returncode == 0, err1
    assert second.returncode == 0, err2
    # Both rendered the full table (same grid, same values).
    for out in (out1, out2):
        assert "gzip" in out and "mcf" in out

    # Exactly one store record per cell, all loadable.
    store = ResultStore(cache)
    status = store.status()
    assert status["entries"] == 4

    # No torn receipts: every journal line parses, and the receipt set
    # covers the grid without duplication per key.
    journal = CampaignJournal(cache)
    for line in journal.path.read_text().splitlines():
        if line.strip():
            json.loads(line)
    receipts = journal.receipts()
    assert len(receipts) <= 4
    assert all(r.outcome in ("ok", "retried")
               for r in receipts.values())

    # No lost execution accounting: each process reports
    # simulated + cache hits covering all 4 cells.  (Both may simulate
    # the same cell — that is allowed, idempotent by key — but neither
    # may miscount.)
    for err in (err1, err2):
        match = re.search(r"cache: (\d+) hit\(s\), (\d+) simulated",
                          err)
        if match is None:
            continue                   # all fresh: no cache line logged
        hits, simulated = int(match.group(1)), int(match.group(2))
        assert simulated + hits == 4, err


def test_sequential_rerun_is_pure_cache_hits(tmp_path):
    """After the race, a third run touches nothing: 4 hits, 0 sims."""
    cache = tmp_path / "shared"
    proc = _campaign(cache)
    out, err = proc.communicate(timeout=300)
    assert proc.returncode == 0, err
    rerun = _campaign(cache)
    out, err = rerun.communicate(timeout=300)
    assert proc.returncode == 0, err
    assert "cache: 4 hit(s), 0 simulated" in err
