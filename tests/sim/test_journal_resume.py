"""Campaign journal, graceful drain (SIGINT/SIGTERM) and --resume."""

import json
import os
import signal

import pytest

from repro.sim import SimConfig, experiments
from repro.sim.campaign import (
    CampaignInterrupted,
    CampaignJournal,
    CampaignSpec,
    JobReceipt,
    run_jobs,
)


@pytest.fixture(autouse=True)
def _fast_backoff(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")


def _grid_jobs(budget=250):
    spec = CampaignSpec("j", ["gzip", "crafty"],
                        [SimConfig.baseline(), SimConfig.msp(8)], budget)
    return spec.jobs()


# --------------------------------------------------------------------- #
# Journal basics.
# --------------------------------------------------------------------- #

def test_receipts_journaled_next_to_store(tmp_path):
    run_jobs(_grid_jobs(), workers=1, cache_dir=tmp_path)
    journal = CampaignJournal(tmp_path)
    assert journal.path == tmp_path / "journal.jsonl"
    receipts = journal.receipts()
    assert len(receipts) == 4
    assert all(r.outcome == "ok" and r.attempts == 1
               for r in receipts.values())
    assert journal.summary() == {"ok": 4, "retried": 0,
                                 "quarantined": 0}


def test_receipt_roundtrip():
    receipt = JobReceipt(key="k", label="gzip/msp@250",
                         outcome="quarantined", attempts=3,
                         error_class="JobTimeout",
                         errors=["a", "b", "c"], wall_seconds=1.25)
    assert JobReceipt.from_dict(receipt.to_dict()) == receipt


def test_no_cache_run_keeps_receipts_in_memory_only(tmp_path):
    report = run_jobs(_grid_jobs(), workers=1, use_cache=False,
                      cache_dir=tmp_path)
    assert len(report.receipts) == 4
    assert not (tmp_path / "journal.jsonl").exists()


def test_journal_tolerates_torn_tail_line(tmp_path):
    run_jobs(_grid_jobs(), workers=1, cache_dir=tmp_path)
    with (tmp_path / "journal.jsonl").open("a") as fh:
        fh.write('{"event": "receipt", "key"')
    assert len(CampaignJournal(tmp_path).receipts()) == 4


def test_later_campaign_supersedes_receipts(tmp_path):
    jobs = _grid_jobs()
    run_jobs(jobs, workers=1, cache_dir=tmp_path)
    # Warm rerun: cache hits never execute, so no new receipts.
    run_jobs(jobs, workers=1, cache_dir=tmp_path)
    journal = CampaignJournal(tmp_path)
    assert len(journal.receipts()) == 4
    events = [json.loads(line) for line
              in journal.path.read_text().splitlines()]
    assert [e["event"] for e in events].count("begin") >= 1


# --------------------------------------------------------------------- #
# Resume.
# --------------------------------------------------------------------- #

def test_resume_executes_only_missing_cells(tmp_path):
    jobs = _grid_jobs()
    first = run_jobs(jobs[:2], workers=1, cache_dir=tmp_path)
    assert first.simulated == 2
    resumed = run_jobs(jobs, workers=1, cache_dir=tmp_path, resume=True)
    assert resumed.hits == 2 and resumed.simulated == 2
    assert len(resumed.results) == 4
    # Only the missing cells executed, so only they carry receipts.
    assert len(resumed.receipts) == 2


def test_fully_complete_resume_simulates_nothing(tmp_path):
    jobs = _grid_jobs()
    run_jobs(jobs, workers=1, cache_dir=tmp_path)
    resumed = run_jobs(jobs, workers=1, cache_dir=tmp_path, resume=True)
    assert resumed.hits == 4 and resumed.simulated == 0


# --------------------------------------------------------------------- #
# Graceful drain.
# --------------------------------------------------------------------- #

def _kill_after_first(signum):
    fired = {"done": False}

    def progress(line):
        if not fired["done"]:
            fired["done"] = True
            os.kill(os.getpid(), signum)
    return progress


def test_sigterm_drains_serial_run_and_journals_gap(tmp_path):
    jobs = _grid_jobs()
    report = run_jobs(jobs, workers=1, cache_dir=tmp_path,
                      progress=_kill_after_first(signal.SIGTERM))
    assert report.interrupted == "SIGTERM"
    assert 1 <= report.simulated < 4
    events = [json.loads(line) for line in
              (tmp_path / "journal.jsonl").read_text().splitlines()]
    drains = [e for e in events if e["event"] == "interrupted"]
    assert len(drains) == 1
    assert drains[0]["signal"] == "SIGTERM"
    assert len(drains[0]["missing"]) == 4 - report.simulated

    # Resume picks up exactly the missing cells.
    resumed = run_jobs(jobs, workers=1, cache_dir=tmp_path, resume=True)
    assert resumed.interrupted is None
    assert resumed.hits == report.simulated
    assert resumed.simulated == 4 - report.simulated
    assert len(resumed.results) == 4


def test_sigint_drain_reports_signal_name(tmp_path):
    report = run_jobs(_grid_jobs(), workers=1, cache_dir=tmp_path,
                      progress=_kill_after_first(signal.SIGINT))
    assert report.interrupted == "SIGINT"


def test_run_grid_raises_campaign_interrupted(tmp_path):
    with pytest.raises(CampaignInterrupted) as err:
        experiments.run_grid(
            "drain", ["gzip"],
            [SimConfig.baseline(), SimConfig.msp(8)], 250,
            jobs=1, cache_dir=tmp_path,
            progress=_kill_after_first(signal.SIGTERM))
    assert err.value.signal_name == "SIGTERM"
    assert "--resume" in str(err.value)

    # The drained cells persisted: a resume run completes the grid.
    result = experiments.run_grid(
        "drain", ["gzip"],
        [SimConfig.baseline(), SimConfig.msp(8)], 250,
        jobs=1, cache_dir=tmp_path, resume=True)
    assert result.cache_hits >= 1
    assert result.cache_hits + result.simulated == 2
