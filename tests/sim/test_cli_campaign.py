"""CLI coverage for the campaign commands and friendly error paths."""

import os
import subprocess
import sys

import pytest

from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def test_experiment_jobs_flag_matches_serial(tmp_path, capsys,
                                             monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "300")
    monkeypatch.setenv("REPRO_BENCHSET", "quick")
    assert main(["experiment", "figure7", "-n", "300",
                 "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main(["experiment", "figure7", "-n", "300", "--jobs", "4",
                 "--cache-dir", str(tmp_path)]) == 0
    assert capsys.readouterr().out == serial
    # Warm rerun serves everything from the cache and still matches.
    assert main(["experiment", "figure7", "-n", "300", "--jobs", "4",
                 "--cache-dir", str(tmp_path)]) == 0
    assert capsys.readouterr().out == serial


def test_campaign_run_status_clear(tmp_path, capsys):
    cache = ["--cache-dir", str(tmp_path)]
    assert main(["campaign", "run", "--workloads", "gzip,crafty",
                 "--machines", "baseline,msp:8", "-n", "300"]
                + cache) == 0
    out = capsys.readouterr().out
    assert "Baseline" in out and "8-SP+Arb" in out and "hmean" in out

    assert main(["campaign", "status"] + cache) == 0
    out = capsys.readouterr().out
    assert "entries 4" in out and str(tmp_path) in out

    assert main(["campaign", "clear"] + cache) == 0
    assert "cleared 4" in capsys.readouterr().out
    assert main(["campaign", "status"] + cache) == 0
    assert "entries 0" in capsys.readouterr().out


def test_campaign_run_suite_quick(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCHSET", "quick")
    assert main(["campaign", "run", "--suite", "specfp",
                 "--workloads", "swim", "--machines", "cpr:256",
                 "-n", "200", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "swim" in out and "CPR-256" in out


def test_campaign_unknown_workload_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "run", "--workloads", "warp",
              "--machines", "baseline", "--cache-dir", str(tmp_path)])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown workload 'warp'" in err and "gzip" in err


def test_campaign_timeout_prints_one_line_error(tmp_path, capsys):
    assert main(["campaign", "run", "--workloads", "mcf",
                 "--machines", "cpr", "-n", "200000",
                 "--timeout", "1", "--no-cache",
                 "--cache-dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "campaign failed" in err and "exceeded 1s" in err
    assert "Traceback" not in err


def test_campaign_unknown_machine_exits(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "run", "--workloads", "gzip",
              "--machines", "warp9", "--cache-dir", str(tmp_path)])
    assert excinfo.value.code == 2
    assert "unknown machine 'warp9'" in capsys.readouterr().err


def test_module_invocation_unknown_workload_no_traceback():
    """Regression: ``python -m repro`` exits 2 with a one-line error."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (REPO_SRC + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", "nonesuch", "-n", "10"],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 2
    assert "unknown workload 'nonesuch'" in proc.stderr
    assert "Traceback" not in proc.stderr
    assert proc.stderr.count("\n") == 1


def test_module_invocation_unknown_experiment_no_traceback():
    env = dict(os.environ)
    env["PYTHONPATH"] = (REPO_SRC + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "experiment", "figure99"],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 2
    assert "unknown experiment 'figure99'" in proc.stderr
    assert "Traceback" not in proc.stderr
