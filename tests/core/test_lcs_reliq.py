"""LCS unit and RelIQ matrix tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core import LCSUnit, RelIQMatrix


def test_lcs_zero_delay_passes_through():
    lcs = LCSUnit(delay=0)
    assert lcs.step([5, 3, 7], all_quiescent_value=99) == 3


def test_lcs_excludes_none_candidates():
    lcs = LCSUnit(delay=0)
    assert lcs.step([None, 4, None], all_quiescent_value=99) == 4


def test_lcs_all_quiescent_uses_fallback():
    lcs = LCSUnit(delay=0)
    assert lcs.step([None, None], all_quiescent_value=42) == 42


def test_lcs_delay_pipeline():
    lcs = LCSUnit(delay=2)
    assert lcs.step([10], 0) == 0    # pipe priming
    assert lcs.step([20], 0) == 0
    assert lcs.step([30], 0) == 10   # first real value emerges
    assert lcs.step([40], 0) == 20


def test_lcs_flush_refills_pipe():
    lcs = LCSUnit(delay=1)
    lcs.step([50], 0)
    lcs.flush(7)
    assert lcs.step([60], 0) == 7


def test_lcs_rejects_negative_delay():
    with pytest.raises(ValueError):
        LCSUnit(delay=-1)


# --------------------------------------------------------------------- #


def test_reliq_set_clear_and_or_output():
    matrix = RelIQMatrix(iq_size=8)
    assert not matrix.reliq(0)
    matrix.set_use(0, 3)
    matrix.set_use(0, 5)
    assert matrix.reliq(0)
    assert matrix.use_count(0) == 2
    matrix.clear_use(0, 3)
    assert matrix.reliq(0)
    matrix.clear_use(0, 5)
    assert not matrix.reliq(0)


def test_reliq_clear_column_on_recovery():
    matrix = RelIQMatrix(iq_size=8)
    matrix.set_use(0, 2)
    matrix.set_use(1, 2)
    matrix.set_use(1, 4)
    assert matrix.clear_column(2) == 2
    assert not matrix.reliq(0)
    assert matrix.use_count(1) == 1


def test_reliq_rejects_bad_slot():
    matrix = RelIQMatrix(iq_size=4)
    with pytest.raises(ValueError):
        matrix.set_use(0, 4)


def test_reliq_double_clear_raises():
    matrix = RelIQMatrix(iq_size=4)
    matrix.set_use(0, 1)
    matrix.clear_use(0, 1)
    with pytest.raises(AssertionError):
        matrix.clear_use(0, 1)


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 15)),
                min_size=1, max_size=60, unique=True))
def test_reliq_count_equals_counter_model(pairs):
    """Property: the matrix row popcount equals an independent counter —
    the equivalence the simulator's hot path relies on."""
    matrix = RelIQMatrix(iq_size=16)
    counters = {}
    for entry, slot in pairs:
        matrix.set_use(entry, slot)
        counters[entry] = counters.get(entry, 0) + 1
    for entry, count in counters.items():
        assert matrix.use_count(entry) == count
        assert matrix.reliq(entry) == (count > 0)
    total = sum(counters.values())
    assert matrix.storage_bits == total
