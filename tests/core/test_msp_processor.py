"""MSP processor behaviour tests (precise recovery, banks, commit)."""

from repro.isa import Emulator, ProgramBuilder, int_reg
from repro.sim import SimConfig, build_core


def run_msp(program, budget=600, **overrides):
    config = SimConfig.msp(16, predictor="gshare").with_(
        record_commits=True, **overrides)
    core = build_core(program, config)
    stats = core.run(max_instructions=budget)
    return core, stats


def test_commit_trace_matches_emulator(branchy_program):
    core, stats = run_msp(branchy_program)
    emulator = Emulator(branchy_program, trace_pcs=True)
    reference = emulator.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace


def test_precise_recovery_never_reexecutes(branchy_program):
    _, stats = run_msp(branchy_program)
    assert stats.branch_mispredictions > 0
    assert stats.correct_path_reexecuted == 0


def test_wrong_path_work_counted(branchy_program):
    _, stats = run_msp(branchy_program)
    assert stats.wrong_path_executed > 0
    assert stats.total_executed > stats.committed


def test_bank_stall_attribution():
    """A loop hammering one register must stall on exactly that bank."""
    b = ProgramBuilder("hammer")
    data = b.data_region(list(range(512)))
    r_i, r_base, r_t = int_reg(1), int_reg(2), int_reg(3)
    b.li(r_base, data)
    b.li(r_i, 0)
    b.label("loop")
    for _ in range(6):
        b.add(r_t, r_base, r_i)    # six renames of r3 per iteration
        b.ld(r_t, r_t, 0)
    b.addi(r_i, r_i, 1)
    b.jmp("loop")
    core, stats = run_msp(b.build(), budget=400)
    top = stats.top_bank_stalls(1)
    assert top and top[0][0] == int_reg(3)
    del core


def test_ideal_msp_has_no_bank_stalls(fp_chain_program):
    config = SimConfig.msp_ideal()
    core = build_core(fp_chain_program, config)
    stats = core.run(max_instructions=500)
    assert not stats.bank_stall_cycles
    assert stats.dispatch_stall_cycles.get("bank_full", 0) == 0


def test_arbitration_stage_costs_cycles(sum_loop_program):
    with_arb = build_core(sum_loop_program,
                          SimConfig.msp(64, arbitration=True)).run(600)
    without = build_core(sum_loop_program,
                         SimConfig.msp(64, arbitration=False)).run(600)
    assert without.ipc >= with_arb.ipc


def test_state_outstanding_drains(sum_loop_program):
    core, stats = run_msp(sum_loop_program, budget=500)
    # After a run every remaining outstanding count belongs to the
    # still-in-flight window, never to committed states.
    committed_states = core._committed_stateid
    for stateid, count in core.state_outstanding.items():
        assert count > 0
        assert stateid > committed_states


def test_sc_resets_on_recovery(branchy_program):
    core, stats = run_msp(branchy_program, budget=400)
    assert stats.recoveries > 0
    # StateIds stay consistent: in-flight stateids are monotone in seq.
    w, mask = core.w, core.w.mask
    ids = [w.sid[s & mask] for s in core.in_flight]
    assert ids == sorted(ids)


def test_halting_program_commits_fully(halting_program):
    core, stats = run_msp(halting_program, budget=100)
    assert core.done
    assert stats.committed == 6  # includes HALT
    assert core.memory[halting_program.out_addr] == 42


def test_lcs_delay_zero_at_least_as_fast(sum_loop_program):
    fast = build_core(sum_loop_program,
                      SimConfig.msp(32, lcs_delay=0)).run(600)
    slow = build_core(sum_loop_program,
                      SimConfig.msp(32, lcs_delay=4)).run(600)
    assert fast.cycles <= slow.cycles


def test_rename_limit_one_hurts(sum_loop_program):
    narrow = build_core(sum_loop_program,
                        SimConfig.msp(32, max_same_reg_renames=1)).run(600)
    wide = build_core(sum_loop_program,
                      SimConfig.msp(32, max_same_reg_renames=2)).run(600)
    assert wide.ipc >= narrow.ipc
