"""StateId allocation and the saturation-bit overflow scheme (Sec 3.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    SaturatingStateIdSpace,
    StateIdAllocator,
    lcs_tree_depth,
    required_bits,
)


def test_allocator_monotonic():
    allocator = StateIdAllocator()
    ids = [allocator.next() for _ in range(10)]
    assert ids == list(range(1, 11))


def test_allocator_recovery_reset():
    allocator = StateIdAllocator()
    for _ in range(5):
        allocator.next()
    allocator.reset_to(2)
    assert allocator.next() == 3


def test_required_bits_matches_paper():
    # "the StateId is 9 bits for a 256-entry physical register file
    # (8 plus an overflow bit)"
    assert required_bits(256) == 9
    assert required_bits(512) == 10


def test_lcs_tree_depth_matches_paper():
    # "the hardware needed to compute the LCS is a five-level binary
    # tree" for 32 logical registers.
    assert lcs_tree_depth(32) == 5
    assert lcs_tree_depth(64) == 6
    assert lcs_tree_depth(2) == 1


def test_saturating_space_wraps_without_ambiguity():
    space = SaturatingStateIdSpace(m_bits=3)   # M = 8 states in flight
    owners = []
    # Run far past the 4-bit counter range with a sliding window of 4.
    # Encodings are re-read through the space: the hardware flash-clears
    # stored ids in place at renormalisation.
    for step in range(200):
        owner = object()
        space.allocate(owner)
        owners.append(owner)
        if len(owners) > 4:
            space.release(owners.pop(0))
        # Every live pair must order by allocation age.
        for i, older in enumerate(owners):
            for younger in owners[i + 1:]:
                assert space.is_older(space.encoded(older),
                                      space.encoded(younger))


def test_saturating_space_rejects_over_capacity():
    space = SaturatingStateIdSpace(m_bits=2)
    for k in range(4):
        space.allocate(k)
    with pytest.raises(OverflowError):
        space.allocate("extra")


@settings(max_examples=50)
@given(st.integers(min_value=2, max_value=6),
       st.lists(st.integers(min_value=0, max_value=3), min_size=10,
                max_size=300))
def test_saturating_encoding_equivalent_to_unbounded(m_bits, releases):
    """Property: while at most M states are live, the encoded comparison
    agrees with unbounded integer ordering — the invariant that lets the
    simulator use plain ints."""
    space = SaturatingStateIdSpace(m_bits=m_bits)
    # One register per bank is always the architectural copy, so the
    # in-flight *state* window is strictly below M (see the class
    # docstring's lifetime constraint).
    capacity = space.capacity - 1
    live = []  # (unbounded, owner, encoded)
    counter = 0
    for burst in releases:
        # Allocate as many as fit, then release `burst` oldest.
        while len(live) < capacity:
            counter += 1
            owner = counter
            encoded = space.allocate(owner)
            live.append((counter, owner, encoded))
        for _ in range(min(burst + 1, len(live) - 1)):
            unbounded, owner, _ = live.pop(0)
            space.release(owner)
        for i in range(len(live)):
            for j in range(i + 1, len(live)):
                u1, o1, _ = live[i]
                u2, o2, _ = live[j]
                assert (u1 < u2) == space.is_older(space.encoded(o1),
                                                   space.encoded(o2))
