"""RegisterBank (SCT) tests: allocation, RelP, release, rollback."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RegisterBank


def make_bank(capacity=4):
    return RegisterBank(logical=1, capacity=capacity, initial_value=0)


def test_initial_state_is_architectural_copy():
    bank = make_bank()
    assert bank.live_entries == 1
    assert bank.current_mono() == 0
    assert bank.is_ready(0)
    assert bank.read(0) == 0


def test_allocate_advances_renp():
    bank = make_bank()
    mono = bank.allocate(stateid=1)
    assert mono == 1
    assert bank.current_mono() == 1
    assert not bank.is_ready(mono)
    bank.write(mono, 42)
    assert bank.is_ready(mono)
    assert bank.read(mono) == 42


def test_full_bank_rejects_allocation():
    bank = make_bank(capacity=2)
    bank.allocate(1)
    assert bank.is_full()
    with pytest.raises(RuntimeError):
        bank.allocate(2)


def test_use_tracking_and_underflow_guard():
    bank = make_bank()
    mono = bank.allocate(1)
    bank.add_use(mono)
    bank.add_use(mono)
    bank.consume(mono)
    bank.consume(mono)
    with pytest.raises(AssertionError):
        bank.consume(mono)


def test_relp_stops_at_unconsumed_entry():
    bank = make_bank(capacity=4)
    m1 = bank.allocate(1)
    bank.allocate(2)
    bank.write(m1, 5)
    bank.add_use(m1)
    bank.advance_rel({})
    # Entry 0 (initial, quiescent) releasable; m1 has a pending use.
    assert bank.rel == m1
    bank.consume(m1)
    bank.advance_rel({})
    assert bank.rel == 2  # stops at RenP


def test_relp_stops_on_outstanding_state_instructions():
    bank = make_bank(capacity=4)
    m1 = bank.allocate(1)
    bank.allocate(2)
    bank.write(m1, 5)
    bank.advance_rel({1: 1})      # a branch/store of state 1 in flight
    assert bank.rel == m1
    bank.advance_rel({})
    assert bank.rel == 2


def test_lcs_candidate_excludes_quiescent_bank():
    bank = make_bank()
    assert bank.lcs_candidate({}) is None          # idle initial bank
    mono = bank.allocate(7)
    assert bank.lcs_candidate({}) == 0             # rel still at entry 0
    bank.advance_rel({})
    assert bank.lcs_candidate({}) == 7             # value unproduced
    bank.write(mono, 1)
    assert bank.lcs_candidate({}) is None          # produced + complete
    assert bank.lcs_candidate({7: 2}) == 7         # same-state pending


def test_lcs_candidate_ignores_reader_uses_on_last_entry():
    # The loop-invariant case: pending reads of the current mapping must
    # not gate the LCS (interpretation note in lcs_candidate).
    bank = make_bank()
    mono = bank.allocate(3)
    bank.write(mono, 9)
    bank.advance_rel({})
    bank.add_use(mono)
    assert bank.lcs_candidate({}) is None


def test_free_up_to_respects_successor_commit():
    bank = make_bank(capacity=4)
    m1 = bank.allocate(1)
    m2 = bank.allocate(2)
    bank.write(m1, 1)
    bank.write(m2, 2)
    bank.advance_rel({})
    # Entry 0's successor (state 1) not committed yet: nothing frees.
    assert bank.free_up_to(0) == 0
    assert bank.free_up_to(1) == 1          # frees initial entry
    assert bank.live_entries == 2
    # m1 frees only once state 2 commits.
    assert bank.free_up_to(2) == 1
    assert bank.live_entries == 1


def test_last_renaming_never_freed():
    bank = make_bank(capacity=4)
    mono = bank.allocate(1)
    bank.write(mono, 3)
    bank.advance_rel({})
    bank.free_up_to(100)
    assert bank.live_entries >= 1
    assert bank.current_mono() == mono


def test_rollback_releases_younger_entries():
    bank = make_bank(capacity=8)
    m1 = bank.allocate(1)
    m2 = bank.allocate(5)
    m3 = bank.allocate(9)
    assert bank.rollback(recovery_stateid=5) == 1
    assert bank.current_mono() == m2
    assert bank.rollback(recovery_stateid=0) == 2
    assert bank.current_mono() == 0
    del m1, m3


def test_rollback_clamps_relp():
    bank = make_bank(capacity=8)
    m1 = bank.allocate(1)
    bank.write(m1, 1)
    m2 = bank.allocate(2)
    bank.write(m2, 2)
    bank.allocate(3)
    bank.advance_rel({})
    assert bank.rel == 3  # reached RenP
    bank.rollback(recovery_stateid=1)
    assert bank.rel <= bank.current_mono()


def test_slot_reuse_after_free():
    bank = make_bank(capacity=2)
    m1 = bank.allocate(1)
    bank.write(m1, 10)
    bank.advance_rel({})
    bank.free_up_to(1)
    m2 = bank.allocate(2)     # reuses the initial entry's slot
    assert m2 == 2
    bank.write(m2, 20)
    assert bank.read(m1) == 10
    assert bank.read(m2) == 20


def test_unbounded_bank_grows():
    bank = RegisterBank(logical=0, capacity=None)
    for stateid in range(1, 100):
        mono = bank.allocate(stateid)
        bank.write(mono, stateid)
    assert not bank.is_full()
    assert bank.read(50) == 50


@settings(max_examples=60)
@given(st.lists(st.sampled_from(["alloc", "complete", "commit"]),
                min_size=1, max_size=120),
       st.integers(min_value=2, max_value=8))
def test_bank_invariants_under_random_traffic(ops, capacity):
    """Property: freed <= rel < alloc and live count within capacity,
    under any interleaving of allocation, completion and commit."""
    bank = RegisterBank(logical=2, capacity=capacity)
    next_state = 0
    committed = 0
    pending = []
    for op in ops:
        if op == "alloc" and not bank.is_full():
            next_state += 1
            pending.append((bank.allocate(next_state), next_state))
        elif op == "complete" and pending:
            mono, _ = pending.pop(0)
            bank.write(mono, mono)
        elif op == "commit":
            committed = next_state - 1 if next_state else 0
            bank.advance_rel({})
            bank.free_up_to(committed)
        assert bank.freed <= bank.rel < bank.alloc
        assert 1 <= bank.live_entries <= capacity
