"""Store-queue tests: forwarding, disambiguation, hierarchy, squash."""

import pytest
from hypothesis import given, strategies as st

from repro.storequeue import StoreQueue


def test_allocate_orders_by_seq():
    sq = StoreQueue()
    sq.allocate(1)
    with pytest.raises(ValueError):
        sq.allocate(1)


def test_capacity_and_overflow():
    sq = StoreQueue(l1_capacity=2, l2_capacity=0)
    sq.allocate(1)
    sq.allocate(2)
    assert sq.is_full()
    with pytest.raises(RuntimeError):
        sq.allocate(3)


def test_unbounded_queue_never_full():
    sq = StoreQueue(l1_capacity=None)
    for seq in range(1000):
        sq.allocate(seq)
    assert not sq.is_full()


def test_forward_from_youngest_matching_store():
    sq = StoreQueue()
    e1 = sq.allocate(1)
    e2 = sq.allocate(2)
    sq.execute(e1, addr=100, value=11)
    sq.execute(e2, addr=100, value=22)
    value, penalty = sq.forward(100, load_seq=5)
    assert value == 22 and penalty == 0


def test_forward_ignores_younger_stores():
    sq = StoreQueue()
    e1 = sq.allocate(1)
    sq.execute(e1, 100, 11)
    e2 = sq.allocate(9)
    sq.execute(e2, 100, 99)
    value, _ = sq.forward(100, load_seq=5)
    assert value == 11


def test_l2_forward_penalty():
    sq = StoreQueue(l1_capacity=1, l2_capacity=4, l2_forward_penalty=8)
    old = sq.allocate(1)
    sq.execute(old, 100, 11)
    for seq in range(2, 4):
        entry = sq.allocate(seq)
        sq.execute(entry, 200 + seq, seq)
    # Entry 1 has overflowed past the 1-entry L1 level.
    value, penalty = sq.forward(100, load_seq=10)
    assert value == 11 and penalty == 8


def test_load_blocked_by_unknown_address():
    sq = StoreQueue()
    sq.allocate(1)
    assert sq.load_blocked(500, load_seq=5)
    assert not sq.load_blocked(500, load_seq=1)  # store not older


def test_load_blocked_by_pending_data_conflict():
    sq = StoreQueue()
    entry = sq.allocate(1)
    sq.set_address(entry, 500)
    assert sq.load_blocked(500, load_seq=5)      # same addr, no data
    assert not sq.load_blocked(501, load_seq=5)  # different addr
    sq.execute(entry, 500, 7)
    assert not sq.load_blocked(500, load_seq=5)  # data ready: forwards


def test_commit_in_order_blocks_on_unexecuted_head():
    written = []
    sq = StoreQueue()
    e1 = sq.allocate(1)
    e2 = sq.allocate(2)
    sq.execute(e2, 200, 22)
    assert sq.commit_up_to(10, lambda a, v: written.append((a, v))) == 0
    sq.execute(e1, 100, 11)
    assert sq.commit_up_to(10, lambda a, v: written.append((a, v))) == 2
    assert written == [(100, 11), (200, 22)]


def test_commit_respects_seq_bound_and_limit():
    written = []
    sq = StoreQueue()
    for seq in range(1, 5):
        sq.execute(sq.allocate(seq), seq * 10, seq)
    assert sq.commit_up_to(2, lambda a, v: written.append(a)) == 2
    assert sq.commit_up_to(10, lambda a, v: written.append(a), limit=1) == 1
    assert len(sq) == 1


def test_squash_drops_young_entries_and_pending_state():
    sq = StoreQueue()
    e1 = sq.allocate(1)
    sq.set_address(e1, 100)
    e2 = sq.allocate(2)
    sq.set_address(e2, 100)
    assert sq.squash_after(1) == 1
    assert len(sq) == 1
    # e2's pending-data record must be gone.
    sq.execute(e1, 100, 5)
    assert not sq.load_blocked(100, load_seq=9)


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)),
                min_size=1, max_size=40))
def test_forward_always_returns_youngest_older_match(pairs):
    """Property: forwarding returns the value of the youngest executed
    store older than the load, per address."""
    sq = StoreQueue(l1_capacity=None)
    model = {}
    seq = 0
    for addr, value in pairs:
        seq += 1
        entry = sq.allocate(seq)
        sq.execute(entry, addr, value)
        model[addr] = value
    load_seq = seq + 1
    for addr in {a for a, _ in pairs}:
        value, _ = sq.forward(addr, load_seq)
        assert value == model[addr]
