"""Every registered workload builds and commits on the baseline core."""

import pytest

from repro.isa.program import Program
from repro.sim import SimConfig, build_core
from repro.workloads import SPECFP, SPECINT, all_workloads, get_program


def test_suites_are_subsets_of_registry():
    names = set(all_workloads())
    assert set(SPECINT) <= names and set(SPECFP) <= names


@pytest.mark.parametrize("name", all_workloads())
def test_workload_builds_and_commits(name):
    program = get_program(name)
    assert isinstance(program, Program) and len(program) > 0
    stats = build_core(program, SimConfig.baseline()).run(
        max_instructions=200)
    assert stats.committed >= 200
    assert stats.cycles > 0
