"""Trait calibration: measured behaviour must stay in each workload's
declared band, so the synthetic benchmarks cannot silently drift away
from the characteristics that drive the paper's effects."""

import pytest

from repro.sim import SimConfig, build_core
from repro.workloads import SPECFP, SPECINT, get_program, get_traits

BUDGET = 2500


@pytest.fixture(scope="module")
def measured():
    out = {}
    for name in SPECINT + SPECFP:
        core = build_core(get_program(name),
                          SimConfig.msp(16, predictor="tage"))
        stats = core.run(max_instructions=BUDGET)
        out[name] = (core, stats)
    return out


@pytest.mark.parametrize("name", SPECINT + SPECFP)
def test_misprediction_rate_in_band(measured, name):
    core, stats = measured[name]
    low, high = get_traits(name).mispredict_band
    assert low <= stats.misprediction_rate <= high, \
        f"{name}: {stats.misprediction_rate:.3f} outside [{low}, {high}]"


@pytest.mark.parametrize("name", SPECINT + SPECFP)
def test_l1d_miss_rate_in_band(measured, name):
    core, _ = measured[name]
    low, high = get_traits(name).l1d_miss_band
    rate = core.hierarchy.dcache.miss_rate
    assert low <= rate <= high, \
        f"{name}: L1D miss rate {rate:.3f} outside [{low}, {high}]"


def test_tight_workloads_stall_more_than_generous(measured):
    """Register-pressure calibration: the declared-tight workloads must
    show materially more 16-SP bank stalls than the generous ones."""
    def stall_fraction(name):
        core, stats = measured[name]
        return (sum(stats.bank_stall_cycles.values())
                / max(1, stats.cycles))

    tight = [n for n in SPECINT + SPECFP
             if get_traits(n).register_pressure == "tight"]
    generous = [n for n in SPECINT + SPECFP
                if get_traits(n).register_pressure == "generous"]
    tight_mean = sum(map(stall_fraction, tight)) / len(tight)
    generous_mean = sum(map(stall_fraction, generous)) / len(generous)
    assert tight_mean > generous_mean


def test_memory_bound_set_misses_to_memory(measured):
    """mcf/swim/mgrid-class workloads must actually reach main memory."""
    for name in ("mcf", "swim", "mgrid", "art"):
        core, _ = measured[name]
        assert core.hierarchy.l2.misses > 0, f"{name} never missed L2"
