"""Workload registry and calibration tests."""

import pytest

from repro.isa import run_program
from repro.workloads import (
    BUILDERS,
    SPECFP,
    SPECINT,
    TABLE2_ENTRIES,
    all_workloads,
    get_program,
    get_traits,
)


def test_suites_cover_papers_benchmarks():
    assert len(SPECINT) == 12
    assert len(SPECFP) == 10
    assert "mcf" in SPECINT and "swim" in SPECFP


def test_every_workload_registered_with_traits():
    for name in SPECINT + SPECFP:
        assert name in BUILDERS
        traits = get_traits(name)
        assert traits.suite in ("specint", "specfp")


def test_table2_entries_match_paper_rows():
    kernels = {(e.benchmark, e.function) for e in TABLE2_ENTRIES}
    assert kernels == {
        ("bzip2", "generateMTFValues"),
        ("twolf", "new_dbox_a"),
        ("swim", "calc3"),
        ("mgrid", "resid"),
        ("equake", "smvp"),
    }


def test_modified_variants_registered():
    for entry in TABLE2_ENTRIES:
        name = f"{entry.benchmark}_mod"
        assert name in BUILDERS
        assert get_traits(name) is get_traits(entry.benchmark)


def test_programs_cached_and_deterministic():
    first = get_program("gzip")
    second = get_program("gzip")
    assert first is second
    rebuilt = BUILDERS["gzip"]()
    assert rebuilt.initial_memory == first.initial_memory
    assert len(rebuilt) == len(first)


def test_different_seeds_differ():
    base = BUILDERS["vpr"](seed=1)
    other = BUILDERS["vpr"](seed=2)
    assert base.initial_memory != other.initial_memory


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        get_program("spice")


@pytest.mark.parametrize("name", SPECINT + SPECFP)
def test_workload_runs_forever_functionally(name):
    result = run_program(get_program(name), max_instructions=2000)
    assert result.retired == 2000
    assert not result.terminated


@pytest.mark.parametrize("entry", TABLE2_ENTRIES,
                         ids=lambda e: e.benchmark)
def test_modified_variant_architecturally_plausible(entry):
    """Modified kernels run and have larger static bodies (unrolled)."""
    original = get_program(entry.benchmark)
    modified = get_program(f"{entry.benchmark}_mod")
    assert len(modified) > len(original)
    result = run_program(modified, max_instructions=1500)
    assert result.retired == 1500


def test_all_workloads_sorted_listing():
    names = all_workloads()
    assert names == sorted(names)
    assert len(names) == 27  # 12 int + 10 fp + 5 modified
