"""Phase profiling: spans, merge semantics, campaign persistence."""

from __future__ import annotations

import json

from repro.obs import PhaseProfile, profile_enabled, span
from repro.sim.campaign import CampaignSpec, profile_path, run_jobs
from repro.sim.config import SimConfig
from repro.sim.runner import simulate
from repro.workloads import get_program


def test_disabled_span_is_shared_noop():
    assert span(None, "ff") is span(None, "detail")
    with span(None, "ff"):
        pass


def test_add_merge_total_round_trip():
    a = PhaseProfile()
    a.add("ff", 1.0)
    a.add("ff", 0.5)
    a.add("detail", 2.0, count=3)
    b = PhaseProfile.from_dict(a.to_dict())
    assert b.seconds == {"ff": 1.5, "detail": 2.0}
    assert b.counts == {"ff": 2, "detail": 3}
    b.merge(a)
    assert b.seconds["ff"] == 3.0
    assert b.total() == 7.0


def test_format_orders_by_share():
    profile = PhaseProfile()
    profile.add("ff", 1.0)
    profile.add("detail", 3.0)
    lines = profile.format().splitlines()
    assert lines[0].startswith("detail") and "75.0%" in lines[0]
    assert lines[1].startswith("ff") and "25.0%" in lines[1]


def test_profile_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert not profile_enabled()
    monkeypatch.setenv("REPRO_PROFILE", "0")
    assert not profile_enabled()
    monkeypatch.setenv("REPRO_PROFILE", "1")
    assert profile_enabled()


def test_simulate_records_detail_span():
    profile = PhaseProfile()
    simulate(get_program("gzip"), SimConfig.baseline(),
             max_instructions=1000, profile=profile)
    assert profile.seconds["detail"] > 0
    assert profile.counts["detail"] == 1


def test_sampled_simulate_records_engine_phases():
    profile = PhaseProfile()
    simulate(get_program("gzip"), SimConfig.msp(16),
             max_instructions=20_000, sampling=True, artifacts=False,
             profile=profile)
    for phase in ("ff", "warmup", "detail"):
        assert profile.seconds[phase] > 0, phase


def test_profile_does_not_perturb_stats():
    program = get_program("gzip")
    plain = simulate(program, SimConfig.msp(16),
                     max_instructions=20_000, sampling=True,
                     artifacts=False).to_dict()
    profiled = simulate(program, SimConfig.msp(16),
                        max_instructions=20_000, sampling=True,
                        artifacts=False,
                        profile=PhaseProfile()).to_dict()
    assert profiled == plain


def test_run_jobs_persists_merged_profile(tmp_path):
    spec = CampaignSpec("profiled", ["gzip"],
                        [SimConfig.baseline(), SimConfig.msp(16)], 1500)
    report = run_jobs(spec.jobs(), cache_dir=tmp_path, profile=True)
    assert report.phase is not None
    assert report.phase.seconds["job"] > 0
    assert report.phase.counts["job"] == 2
    path = profile_path(tmp_path)
    assert path.is_file()
    merged = PhaseProfile.from_dict(json.loads(path.read_text()))
    assert merged.seconds["job"] > 0
    # A second run is served from the result cache: no simulator, no
    # new spans — the sidecar keeps the first run's numbers.
    again = run_jobs(spec.jobs(), cache_dir=tmp_path, profile=True)
    assert again.hits == 2 and not again.phase.seconds


def test_run_jobs_profile_off_by_default(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    spec = CampaignSpec("unprofiled", ["gzip"],
                        [SimConfig.baseline()], 1000)
    report = run_jobs(spec.jobs(), cache_dir=tmp_path)
    assert report.phase is None
    assert not profile_path(tmp_path).exists()
