"""Telemetry-off statistics are bit-identical to pre-telemetry pins.

``pinned_stats.json`` holds ``SimStats.to_dict()`` payloads captured
from the tree *before* any ``repro.obs`` hook existed.  Every hook site
is a ``None``-checked slot, so with tracing/metrics/profiling disarmed
the simulator must reproduce those dicts exactly — any drift means the
telemetry is not zero-overhead-when-off (or perturbed timing).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.config import SimConfig
from repro.sim.runner import simulate
from repro.workloads import get_program

PINNED = json.loads(
    (Path(__file__).parent / "pinned_stats.json").read_text())

CONFIGS = {
    "baseline": lambda: SimConfig.baseline(),
    "cpr": lambda: SimConfig.cpr(),
    "msp16": lambda: SimConfig.msp(16),
}


def _run(key: str) -> dict:
    workload, machine, mode = key.split("/")
    program = get_program(workload)
    config = CONFIGS[machine]()
    if mode == "full1000":
        stats = simulate(program, config, max_instructions=1000)
    elif mode == "sampled20000":
        stats = simulate(program, config, max_instructions=20_000,
                         sampling=True, artifacts=False)
    elif mode == "simpoint60000":
        stats = simulate(program, config, max_instructions=60_000,
                         sampling="simpoint", artifacts=False)
    else:
        raise AssertionError(f"unknown pin mode {mode!r}")
    # JSON round-trip so tuples (Counter items) normalize to lists,
    # matching how the fixture was serialized.
    return json.loads(json.dumps(stats.to_dict()))


@pytest.mark.parametrize("key", sorted(PINNED))
def test_stats_bit_identical_to_pre_telemetry_pin(key):
    assert _run(key) == PINNED[key]
