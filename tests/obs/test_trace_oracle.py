"""Scan-vs-event trace equality: the correctness oracle for tracing.

The event scheduler skips provably idle cycles; the scan oracle
simulates every one.  The tracer's consecutive-stall dedup (see
:mod:`repro.obs.trace`) is designed to make the two serialized Kanata
streams *byte-identical* anyway — so any divergence pinpoints either a
scheduler accounting bug or a mis-placed emission site.
"""

from __future__ import annotations

import pytest

from repro.obs import KANATA_HEADER, PipelineTracer, to_kanata
from repro.sim.config import SimConfig
from repro.sim.runner import build_core
from repro.workloads import get_program

#: The quick SPECint grid (``REPRO_BENCHSET=quick`` — SPECINT[::3]).
QUICK_GRID = ["gzip", "mcf", "eon", "vortex"]

MACHINES = {
    "baseline": lambda **kw: SimConfig.baseline(**kw),
    "cpr": lambda **kw: SimConfig.cpr(**kw),
    "msp16": lambda **kw: SimConfig.msp(16, **kw),
}


def _trace(workload: str, make, scheduler: str, n: int = 1500, **kw):
    core = build_core(get_program(workload),
                      make(scheduler=scheduler, **kw))
    tracer = PipelineTracer()
    core.attach_tracer(tracer)
    stats = core.run(max_instructions=n)
    return to_kanata(tracer.events), stats.to_dict()


def _first_diff(a: str, b: str) -> str:
    for i, (la, lb) in enumerate(zip(a.splitlines(), b.splitlines())):
        if la != lb:
            return f"line {i}: scan={la!r} event={lb!r}"
    return f"length: scan={len(a)} event={len(b)}"


@pytest.mark.parametrize("workload", QUICK_GRID)
@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_event_scan_kanata_byte_identical(workload, machine):
    make = MACHINES[machine]
    scan_text, scan_stats = _trace(workload, make, "scan")
    event_text, event_stats = _trace(workload, make, "event")
    assert scan_text.startswith(KANATA_HEADER)
    assert event_text == scan_text, _first_diff(scan_text, event_text)
    assert event_stats == scan_stats


@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_codegen_ladder_kanata_byte_identical(machine):
    """The per-static-instruction codegen closures drive the event
    scheduler's issue path; with them disabled the generic kind ladder
    runs instead.  Both must serialize the same Kanata stream — and
    match the scan oracle, which never uses codegen."""
    make = MACHINES[machine]
    scan_text, scan_stats = _trace("gzip", make, "scan")
    on_text, on_stats = _trace("gzip", make, "event", codegen=True)
    off_text, off_stats = _trace("gzip", make, "event", codegen=False)
    assert on_text == off_text, _first_diff(on_text, off_text)
    assert on_text == scan_text, _first_diff(scan_text, on_text)
    assert on_stats == off_stats == scan_stats
