"""Interval time-series metrics: schema, accounting, phase visibility."""

from __future__ import annotations

import statistics

import pytest

from repro.obs import default_metrics_interval
from repro.pipeline.stats import SimStats
from repro.sim.config import SimConfig
from repro.sim.runner import simulate
from repro.workloads import get_program

REQUIRED_KEYS = {"pos", "instructions", "cycles", "ipc", "branch_mpki",
                 "dcache_mpki", "icache_mpki", "occupancy"}


def test_default_interval_scaling():
    assert default_metrics_interval(100) == 50       # floor
    assert default_metrics_interval(100_000) == 2000  # ~50 points


def test_full_detail_rows_account_for_every_commit():
    stats = simulate(get_program("gzip"), SimConfig.baseline(),
                     max_instructions=5000, metrics=250)
    rows = stats.interval_metrics
    assert rows, "metrics on must produce rows"
    assert sum(row["instructions"] for row in rows) == stats.committed
    assert sum(row["cycles"] for row in rows) == stats.cycles
    positions = [row["pos"] for row in rows]
    assert positions == sorted(positions) and positions[0] == 0
    # Every full interval is exactly the stride; only the trailing
    # partial may be shorter.
    assert all(row["instructions"] == 250 for row in rows[:-1])
    for row in rows:
        assert REQUIRED_KEYS <= set(row)
        assert row["ipc"] == pytest.approx(
            row["instructions"] / row["cycles"])


def test_low_confidence_only_on_confidence_machines():
    base = simulate(get_program("gzip"), SimConfig.baseline(),
                    max_instructions=2000, metrics=200)
    cpr = simulate(get_program("gzip"), SimConfig.cpr(),
                   max_instructions=2000, metrics=200)
    assert all("low_confidence" not in row
               for row in base.interval_metrics)
    assert all("low_confidence" in row for row in cpr.interval_metrics)


def test_sampled_run_one_row_per_window():
    stats = simulate(get_program("gzip"), SimConfig.msp(16),
                     max_instructions=20_000, sampling=True,
                     artifacts=False, metrics=True)
    rows = stats.interval_metrics
    assert len(rows) == stats.sample_intervals
    for row in rows:
        assert REQUIRED_KEYS <= set(row)
        assert row["represents"] > 0
        assert row["pos"] >= 0


def test_metrics_off_leaves_stats_clean():
    stats = simulate(get_program("gzip"), SimConfig.baseline(),
                     max_instructions=1000)
    assert not hasattr(stats, "interval_metrics")
    assert "interval_metrics" not in stats.to_dict()


def test_interval_metrics_survive_dict_round_trip():
    stats = simulate(get_program("gzip"), SimConfig.baseline(),
                     max_instructions=2000, metrics=500)
    clone = SimStats.from_dict(stats.to_dict())
    assert clone.interval_metrics == stats.interval_metrics
    assert clone.to_dict() == stats.to_dict()


def test_schedulers_produce_identical_series():
    for workload in ("gzip", "mcf"):
        program = get_program(workload)
        event = simulate(program, SimConfig.msp(16),
                         max_instructions=4000, metrics=200)
        scan = simulate(program,
                        SimConfig.msp(16, scheduler="scan"),
                        max_instructions=4000, metrics=200)
        assert event.interval_metrics == scan.interval_metrics


def _relative_ipc_variance(workload: str) -> float:
    stats = simulate(get_program(workload), SimConfig.baseline(),
                     max_instructions=20_000, metrics=400)
    series = [row["ipc"] for row in stats.interval_metrics]
    mean = statistics.fmean(series)
    return statistics.pvariance(series) / (mean * mean)


def test_mcf_phase_structure_visible_vs_gzip():
    """The acceptance check behind the whole pillar: mcf's pointer-
    chasing phases produce larger mean-normalized interval-IPC variance
    than gzip's steady compression loop — structure that whole-run
    aggregates (and BBV-blind summaries) cannot show."""
    assert _relative_ipc_variance("mcf") > \
        1.5 * _relative_ipc_variance("gzip")
