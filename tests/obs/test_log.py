"""Leveled stderr logging and byte-size formatting."""

from __future__ import annotations

import pytest

from repro.obs import human_bytes, log, log_level


def _stderr(capsys) -> str:
    return capsys.readouterr().err


def test_default_level_is_warn(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    assert log_level() == "warn"


def test_malformed_level_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_LOG", "shouty")
    assert log_level() == "warn"


def test_warn_prints_at_default(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    log("hello there")
    assert _stderr(capsys) == "hello there\n"


def test_quiet_suppresses_warn_not_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_LOG", "quiet")
    log("chatter")
    assert _stderr(capsys) == ""
    log("boom", "error")
    assert _stderr(capsys) == "boom\n"


def test_debug_only_at_debug(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    log("wires", "debug")
    assert _stderr(capsys) == ""
    monkeypatch.setenv("REPRO_LOG", "debug")
    log("wires", "debug")
    assert _stderr(capsys) == "wires\n"


@pytest.mark.parametrize("n,expect", [
    (0, "0 B"),
    (1023, "1023 B"),
    (1536, "1.5 KiB"),
    (1048576, "1.0 MiB"),
    (3 * 1024 ** 3, "3.0 GiB"),
])
def test_human_bytes(n, expect):
    assert human_bytes(n) == expect
