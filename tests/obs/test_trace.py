"""Unit and structural tests for the pipeline tracer / Kanata output."""

from __future__ import annotations

import pytest

from repro.defaults import EnvConfigError
from repro.obs import PipelineTracer, to_kanata, trace_limit
from repro.sim.config import SimConfig
from repro.sim.runner import build_core, simulate
from repro.workloads import get_program


def _traced(workload="gzip", config=None, n=800):
    config = config or SimConfig.baseline()
    core = build_core(get_program(workload), config)
    tracer = PipelineTracer()
    core.attach_tracer(tracer)
    stats = core.run(max_instructions=n)
    return to_kanata(tracer.events), tracer, stats


def test_header_and_cycle_monotonicity():
    text, _, _ = _traced()
    lines = text.splitlines()
    assert lines[0] == "Kanata\t0004"
    saw_absolute = False
    for line in lines[1:]:
        kind = line.split("\t", 1)[0]
        if kind == "C=":
            # Exactly one absolute cycle marker, before any delta.
            assert not saw_absolute
            saw_absolute = True
        elif kind == "C":
            assert int(line.split("\t")[1]) > 0
    assert saw_absolute


def test_one_commit_retire_per_committed_instruction():
    for workload in ("gzip", "mcf"):
        text, _, stats = _traced(workload=workload)
        retires = [line for line in text.splitlines()
                   if line.startswith("R\t") and line.endswith("\t0")]
        assert len(retires) == stats.committed


def test_every_introduced_instruction_retires_or_flushes():
    text, _, _ = _traced(config=SimConfig.msp(16))
    introduced = set()
    closed = set()
    for line in text.splitlines():
        fields = line.split("\t")
        if fields[0] == "I":
            introduced.add(int(fields[1]))
        elif fields[0] == "R":
            seq = int(fields[1])
            assert seq in introduced       # retire precedes introduce?
            assert seq not in closed       # double retire
            closed.add(seq)
    # A handful of instructions may still be in flight at the budget
    # boundary; everything else must have resolved one way.
    assert len(introduced - closed) <= 64


def test_tracing_does_not_perturb_stats():
    program = get_program("gzip")
    for config in (SimConfig.baseline(), SimConfig.cpr(),
                   SimConfig.msp(16)):
        baseline = simulate(program, config,
                            max_instructions=1200).to_dict()
        core = build_core(program, config)
        core.attach_tracer(PipelineTracer())
        traced = core.run(max_instructions=1200).to_dict()
        assert traced == baseline


def test_event_limit_drops_and_counts():
    core = build_core(get_program("gzip"), SimConfig.baseline())
    tracer = PipelineTracer(limit=100)
    core.attach_tracer(tracer)
    core.run(max_instructions=2000)
    assert len(tracer.events) == 100
    assert tracer.dropped > 0


def test_stall_dedup_consecutive_only():
    tracer = PipelineTracer()
    tracer.stall(5, 10, "registers_full")
    tracer.stall(5, 11, "registers_full")   # dup: suppressed
    tracer.stall(5, 12, "window_full")      # reason changed
    tracer.stall(5, 13, "window_full")      # dup: suppressed
    tracer.stall(6, 14, "window_full")      # head changed
    assert tracer.events == [
        ("T", 10, 5, "registers_full"),
        ("T", 12, 5, "window_full"),
        ("T", 14, 6, "window_full"),
    ]


def test_trace_limit_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LIMIT", "123")
    assert trace_limit() == 123
    monkeypatch.setenv("REPRO_TRACE_LIMIT", "0")
    with pytest.raises(EnvConfigError):
        trace_limit()
