"""Cache and memory-hierarchy tests."""

import pytest

from repro.memory import Cache, MemoryHierarchy


def test_miss_then_hit_same_line():
    cache = Cache("t", 1024, 2, 64)
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.access(7)        # same 8-word line
    assert not cache.access(8)    # next line
    assert cache.hits == 2
    assert cache.misses == 2


def test_lru_eviction():
    # 2-way, 1 set: 128 bytes total, 64-byte lines.
    cache = Cache("t", 128, 2, 64)
    cache.access(0)
    cache.access(8)
    cache.access(0)       # refresh line 0
    cache.access(16)      # evicts line 1 (LRU)
    assert cache.probe(0)
    assert not cache.probe(8)
    assert cache.probe(16)


def test_dirty_eviction_counts_writeback():
    cache = Cache("t", 128, 2, 64)
    cache.access(0, write=True)
    cache.access(8)
    cache.access(16)      # evicts dirty line 0
    assert cache.writebacks == 1


def test_miss_rate_statistic():
    cache = Cache("t", 1024, 2, 64)
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == 0.5


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        Cache("bad", 1000, 3, 64)


def test_hierarchy_latencies_follow_table1():
    h = MemoryHierarchy()
    # Cold data access goes to memory; second hits L1D.
    assert h.load_latency(100) == 380
    assert h.load_latency(100) == 4
    # Cold instruction fetch; second hits L1I.
    assert h.instruction_latency(0) == 380
    assert h.instruction_latency(0) == 1


def test_l2_backs_l1_eviction():
    h = MemoryHierarchy(dcache_size=128, dcache_assoc=2)
    h.load_latency(0)          # memory; now in tiny L1D and L2
    h.load_latency(8)
    h.load_latency(16)         # evicts line 0 from L1D, still in L2
    assert h.load_latency(0) == 16


def test_instructions_and_data_do_not_alias():
    h = MemoryHierarchy()
    h.load_latency(0)
    assert h.instruction_latency(0) == 380  # distinct address space


def test_warm_resets_stats_and_preloads():
    h = MemoryHierarchy()
    h.warm(range(64), [0, 8, 16])
    assert h.icache.misses == 0 and h.dcache.misses == 0
    assert h.instruction_latency(0) == 1
    assert h.load_latency(8) == 4


def test_store_commit_updates_caches():
    h = MemoryHierarchy()
    h.store_commit(40)
    assert h.load_latency(40) == 4
