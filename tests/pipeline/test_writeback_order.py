"""Regression: same-cycle completion buckets resolve strictly oldest
first.

Completion buckets accumulate in *issue* order, so a younger branch that
issued earlier (e.g. woken by the same long-latency producer) can sit in
front of an older branch that resolves the same cycle.  Before the fix,
the younger branch was examined first: it trained the predictor,
repaired global history and triggered a full recovery of its own — and
only then did the older branch's mispredict squash it, re-repairing
history and re-squashing state.  A branch in an older mispredict's
squash shadow must never resolve: the writeback stage now sorts each
bucket by sequence number, so the older recovery lands first and the
squashed younger completion is dropped.

With structure-of-arrays in-flight state the bucket holds sequence
numbers; per-instruction fields live in the window columns, and the
squashed/mispredicted/completed facts are bits in the status column.
"""

from __future__ import annotations

import pytest

from repro.isa import ProgramBuilder, int_reg
from repro.sim.config import SimConfig
from repro.sim.runner import build_core


def _two_branch_program():
    """Two branches woken by the same 12-cycle DIV: they issue in the
    same cycle and complete in the same writeback bucket."""
    b = ProgramBuilder("two_branches")
    r1, r2, r3 = int_reg(1), int_reg(2), int_reg(3)
    b.li(r1, 7)
    b.li(r2, 3)
    b.div(r3, r1, r2)          # 12-cycle producer
    b.beq(r3, int_reg(0), "taken1")     # older branch
    b.bne(r3, int_reg(0), "taken2")     # younger branch
    b.addi(r1, r1, 1)
    b.label("taken1")
    b.addi(r2, r2, 1)
    b.label("taken2")
    b.addi(r3, r3, 1)
    b.jmp("exit")
    b.label("exit")
    b.halt()
    return b.build()


def _run_until_shared_bucket(core, max_cycles=200):
    """Advance until a completion bucket holds both branches; return
    (bucket_cycle, older_seq, younger_seq)."""
    w, dec, mask = core.w, core._dec, core.w.mask
    for _ in range(max_cycles):
        for finish, bucket in core._completions.items():
            branches = [s for s in bucket
                        if dec.kind[w.pc[s & mask]] == 1]
            if len(branches) == 2:
                older, younger = sorted(branches)
                return finish, older, younger
        core.cycle()
    raise AssertionError("branches never shared a completion bucket")


def _force_mispredict(core, seq):
    """Flip the branch's already-computed outcome so writeback sees a
    mispredict (outcomes live in the atk/atg columns since issue)."""
    w, dec = core.w, core._dec
    slot = seq & w.mask
    pc = w.pc[slot]
    taken = not w.ptk[slot]
    w.atk[slot] = taken
    w.atg[slot] = dec.target[pc] if taken else pc + 1
    return w.atg[slot]


@pytest.mark.parametrize("scheduler", ["event", "scan"])
def test_older_squash_suppresses_younger_same_cycle_resolution(scheduler):
    core = build_core(_two_branch_program(),
                      SimConfig.baseline(predictor="static",
                                         scheduler=scheduler))
    finish, older, younger = _run_until_shared_bucket(core)
    bucket = core._completions[finish]
    w, mask = core.w, core.w.mask
    o_slot, y_slot = older & mask, younger & mask

    # Force the interleave the bug needed: the younger branch ahead of
    # the older one in the bucket, and both mispredicted.
    bucket.sort(reverse=True)
    assert bucket.index(younger) < bucket.index(older)
    older_target = _force_mispredict(core, older)
    _force_mispredict(core, younger)

    branches_before = core.stats.branches
    recoveries_before = core.stats.recoveries
    while core.now < finish:
        core.cycle()
    assert not w.st[o_slot] & 4 and not w.st[y_slot] & 4
    core.cycle()                      # the shared writeback cycle

    # Exactly one branch resolved: the older one.  The younger was
    # squashed by the older's recovery before it could train the
    # predictor, repair history or fire a second recovery.
    assert w.st[o_slot] & 8           # older mispredicted
    assert w.st[y_slot] & 4           # younger squashed
    assert not w.st[y_slot] & 2       # ... and never completed
    assert core.stats.branches == branches_before + 1
    assert core.stats.recoveries == recoveries_before + 1
    assert core.stats.branch_mispredictions == 1

    # Recovery state belongs to the *older* branch: fetch restarts at
    # its resolved target and the RAT snapshot restored is its tag.
    assert core.fetch.pc == older_target
    assert core.rat == w.tag[o_slot]

    # No double-free: every free physical register appears exactly once
    # across the free lists, and no live mapping is marked free.
    free = core.int_free + core.fp_free
    assert len(free) == len(set(free))
    assert not (set(core.rat) & set(free))


@pytest.mark.parametrize("scheduler", ["event", "scan"])
def test_bucket_is_resolved_in_seq_order_even_when_appended_reversed(
        scheduler):
    """Even a correctly predicted younger branch must not be completed
    before an older same-cycle branch (age-ordered writeback is the
    invariant; MSP's write-port arbitration also keys off it)."""
    core = build_core(_two_branch_program(),
                      SimConfig.baseline(predictor="static",
                                         scheduler=scheduler))
    finish, older, younger = _run_until_shared_bucket(core)
    core._completions[finish].sort(reverse=True)
    w, mask = core.w, core.w.mask
    o_slot, y_slot = older & mask, younger & mask
    # Only the older branch mispredicts.
    _force_mispredict(core, older)
    while core.now <= finish:
        core.cycle()
    assert w.st[o_slot] & 8           # older mispredicted
    assert w.st[y_slot] & 4           # younger: wrong path, squashed
    assert not w.st[y_slot] & 2       # ... and never completed
