"""Scheduler equivalence: the event-driven issue/wakeup scheduler must
be bit-identical to the retained scan-loop reference oracle.

The event scheduler (``SimConfig.scheduler == "event"``, the default)
replaces the per-cycle heap pop/re-push loop with a sorted ready window,
purges waiter lists and completion events on squash, runs a fused loop
for the baseline machine and skips provably idle cycles in bulk.  None
of that may perturb a single counter: every cell of the quick SPECint
grid x {baseline, cpr, msp16}, full detail and sampled, must produce a
``SimStats`` equal field-for-field to the scan scheduler's.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SimConfig
from repro.sim.runner import build_core, simulate
from repro.workloads import get_program

#: The quick SPECint grid (``REPRO_BENCHSET=quick`` — SPECINT[::3]).
QUICK_GRID = ["gzip", "mcf", "eon", "vortex"]

MACHINES = {
    "baseline": lambda **kw: SimConfig.baseline(**kw),
    "cpr": lambda **kw: SimConfig.cpr(**kw),
    "msp16": lambda **kw: SimConfig.msp(16, **kw),
}


def _diff(a: dict, b: dict) -> dict:
    return {key: (a[key], b[key]) for key in a if a[key] != b[key]}


@pytest.mark.parametrize("workload", QUICK_GRID)
@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_full_detail_bit_identical(workload, machine):
    program = get_program(workload)
    make = MACHINES[machine]
    scan = simulate(program, make(scheduler="scan"),
                    max_instructions=2000).to_dict()
    event = simulate(program, make(scheduler="event"),
                     max_instructions=2000).to_dict()
    assert scan == event, _diff(scan, event)


@pytest.mark.parametrize("workload", QUICK_GRID)
@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_sampled_bit_identical(workload, machine):
    program = get_program(workload)
    make = MACHINES[machine]
    # artifacts=False: the checkpoint store keys traces workload-side,
    # so the second run would replay the first's checkpoints and the
    # provenance counters (not the represented statistics) would
    # differ. This test compares schedulers, so both runs must execute.
    scan = simulate(program, make(scheduler="scan"),
                    max_instructions=20_000, sampling=True,
                    artifacts=False).to_dict()
    event = simulate(program, make(scheduler="event"),
                     max_instructions=20_000, sampling=True,
                     artifacts=False).to_dict()
    assert scan == event, _diff(scan, event)


def test_tage_baseline_bit_identical():
    """The throughput-bench cell (gzip, TAGE, baseline) exercises the
    fused loop + the TAGE fast paths together."""
    program = get_program("gzip")
    scan = simulate(program, SimConfig.baseline(predictor="tage",
                                                scheduler="scan"),
                    max_instructions=5000).to_dict()
    event = simulate(program, SimConfig.baseline(predictor="tage",
                                                 scheduler="event"),
                     max_instructions=5000).to_dict()
    assert scan == event, _diff(scan, event)


def test_exception_injection_bit_identical():
    """Exception recovery (which the fused baseline loop punts to the
    generic event path) must match the oracle too."""
    for machine in sorted(MACHINES):
        make = MACHINES[machine]
        kwargs = {"exception_ordinals": frozenset([57, 400])}
        scan = simulate(get_program("gzip"),
                        make(scheduler="scan", **kwargs),
                        max_instructions=1500).to_dict()
        event = simulate(get_program("gzip"),
                         make(scheduler="event", **kwargs),
                         max_instructions=1500).to_dict()
        assert scan == event, (machine, _diff(scan, event))


def test_idle_skip_engages_and_stays_exact():
    """On a memory-latency-bound run the event scheduler must actually
    elide idle cycles — and still count them all."""
    config = SimConfig.baseline(warm_caches=False, memory_latency=700)
    core = build_core(get_program("mcf"), config)
    stats = core.run(max_instructions=2000)
    assert core.skipped_cycles > 0
    reference = simulate(get_program("mcf"),
                         config.with_(scheduler="scan"),
                         max_instructions=2000)
    assert stats.to_dict() == reference.to_dict()
    assert stats.cycles == reference.cycles


def test_skip_respects_cycle_cap():
    """Bulk-skipped cycles may never overshoot an explicit cycle cap."""
    config = SimConfig.baseline(warm_caches=False, memory_latency=900)
    for cap in (50, 173, 800):
        event = simulate(get_program("mcf"), config,
                         max_instructions=2000, max_cycles=cap)
        scan = simulate(get_program("mcf"), config.with_(scheduler="scan"),
                        max_instructions=2000, max_cycles=cap)
        assert event.cycles <= cap
        assert event.to_dict() == scan.to_dict()


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="scheduler"):
        build_core(get_program("gzip"),
                   SimConfig.baseline(scheduler="turbo"))


def test_squash_purges_waiter_and_completion_maps():
    """After a run with plenty of recoveries the event scheduler's
    wakeup map and completion wheel must hold no squashed zombies."""
    core = build_core(get_program("gzip"), SimConfig.baseline())
    core.run(max_instructions=3000)
    w, mask = core.w, core.w.mask
    for waiters in core._waiting.values():
        assert all(w.sq[s & mask] == s and not w.st[s & mask] & 4
                   for s in waiters)
    for bucket in core._completions.values():
        assert all(w.sq[s & mask] == s and not w.st[s & mask] & 4
                   for s in bucket)


def test_direct_operand_tables_alias_register_file():
    """The event scheduler's direct operand tables must be the live
    register-file lists, not copies (they are read on every wakeup)."""
    for machine, expect_read_direct in (("baseline", True), ("cpr", False)):
        core = build_core(get_program("gzip"),
                          MACHINES[machine](scheduler="event"))
        assert core._ready_table is core.phys_ready
        assert core._value_table is core.phys_value
        assert core._read_direct is expect_read_direct
        scan_core = build_core(get_program("gzip"),
                               MACHINES[machine](scheduler="scan"))
        assert scan_core._ready_table is None
        assert scan_core._value_table is None
