"""Pipeline component tests: FU pool, load buffer, fetch engine, stats."""

import pytest

from repro.branch import GsharePredictor
from repro.isa import FUType, Op, ProgramBuilder, int_reg
from repro.memory import MemoryHierarchy
from repro.pipeline import FetchEngine, FunctionalUnitPool, LoadBuffer, SimStats


def test_fu_pool_per_class_limits():
    pool = FunctionalUnitPool(int_units=2, fp_units=1, ldst_units=1,
                              issue_width=5)
    pool.new_cycle()
    assert pool.can_issue(FUType.INT)
    pool.issue(FUType.INT)
    pool.issue(FUType.INT)
    assert not pool.can_issue(FUType.INT)
    assert pool.can_issue(FUType.FP)


def test_fu_pool_global_issue_width():
    pool = FunctionalUnitPool(int_units=4, fp_units=4, ldst_units=2,
                              issue_width=3)
    pool.new_cycle()
    for _ in range(3):
        pool.issue(FUType.INT)
    assert pool.slots_left == 0
    assert not pool.can_issue(FUType.FP)
    pool.new_cycle()
    assert pool.can_issue(FUType.FP)


def test_load_buffer_bounds():
    buffer = LoadBuffer(capacity=2)
    buffer.allocate()
    buffer.allocate()
    assert buffer.is_full()
    with pytest.raises(RuntimeError):
        buffer.allocate()
    buffer.release()
    assert not buffer.is_full()
    buffer.release()
    with pytest.raises(RuntimeError):
        buffer.release()


def _fetch_engine(program, width=3):
    hierarchy = MemoryHierarchy()
    hierarchy.warm(range(len(program)), [])
    return FetchEngine(program, hierarchy, GsharePredictor(), width=width)


def test_fetch_stops_group_at_taken_control():
    b = ProgramBuilder("jmي")
    b.li(int_reg(1), 1)
    b.jmp("target")
    b.li(int_reg(2), 2)     # not fetched in the first group
    b.label("target")
    b.li(int_reg(3), 3)
    program = b.build()

    fetch = _fetch_engine(program)
    fetch.cycle(0)
    w = fetch.window
    pcs = [w.pc[s & w.mask] for s in fetch.buffer]
    assert pcs == [0, 1]
    assert fetch.pc == program.labels["target"]


def test_fetch_width_limits_group():
    b = ProgramBuilder("straight")
    for k in range(8):
        b.li(int_reg(k + 1), k)
    b.jmp(0)
    fetch = _fetch_engine(b.build(), width=3)
    fetch.cycle(0)
    assert len(fetch.buffer) == 3


def test_fetch_halts_at_halt_until_redirect():
    b = ProgramBuilder("halty")
    b.halt()
    fetch = _fetch_engine(b.build())
    fetch.cycle(0)
    assert fetch.halted
    w = fetch.window
    halt_pc = w.pc[fetch.buffer[0] & w.mask]
    assert fetch.program.instructions[halt_pc].op is Op.HALT
    fetch.redirect(0, 0)
    assert not fetch.halted
    assert not fetch.buffer          # redirect discards the buffer


def test_fetch_records_ghr_snapshot():
    b = ProgramBuilder("snap")
    b.li(int_reg(1), 0)
    b.bnez(int_reg(1), "skip")
    b.label("skip")
    b.jmp(0)
    fetch = _fetch_engine(b.build())
    fetch.cycle(0)
    w = fetch.window
    assert all(w.ghr[s & w.mask] is not None for s in fetch.buffer)


def test_fetch_squash_after_drops_young():
    b = ProgramBuilder("sq")
    for k in range(6):
        b.li(int_reg(k + 1), k)
    b.jmp(0)
    fetch = _fetch_engine(b.build(), width=3)
    fetch.cycle(0)
    boundary = fetch.buffer[0]
    fetch.squash_after(boundary)
    assert fetch.buffer == [boundary]


def test_stats_summary_and_breakdown():
    stats = SimStats()
    stats.cycles = 100
    stats.committed = 150
    stats.wrong_path_executed = 30
    stats.correct_path_reexecuted = 20
    stats.branches = 40
    stats.branch_mispredictions = 4
    assert stats.ipc == 1.5
    assert stats.total_executed == 200
    assert stats.misprediction_rate == 0.1
    summary = stats.summary()
    assert summary["ipc"] == 1.5
    assert summary["total_executed"] == 200


def test_stats_bank_stall_ranking():
    stats = SimStats()
    stats.bank_stall_cycles.update({3: 10, 7: 50, 1: 5})
    assert stats.top_bank_stalls(2) == [(7, 50), (3, 10)]
