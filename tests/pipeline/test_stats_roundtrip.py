"""SimStats to_dict/from_dict round-trip (campaign transport format)."""

import json
from collections import Counter

from repro.pipeline.stats import SimStats
from repro.sim import SimConfig, simulate


def _populated_stats() -> SimStats:
    stats = SimStats()
    stats.cycles = 1234
    stats.committed = 987
    stats.fetched = 2000
    stats.dispatched = 1500
    stats.issued = 1400
    stats.wrong_path_executed = 55
    stats.correct_path_reexecuted = 21
    stats.branches = 300
    stats.branch_mispredictions = 17
    stats.recoveries = 17
    stats.exceptions_taken = 2
    stats.squashed = 80
    stats.checkpoints_created = 9
    stats.dispatch_stall_cycles = Counter(
        {"iq_full": 40, "bank_full": 12, "sq_full": 3})
    stats.bank_stall_cycles = Counter({1: 10, 7: 4, 30: 1})
    return stats


def test_roundtrip_preserves_every_counter():
    stats = _populated_stats()
    clone = SimStats.from_dict(stats.to_dict())
    assert vars(clone) == vars(stats)
    assert clone.ipc == stats.ipc
    assert clone.total_executed == stats.total_executed


def test_roundtrip_survives_json():
    """The store persists JSON, so key types must survive the trip:
    int keys for bank_stall_cycles, str keys for dispatch causes."""
    stats = _populated_stats()
    clone = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert clone.bank_stall_cycles == stats.bank_stall_cycles
    assert all(isinstance(k, int) for k in clone.bank_stall_cycles)
    assert clone.dispatch_stall_cycles == stats.dispatch_stall_cycles
    assert all(isinstance(k, str) for k in clone.dispatch_stall_cycles)
    assert clone.top_bank_stalls(2) == stats.top_bank_stalls(2)


def test_roundtrip_of_real_simulation():
    stats = simulate("crafty", SimConfig.msp(8), max_instructions=300)
    clone = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert vars(clone) == vars(stats)


def test_empty_stats_roundtrip():
    clone = SimStats.from_dict(SimStats().to_dict())
    assert clone.cycles == 0 and clone.ipc == 0.0
    assert clone.bank_stall_cycles == Counter()
