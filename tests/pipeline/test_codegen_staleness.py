"""Codegen staleness guard.

The per-static-instruction exec closures inline the semantics tables'
stock templates, so the compile cache must be keyed by a fingerprint of
the *live* tables: monkeypatching an eval fn has to (a) change the
fingerprint, (b) force a fresh compilation instead of replaying the
stale inlined build, and (c) make the regenerated source call out to
the replaced fn exactly like the generic ladder would.
"""

from __future__ import annotations

import pytest

from repro.isa.opcodes import Op
from repro.isa.program import ProgramBuilder
from repro.isa.semantics import EVAL_FNS
from repro.pipeline import codegen
from repro.sim import SimConfig, build_core


def _add_program():
    builder = ProgramBuilder("staleness")
    builder.li(1, 5)
    builder.li(2, 9)
    builder.add(3, 1, 2)
    builder.halt()
    return builder.build()


@pytest.fixture
def patched_add(monkeypatch):
    """Replace ADD's semantics with a distinguishable fn (via the table,
    exactly how an experiment would monkeypatch it)."""
    monkeypatch.setitem(EVAL_FNS, Op.ADD, lambda s, imm: 777)
    yield


def test_fingerprint_tracks_table_mutation(monkeypatch):
    stock = codegen.semantics_fingerprint()
    assert stock == codegen.semantics_fingerprint()  # deterministic
    with monkeypatch.context() as patch:
        patch.setitem(EVAL_FNS, Op.ADD, lambda s, imm: 777)
        assert codegen.semantics_fingerprint() != stock
    # Restoring the original restores the fingerprint (cache reusable).
    assert codegen.semantics_fingerprint() == stock


def test_stock_semantics_inline_the_template():
    program = _add_program()
    core = build_core(program, SimConfig.baseline())
    core._maybe_build_codegen()
    ((_flavor, fp),) = program.decoded._codegen_cache
    assert fp == codegen.semantics_fingerprint()
    build = program.decoded._codegen_cache[(_flavor, fp)]
    # Unmodified tables compile to the inlined expression, with no
    # out-of-line semantics call.
    assert "_ef" not in build.__codegen_source__


def test_mutation_invalidates_compiled_build(monkeypatch):
    with monkeypatch.context() as patch:
        patch.setitem(EVAL_FNS, Op.ADD, lambda s, imm: 777)
        # Program constructed *after* the patch: decode snapshots the
        # table entries (Instruction.eval_fn) and both the generic
        # ladder and codegen read that snapshot, staying in lockstep.
        program = _add_program()
        dec = program.decoded
        core = build_core(program, SimConfig.baseline())
        core._maybe_build_codegen()
        assert core._exec_fns is not None
        (patched_key,) = dec._codegen_cache
        patched_build = dec._codegen_cache[patched_key]
        # The replaced entry compiles to an out-of-line call, not the
        # stale inlined `v0 + v1` template.
        assert "_ef" in patched_build.__codegen_source__
        # Same flavor, same live tables: the compilation is reused.
        assert codegen._compiled_build(dec, "direct") is patched_build
    # Tables restored: the fingerprint moves, so the same decoded
    # program recompiles instead of replaying the stale build.
    fresh_build = codegen._compiled_build(dec, "direct")
    assert fresh_build is not patched_build
    assert len(dec._codegen_cache) == 2


def test_patched_semantics_agree_with_generic_ladder(patched_add):
    program = _add_program()
    on = build_core(program, SimConfig.baseline().with_(
        record_commits=True))
    off = build_core(program, SimConfig.baseline().with_(
        record_commits=True, codegen=False))
    stats_on = on.run(max_instructions=100).to_dict()
    stats_off = off.run(max_instructions=100).to_dict()
    assert off._exec_fns is None           # toggle honored
    assert stats_on == stats_off
    # Both executed the *patched* semantics, not the stale template.
    dest = on.arch_rat[3]
    assert on.phys_value[dest] == 777
    dest_off = off.arch_rat[3]
    assert off.phys_value[dest_off] == 777
