"""The stitched 95% CI: weighted sample variance with the correct
effective sample size, Student-t quantile for small window counts, and
the bit-identical pin on the periodic (equal-weight) stitch path."""

import math

import pytest

from repro.pipeline.stats import SimStats
from repro.sim.sampling import (
    IntervalResult,
    sampling_error,
    stitch,
    student_t_critical,
)


def _window(committed, cycles, represents, branches=0):
    stats = SimStats()
    stats.committed = committed
    stats.cycles = cycles
    stats.branches = branches
    return IntervalResult(0, represents, stats)


# --------------------------------------------------------------------- #
# Student-t critical values (pure-stdlib incomplete-beta inversion).
# --------------------------------------------------------------------- #

def test_student_t_critical_matches_tables():
    assert student_t_critical(1) == pytest.approx(12.7062, rel=1e-4)
    assert student_t_critical(2) == pytest.approx(4.3027, rel=1e-4)
    assert student_t_critical(3) == pytest.approx(3.1824, rel=1e-4)
    assert student_t_critical(29) == pytest.approx(2.0452, rel=1e-4)
    assert student_t_critical(100) == pytest.approx(1.9840, rel=1e-4)
    # Converges to the normal quantile for large df.
    assert student_t_critical(1e6) == pytest.approx(1.95996, rel=1e-4)
    assert student_t_critical(0) == float("inf")
    # Fractional df (the weighted effective-n case) interpolates
    # monotonically.
    assert (student_t_critical(3)
            > student_t_critical(3.5)
            > student_t_critical(4))


# --------------------------------------------------------------------- #
# Equal weights: reduces to the classic unweighted t-based stderr.
# --------------------------------------------------------------------- #

def test_equal_weights_reduce_to_classic_formula():
    windows = [_window(100, c, 1000) for c in (150, 210, 180, 240)]
    cpis = [1.5, 2.1, 1.8, 2.4]
    n = len(cpis)
    mean = sum(cpis) / n
    variance = sum((c - mean) ** 2 for c in cpis) / (n - 1)
    stderr = math.sqrt(variance / n)
    expected = student_t_critical(n - 1) * stderr / mean
    assert sampling_error(windows) == pytest.approx(expected,
                                                    rel=1e-12)


def test_periodic_stitch_pinned_bit_identical():
    """Frozen expectation for an equal-weight (periodic) stitch —
    every counter must stay bit-identical across stitch/CI changes
    (the simpoint PR's CI fix must not move the periodic path)."""
    windows = [_window(100, 150, 1000, branches=7),
               _window(100, 210, 1000, branches=11),
               _window(100, 180, 1000, branches=9),
               _window(100, 240, 1000, branches=13)]
    out = stitch(windows, ff_instructions=4321).to_dict()
    assert out == {
        "cycles": 7800, "committed": 4000, "fetched": 0,
        "dispatched": 0, "issued": 0, "wrong_path_executed": 0,
        "correct_path_reexecuted": 0, "branches": 400,
        "branch_mispredictions": 0, "recoveries": 0,
        "exceptions_taken": 0, "squashed": 0,
        "checkpoints_created": 0, "dispatch_stall_cycles": [],
        "bank_stall_cycles": [], "sampled": True,
        "sample_intervals": 4, "detail_instructions": 400,
        "ff_instructions": 4321,
        "sampling_error": 0.3160400395016185,
        "checkpoint_hits": 0, "ff_executed_instructions": 0,
        "ff_skipped_instructions": 0,
    }


# --------------------------------------------------------------------- #
# Unequal weights: weighted sample variance with effective n.
# --------------------------------------------------------------------- #

def test_unequal_weights_hand_computed():
    # Weights 0.75 / 0.25, CPIs 1.0 / 3.0.
    windows = [_window(100, 100, 300), _window(100, 300, 100)]
    mean = 0.75 * 1.0 + 0.25 * 3.0                       # 1.5
    n_eff = 1.0 / (0.75 ** 2 + 0.25 ** 2)                # 1.6
    variance = ((0.75 * (1.0 - mean) ** 2
                 + 0.25 * (3.0 - mean) ** 2)
                * n_eff / (n_eff - 1.0))                 # 2.0
    stderr = math.sqrt(variance / n_eff)
    expected = student_t_critical(n_eff - 1.0) * stderr / mean
    assert sampling_error(windows) == pytest.approx(expected,
                                                    rel=1e-12)


def test_small_effective_n_widens_interval():
    """Identical CPI spread, increasingly lopsided weights: the
    effective sample size shrinks toward 1 and the interval must widen
    monotonically (both via the variance correction and the t
    quantile) — the simpoint regime of one giant cluster plus
    singletons."""
    errors = []
    for heavy in (100, 300, 900):
        errors.append(sampling_error([_window(100, 100, heavy),
                                      _window(100, 300, 100)]))
    assert errors[0] < errors[1] < errors[2]


def test_zero_weight_windows_do_not_count():
    """A window with no represented span contributes nothing to the
    stitched mean, so it must not tighten (or widen) the CI either —
    in particular it must not count toward the >= 2 live windows."""
    base = [_window(100, 100, 100), _window(100, 300, 100)]
    with_dead = base + [_window(100, 999, 0)]
    assert sampling_error(with_dead) == sampling_error(base)
    assert sampling_error([_window(100, 100, 100),
                           _window(100, 300, 0)]) == 0.0
