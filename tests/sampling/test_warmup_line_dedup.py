"""WarmupEngine fetch-probe dedup geometry.

The warm-up engine collapses consecutive same-line fetch probes.  Its
line grouping must mirror ``Cache._locate``'s shift-based mapping
exactly — including for line sizes whose word count is not a power of
two, where the cache itself rounds the effective line size down to a
power of two — or the deduped probe stream would skip probes that the
per-instruction stream performs, silently diverging the warmed cache
contents.
"""

import pytest

from repro.memory.cache import MemoryHierarchy
from repro.sim import SimConfig
from repro.sim.sampling import WarmupEngine


def _config(line_bytes):
    # Sizes chosen so every line size keeps sets a power of two
    # (Cache requires size % (assoc * line) == 0 and pow2 sets).
    return SimConfig.baseline().with_(
        line_bytes=line_bytes,
        icache_size=4 * line_bytes * 512,
        dcache_size=4 * line_bytes * 512,
        l2_size=8 * line_bytes * 512,
        warm_caches=False)


@pytest.mark.parametrize("line_bytes", [8, 16, 32, 64, 128,
                                        24, 48, 40])
def test_line_shift_mirrors_cache_geometry(line_bytes):
    config = _config(line_bytes)
    warm = WarmupEngine(config)
    cache_shift = warm.hierarchy.icache._line_shift
    # Cache maps word addresses via (word * 8) >> cache_shift; the
    # engine dedups on word >> _line_shift.  The two groupings agree
    # iff the shifts differ by exactly log2(8).
    assert warm._line_shift == max(0, cache_shift - 3)


@pytest.mark.parametrize("line_bytes", [64, 48, 24])
def test_deduped_probe_stream_leaves_identical_cache_state(line_bytes):
    config = _config(line_bytes)
    deduped = WarmupEngine(config)
    dense = MemoryHierarchy.from_config(config)

    # A fetch stream with loops, line-straddling runs and far jumps.
    pcs = []
    for base in (0, 7, 1000, 3, 2048, 11):
        pcs.extend(range(base, base + 23))
    pcs = pcs * 3

    last_line = -1
    for pc in pcs:
        line = pc >> deduped._line_shift
        if line != last_line:
            last_line = line
            deduped.hierarchy.instruction_latency(pc)
        dense.instruction_latency(pc)

    for probe_cache, dense_cache in (
            (deduped.hierarchy.icache, dense.icache),
            (deduped.hierarchy.l2, dense.l2)):
        # Identical contents in identical LRU order, and identical
        # miss counts: a skipped probe is always a same-line re-touch,
        # which is a pure hit.
        assert [list(s.items()) for s in probe_cache._sets] \
            == [list(s.items()) for s in dense_cache._sets]
        assert probe_cache.misses == dense_cache.misses


def test_sub_word_lines_rejected():
    with pytest.raises(ValueError):
        WarmupEngine(_config(4))
