"""SimPoint phase clustering: the fused BBV profiler against the
run()-observer oracle, deterministic planning across processes,
simpoint schedule semantics, accuracy, and cache identity."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.isa.emulator import Emulator
from repro.sim import SimConfig, simulate
from repro.sim.campaign import Job, run_jobs
from repro.sim.sampling import SamplingParams
from repro.sim.sampling.simpoint import (
    BBVCollector,
    kmedoids,
    plan_simpoints,
    profile_intervals,
    project_intervals,
)
from repro.workloads import SPECINT, get_program

#: The quick-mode SPECint set (REPRO_BENCHSET=quick trims full[::3]).
QUICK = SPECINT[::3]


# --------------------------------------------------------------------- #
# Oracle: fused run_fast profiling == plain run() observer profiling.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("workload", QUICK)
def test_bbv_fused_matches_observer_oracle(workload):
    """The block counts the fused run_fast profiler collects must match
    the readable per-retire observer discipline instruction for
    instruction — same interval boundaries, same entry PCs, same
    per-block instruction counts."""
    program = get_program(workload)
    fused = Emulator(program)
    fused_bbv = BBVCollector(1500)
    fused.run_fast(20_000, bbv=fused_bbv)

    oracle = Emulator(program)
    oracle_bbv = BBVCollector(1500)
    oracle.observer = oracle_bbv
    oracle.run(max_instructions=20_000)

    assert fused_bbv.finish() == oracle_bbv.finish()
    # Profiling must not perturb architectural execution either.
    assert fused.pc == oracle.pc
    assert fused.regs == oracle.regs
    assert fused.retired_total == oracle.retired_total


def test_bbv_state_carries_across_run_fast_calls():
    """Open blocks and partial intervals survive chunked execution
    exactly (the engine fast-forwards in gap/segment pieces)."""
    program = get_program("gzip")
    chunks = [1, 7, 493, 2500, 6000, 999, 3000]
    chunked = Emulator(program)
    chunked_bbv = BBVCollector(1000)
    for chunk in chunks:
        chunked.run_fast(chunk, bbv=chunked_bbv)
    whole = Emulator(program)
    whole_bbv = BBVCollector(1000)
    whole.run_fast(sum(chunks), bbv=whole_bbv)
    assert chunked_bbv.finish() == whole_bbv.finish()


def test_bbv_counts_cover_every_instruction():
    program = get_program("mcf")
    emulator = Emulator(program)
    bbv = BBVCollector(2000)
    result = emulator.run_fast(9000, bbv=bbv)
    intervals = bbv.finish()
    assert sum(sum(d.values()) for d in intervals) == result.retired


def test_run_fast_rejects_warmup_plus_bbv():
    from repro.sim.sampling import WarmupEngine
    program = get_program("gzip")
    warm = WarmupEngine(SimConfig.baseline(), program)
    with pytest.raises(ValueError):
        Emulator(program).run_fast(100, warmup=warm,
                                   bbv=BBVCollector(50))


# --------------------------------------------------------------------- #
# Clustering determinism.
# --------------------------------------------------------------------- #

def test_plan_independent_of_dict_insertion_order():
    intervals, _ = profile_intervals(get_program("gzip"), 50_000, 5_000)
    shuffled = [dict(reversed(list(counts.items())))
                for counts in intervals]
    assert plan_simpoints(intervals, 3, 16) == \
        plan_simpoints(shuffled, 3, 16)


def test_projection_is_seed_stable():
    intervals = [{0: 10, 7: 5}, {0: 3, 12: 12}]
    assert project_intervals(intervals, 8) == \
        project_intervals(intervals, 8)
    assert project_intervals(intervals, 8, seed=1) != \
        project_intervals(intervals, 8, seed=2)


def test_kmedoids_basic_properties():
    points = [[0.0], [0.1], [0.2], [5.0], [5.1], [9.0]]
    medoids, assignment = kmedoids(points, 3)
    assert medoids == sorted(medoids)
    assert len(assignment) == len(points)
    # The three obvious groups separate.
    assert assignment[0] == assignment[1] == assignment[2]
    assert assignment[3] == assignment[4]
    assert assignment[5] not in (assignment[0], assignment[3])
    # k capped at the point count; empty input well-defined.
    assert len(kmedoids(points, 100)[0]) == len(points)
    assert kmedoids([], 4) == ([], [])


_DETERMINISM_SCRIPT = """\
import json
from repro.sim import SimConfig
from repro.sim.sampling import SamplingParams, plan_simpoints, \\
    profile_intervals
intervals, profiled = profile_intervals(
    __import__("repro.workloads", fromlist=["get_program"])
    .get_program("gzip"), 60_000, 6_000)
plan = plan_simpoints(intervals, 4, 32)
config = SamplingParams(mode="simpoint", clusters=4,
                        bbv_dim=32).apply(SimConfig.msp(16))
print(json.dumps({"medoids": plan.medoids,
                  "weights": sorted(plan.representatives.items()),
                  "assignment": plan.assignment,
                  "profiled": profiled,
                  "cache_key": config.cache_key()}))
"""


def test_plan_and_cache_key_deterministic_across_processes():
    """Identical SimConfig => identical medoids, weights and cache_key
    in fresh interpreters, under different hash seeds (no dict-order
    or PYTHONHASHSEED dependence anywhere in the pipeline)."""
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    outputs = []
    for hash_seed in ("0", "424242"):
        env = dict(os.environ,
                   PYTHONPATH=src + os.pathsep
                   + os.environ.get("PYTHONPATH", ""),
                   PYTHONHASHSEED=hash_seed)
        proc = subprocess.run([sys.executable, "-c",
                               _DETERMINISM_SCRIPT],
                              capture_output=True, text=True, env=env,
                              timeout=120)
        assert proc.returncode == 0, proc.stderr
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
    assert outputs[0]["medoids"], "plan must not be empty"


# --------------------------------------------------------------------- #
# Engine semantics.
# --------------------------------------------------------------------- #

def test_simpoint_run_reports_sampling_fields():
    budget = 100_000
    config = SimConfig.baseline(predictor="tage")
    stats = simulate("gzip", config, max_instructions=budget,
                     sampling="simpoint")
    assert stats.sampled
    # One measured window per cluster, at most the default clusters.
    assert 1 <= stats.sample_intervals <= SamplingParams().clusters
    assert stats.committed == budget
    # ff accounting includes the profiling pass (a second functional
    # sweep of the budget).
    assert stats.ff_instructions > budget

    periodic = simulate("gzip", config, max_instructions=budget,
                        sampling=True)
    assert stats.detail_instructions * 2 <= \
        periodic.detail_instructions
    assert stats.ipc == pytest.approx(periodic.ipc, rel=0.10)


def test_simpoint_degenerates_to_periodic_with_enough_clusters():
    """With clusters >= interval count every interval is its own
    cluster, so simpoint measures one window per interval exactly like
    periodic sampling — same window count and detail cost, and the
    same statistics up to the block-boundary overshoot of the profiled
    interval ends (the walk advances by the *profiled* interval
    lengths so windows sit inside the intervals the weights describe;
    periodic advances in exact period strides, so positions differ by
    a bounded few instructions per interval)."""
    budget = 40_000
    config = SimConfig.baseline(predictor="tage")
    params = SamplingParams(mode="simpoint", clusters=100)
    sp = simulate("gzip", config, max_instructions=budget,
                  sampling=params)
    per = simulate("gzip", config, max_instructions=budget,
                   sampling=True)
    assert sp.sample_intervals == per.sample_intervals
    assert sp.detail_instructions == per.detail_instructions
    assert sp.committed == pytest.approx(per.committed, rel=1e-3)
    assert sp.ipc == pytest.approx(per.ipc, rel=0.01)
    assert sp.cycles == pytest.approx(per.cycles, rel=0.01)


def test_simpoint_windows_sit_inside_profiled_intervals():
    """The measurement walk advances by the profiled interval lengths,
    not exact period strides: block-boundary overshoots must not
    accumulate into drift between where a window is measured and the
    interval whose cluster weight it carries (code-review finding on
    the first cut of this engine)."""
    import repro.sim.sampling.engine as eng
    from repro.sim.sampling.simpoint import plan_simpoints, \
        profile_intervals
    program = get_program("gzip")
    budget, period = 60_000, 2_000
    intervals, _ = profile_intervals(program, budget, period)
    lengths = [sum(c.values()) for c in intervals]
    starts = [sum(lengths[:i]) for i in range(len(lengths))]

    captured = {}
    original = eng.stitch

    def capture(windows, ff_instructions=0):
        captured["windows"] = list(windows)
        return original(windows, ff_instructions=ff_instructions)

    eng.stitch = capture
    try:
        params = SamplingParams(mode="simpoint", clusters=3,
                                period=period, interval=300,
                                detail_warmup=100)
        stats = simulate(program,
                         SimConfig.baseline(predictor="tage"),
                         max_instructions=budget, sampling=params)
    finally:
        eng.stitch = original
    assert stats.sampled and captured["windows"]
    plan = plan_simpoints(intervals, 3, 32)
    for window in captured["windows"]:
        # Each window starts exactly at its profiled interval's
        # detailed segment (interval end minus the segment), for some
        # representative interval of the plan.
        owners = [i for i in plan.representatives
                  if starts[i] <= window.start < starts[i] + lengths[i]]
        assert owners, (window.start, starts)
        owner = owners[0]
        assert window.start == starts[owner] + lengths[owner] - 400


def test_simpoint_tracks_full_detail_ipc():
    """Budget-scaled-down version of the quick-grid acceptance: the
    clustered estimate stays close to full detail while cutting
    detailed work >= 2x below periodic sampling (see EXPERIMENTS.md
    for the full calibration)."""
    budget = 100_000
    config = SimConfig.baseline(predictor="tage")
    full = simulate("gzip", config, max_instructions=budget)
    sp = simulate("gzip", config, max_instructions=budget,
                  sampling="simpoint")
    assert abs(sp.ipc - full.ipc) / full.ipc < 0.06
    assert sp.detail_instructions * 4 <= budget


def test_simpoint_halting_program_measures_whole_run(halting_program):
    """A program shorter than one interval is a single profiled
    interval, so its single cluster's window measures the whole run
    (span-capped segment) rather than falling back."""
    stats = simulate(halting_program, SimConfig.baseline(),
                     max_instructions=10_000, sampling="simpoint")
    assert stats.sampled
    assert stats.sample_intervals == 1
    # Weighted by the emulator-retired span (HALT is not retired).
    assert stats.committed == 5


def test_simpoint_termination_during_ff_falls_back(halting_program):
    """When the program ends inside the initial ff skip there is
    nothing to profile or measure: fall back to one exact full-detail
    run of the budget."""
    params = SamplingParams(mode="simpoint", ff=5000)
    stats = simulate(halting_program, SimConfig.baseline(),
                     max_instructions=10_000, sampling=params)
    assert stats.sampled
    assert stats.sample_intervals == 0
    assert stats.committed == 6        # the whole program, HALT included


def test_simpoint_weighted_sampling_error_reported():
    stats = simulate("gzip", SimConfig.baseline(predictor="tage"),
                     max_instructions=100_000, sampling="simpoint")
    # Cluster weights are unequal, so the CI must be a real number
    # derived from >= 2 windows (exact value pinned by stitch tests).
    assert stats.sampling_error >= 0.0


# --------------------------------------------------------------------- #
# Identity: simpoint cells never collide with periodic or full cells.
# --------------------------------------------------------------------- #

def test_simpoint_perturbs_cache_key():
    base = SimConfig.msp(16)
    periodic = SamplingParams().apply(base)
    simpoint = SamplingParams(mode="simpoint").apply(base)
    assert simpoint.cache_key() != base.cache_key()
    assert simpoint.cache_key() != periodic.cache_key()
    other_k = SamplingParams(mode="simpoint",
                             clusters=7).apply(base)
    other_dim = SamplingParams(mode="simpoint",
                               bbv_dim=8).apply(base)
    assert len({simpoint.cache_key(), other_k.cache_key(),
                other_dim.cache_key()}) == 3
    assert Job("gzip", simpoint, 300).cache_key() != \
        Job("gzip", periodic, 300).cache_key()


def test_simpoint_params_config_roundtrip():
    params = SamplingParams(mode="simpoint", ff=123, interval=77,
                            period=999, warmup=False, detail_warmup=11,
                            clusters=9, bbv_dim=17)
    config = params.apply(SimConfig.msp(16))
    assert config.sample_mode == "simpoint"
    assert config.sample_clusters == 9
    assert config.sample_bbv_dim == 17
    assert SamplingParams.from_config(config) == params
    clone = SimConfig.from_dict(json.loads(json.dumps(
        config.to_dict())))
    assert clone == config
    assert clone.cache_key() == config.cache_key()


def test_config_from_dict_defaults_new_sample_fields():
    """Cache entries written before the simpoint fields existed must
    still load (with the defaults)."""
    data = SimConfig.baseline().to_dict()
    del data["sample_clusters"]
    del data["sample_bbv_dim"]
    config = SimConfig.from_dict(data)
    assert config.sample_clusters == SimConfig().sample_clusters
    assert config.sample_bbv_dim == SimConfig().sample_bbv_dim


# --------------------------------------------------------------------- #
# Params: env + CLI construction.
# --------------------------------------------------------------------- #

def test_simpoint_params_validation():
    with pytest.raises(ValueError):
        SamplingParams(mode="simpoint", clusters=0)
    with pytest.raises(ValueError):
        SamplingParams(mode="simpoint", bbv_dim=0)
    with pytest.raises(ValueError):
        SamplingParams(mode="simpoint", interval=100, period=50)


def test_simpoint_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE", "simpoint")
    monkeypatch.setenv("REPRO_SAMPLE_CLUSTERS", "6")
    monkeypatch.setenv("REPRO_SAMPLE_BBV_DIM", "12")
    params = SamplingParams.from_env()
    assert params.mode == "simpoint"
    assert params.clusters == 6 and params.bbv_dim == 12


def test_simpoint_from_cli(monkeypatch):
    monkeypatch.delenv("REPRO_SAMPLE", raising=False)
    params = SamplingParams.from_cli(sample="simpoint")
    assert params.mode == "simpoint"
    # The clustering knobs imply the schedule they parameterise...
    implied = SamplingParams.from_cli(clusters=3)
    assert implied.mode == "simpoint" and implied.clusters == 3
    implied_dim = SamplingParams.from_cli(bbv_dim=8)
    assert implied_dim.mode == "simpoint" and implied_dim.bbv_dim == 8
    # ...but never override an explicit or environment-chosen mode.
    periodic = SamplingParams.from_cli(sample=True, clusters=3)
    assert periodic.mode == "periodic" and periodic.clusters == 3
    monkeypatch.setenv("REPRO_SAMPLE", "periodic")
    env_wins = SamplingParams.from_cli(clusters=5)
    assert env_wins.mode == "periodic" and env_wins.clusters == 5


# --------------------------------------------------------------------- #
# Campaign integration.
# --------------------------------------------------------------------- #

def test_simpoint_jobs_cache_and_shard(tmp_path):
    config = SamplingParams(mode="simpoint", interval=300, period=1500,
                            clusters=2).apply(SimConfig.baseline())
    job = Job("gzip", config, 9000)
    first = run_jobs([job], workers=2, cache_dir=tmp_path)
    assert first.simulated == 1 and first.hits == 0
    serial = run_jobs([job], workers=1, cache_dir=tmp_path)
    assert serial.hits == 1 and serial.simulated == 0
    a, b = first.stats_for(job), serial.stats_for(job)
    assert a.sampled and a.to_dict() == b.to_dict()
