"""The checkpoint store's oracle contract: a replayed sampled run is
bit-identical to a fresh one (only the provenance counters tell them
apart), and a campaign grid pays functional execution exactly once."""

from __future__ import annotations

import pytest

from repro.sim.artifacts import ArtifactStore
from repro.sim.campaign import Job, run_jobs
from repro.sim.config import SimConfig
from repro.sim.runner import simulate
from repro.sim.sampling import SamplingParams

BUDGET = 12_000
SCHEDULE = {"ff": 500, "interval": 300, "period": 1500}

#: The three counters that record where the functional work came from;
#: everything else in SimStats must round-trip bit-for-bit.
PROVENANCE = {"checkpoint_hits", "ff_executed_instructions",
              "ff_skipped_instructions"}


def _represented(stats):
    return {key: value for key, value in stats.to_dict().items()
            if key not in PROVENANCE}


def _config(arch):
    if arch == "msp":
        return SimConfig.msp(16, predictor="tage")
    return getattr(SimConfig, arch)(predictor="tage")


@pytest.mark.parametrize("arch", ["baseline", "cpr", "msp"])
@pytest.mark.parametrize("mode", ["periodic", "offset", "simpoint"])
def test_replay_is_bit_identical(tmp_path, arch, mode):
    config = _config(arch)
    sampling = dict(SCHEDULE, mode=mode)
    store = ArtifactStore(tmp_path)

    off = simulate("gzip", config, BUDGET, sampling=sampling,
                   artifacts=False)
    cold = simulate("gzip", config, BUDGET, sampling=sampling,
                    artifacts=store)
    warm = simulate("gzip", config, BUDGET, sampling=sampling,
                    artifacts=store)

    # The represented statistics are identical across no-store (the
    # oracle), recording, and replay.
    assert _represented(cold) == _represented(off)
    assert _represented(warm) == _represented(off)

    # Provenance: the oracle and the recording run executed everything;
    # the replay executed nothing.
    assert off.checkpoint_hits == 0 and off.ff_skipped_instructions == 0
    assert off.ff_executed_instructions == off.ff_instructions
    assert cold.checkpoint_hits == 0
    assert warm.checkpoint_hits == warm.sample_intervals > 0
    assert warm.ff_executed_instructions == 0
    assert warm.ff_skipped_instructions == warm.ff_instructions > 0


def test_simpoint_profile_shared_before_trace_exists(tmp_path):
    """A cold run at a *different* interval still hits the stored BBV
    profile and plan (their keys exclude window-side knobs), skipping
    the profiling pass even though it must record its own trace."""
    config = _config("baseline")
    store = ArtifactStore(tmp_path)
    first = simulate("gzip", config, BUDGET,
                     sampling=dict(SCHEDULE, mode="simpoint"),
                     artifacts=store)
    second = simulate("gzip", config, BUDGET,
                      sampling=dict(SCHEDULE, mode="simpoint",
                                    interval=250),
                      artifacts=store)
    assert first.ff_skipped_instructions == 0
    assert second.checkpoint_hits == 0          # its own trace: a miss
    assert second.ff_skipped_instructions > 0   # but profiling: a hit
    assert (second.ff_executed_instructions
            + second.ff_skipped_instructions) == second.ff_instructions


@pytest.mark.parametrize("mode", ["periodic", "simpoint"])
def test_grid_pays_functional_execution_once(tmp_path, mode):
    """Four configs, one store, run serially: total functional work
    equals exactly one store-free run's worth."""
    sampling = dict(SCHEDULE, mode=mode)
    store = ArtifactStore(tmp_path)
    grid = [SimConfig.baseline(predictor="tage"),
            SimConfig.cpr(predictor="tage"),
            SimConfig.msp(8, predictor="tage"),
            SimConfig.msp(16, predictor="tage")]
    total = 0
    for index, config in enumerate(grid):
        stats = simulate("gzip", config, BUDGET, sampling=sampling,
                         artifacts=store)
        total += stats.ff_executed_instructions
        if index:
            assert stats.ff_executed_instructions == 0
    oracle = simulate("gzip", grid[0], BUDGET, sampling=sampling,
                      artifacts=False)
    assert total == oracle.ff_instructions


def test_campaign_workers_replay_from_shared_store(tmp_path):
    """Pool workers open the store rooted at the run's cache_dir: with
    the store pre-populated, a parallel grid executes zero functional
    instructions and still matches the store-free oracle."""
    grid = [SimConfig.baseline(predictor="tage"),
            SimConfig.cpr(predictor="tage")]
    sampling = dict(SCHEDULE, mode="periodic")
    store = ArtifactStore(tmp_path)
    for config in grid:
        simulate("gzip", config, BUDGET, sampling=sampling,
                 artifacts=store)

    params = SamplingParams.coerce(sampling)
    jobs = [Job("gzip", params.apply(config), BUDGET)
            for config in grid]
    report = run_jobs(jobs, workers=2, use_cache=False,
                      cache_dir=tmp_path)
    assert report.simulated == 2
    assert report.ff_executed == 0
    assert report.checkpoint_hits > 0
    for job in jobs:
        oracle = simulate("gzip", job.config, BUDGET,
                          artifacts=False)
        assert _represented(report.stats_for(job)) == \
            _represented(oracle)


def test_campaign_checkpoints_off_executes_everything(tmp_path):
    config = SimConfig.baseline(predictor="tage")
    stamped = SamplingParams.coerce(
        dict(SCHEDULE, mode="periodic")).apply(config)
    job = Job("gzip", stamped, BUDGET)
    report = run_jobs([job], workers=1, use_cache=False,
                      cache_dir=tmp_path, checkpoints=False)
    stats = report.stats_for(job)
    assert stats.checkpoint_hits == 0
    assert stats.ff_skipped_instructions == 0
    assert stats.ff_executed_instructions == stats.ff_instructions
    assert ArtifactStore(tmp_path).status()["blobs"] == 0
