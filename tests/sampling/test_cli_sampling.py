"""CLI coverage for the sampling flags on run/compare/experiment/
campaign run."""

from repro.cli import main


def test_run_with_sample_flag(capsys):
    assert main(["run", "gzip", "--arch", "baseline", "--sample",
                 "-n", "12000"]) == 0
    out = capsys.readouterr().out
    assert "sampled periodic" in out
    assert "sample_intervals" in out
    assert "detail_instructions" in out


def test_run_with_ff_is_offset_mode(capsys):
    assert main(["run", "gzip", "--arch", "cpr", "--ff", "3000",
                 "--interval", "800", "-n", "9000"]) == 0
    out = capsys.readouterr().out
    assert "sampled offset" in out
    assert "sample_intervals         1" in out


def test_run_with_sample_simpoint(capsys):
    assert main(["run", "gzip", "--arch", "baseline",
                 "--sample", "simpoint", "--clusters", "2",
                 "--interval", "300", "--period", "2000",
                 "-n", "16000"]) == 0
    out = capsys.readouterr().out
    assert "sampled simpoint" in out
    assert "sample_intervals" in out


def test_clusters_flag_implies_simpoint(capsys):
    assert main(["run", "gzip", "--arch", "baseline",
                 "--clusters", "2", "--interval", "300",
                 "--period", "2000", "-n", "16000"]) == 0
    out = capsys.readouterr().out
    assert "sampled simpoint" in out


def test_bad_sample_mode_rejected(capsys):
    import pytest
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "gzip", "--sample", "bogus", "-n", "2000"])
    assert excinfo.value.code == 2


def test_compare_with_sampling(capsys):
    assert main(["compare", "gzip", "--sample", "--interval", "300",
                 "--period", "1500", "-n", "6000"]) == 0
    out = capsys.readouterr().out
    for label in ("Baseline", "CPR-192", "ideal-MSP"):
        assert label in out


def test_experiment_with_sampling(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCHSET", "quick")
    assert main(["experiment", "figure6", "-n", "4000", "--sample",
                 "--interval", "300", "--period", "2000",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out and "hmean" in out


def test_bad_sampling_params_one_line_error(capsys):
    import pytest
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "gzip", "--sample", "--interval", "500",
              "--period", "100", "-n", "2000"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "bad sampling parameters" in err and "Traceback" not in err


def test_campaign_run_with_sampling(tmp_path, capsys):
    assert main(["campaign", "run", "--workloads", "gzip",
                 "--machines", "baseline,msp:16", "-n", "5000",
                 "--sample", "--interval", "300", "--period", "1000",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "16-SP+Arb" in out


def test_sampled_and_full_results_do_not_collide(tmp_path, capsys):
    """Same grid with and without --sample: the second run must not be
    served from the first run's cache entries."""
    base = ["campaign", "run", "--workloads", "gzip",
            "--machines", "baseline", "-n", "4000",
            "--cache-dir", str(tmp_path), "-v"]
    assert main(base + ["--sample", "--interval", "300",
                        "--period", "1000"]) == 0
    err_sampled = capsys.readouterr().err
    assert "simulated" not in err_sampled or "1 hit" not in err_sampled
    assert main(base) == 0
    err_full = capsys.readouterr().err
    # The full-detail run found no reusable (sampled) entry.
    assert "[1/1]" in err_full
