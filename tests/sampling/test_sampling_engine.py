"""The sampled-simulation engine: schedules, warm-up, stitching,
accuracy against full detail, and campaign-cache identity."""

import pytest

from repro.defaults import default_instructions, \
    default_sample_instructions
from repro.pipeline.stats import SimStats
from repro.sim import SimConfig, simulate
from repro.sim.campaign import Job, run_jobs
from repro.sim.sampling import (
    IntervalResult,
    SamplingParams,
    WarmupEngine,
    sampling_error,
    stitch,
)
from repro.sim.sampling.stitch import stats_delta
from repro.workloads import get_program


# --------------------------------------------------------------------- #
# SamplingParams.
# --------------------------------------------------------------------- #

def test_params_validation():
    with pytest.raises(ValueError):
        SamplingParams(mode="bogus")
    with pytest.raises(ValueError):
        SamplingParams(ff=-1)
    with pytest.raises(ValueError):
        SamplingParams(interval=0)
    with pytest.raises(ValueError):
        SamplingParams(interval=100, period=50)
    with pytest.raises(ValueError):
        SamplingParams(detail_warmup=-5)


def test_params_coerce_forms():
    assert SamplingParams.coerce(None) is None
    assert SamplingParams.coerce(False) is None
    assert SamplingParams.coerce(True) == SamplingParams()
    assert SamplingParams.coerce("offset").mode == "offset"
    assert SamplingParams.coerce({"interval": 50,
                                  "period": 100}).interval == 50
    params = SamplingParams(ff=7)
    assert SamplingParams.coerce(params) is params
    with pytest.raises(TypeError):
        SamplingParams.coerce(3.14)


def test_params_config_roundtrip():
    params = SamplingParams(mode="offset", ff=123, interval=77,
                            period=999, warmup=False, detail_warmup=11)
    config = params.apply(SimConfig.msp(16))
    assert config.sample_mode == "offset"
    assert SamplingParams.from_config(config) == params
    assert SamplingParams.from_config(SimConfig.msp(16)) is None


def test_params_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SAMPLE", raising=False)
    assert SamplingParams.from_env() is None
    monkeypatch.setenv("REPRO_SAMPLE", "1")
    monkeypatch.setenv("REPRO_SAMPLE_FF", "42")
    monkeypatch.setenv("REPRO_SAMPLE_INTERVAL", "100")
    monkeypatch.setenv("REPRO_SAMPLE_PERIOD", "400")
    params = SamplingParams.from_env()
    assert params == SamplingParams(mode="periodic", ff=42,
                                    interval=100, period=400)
    monkeypatch.setenv("REPRO_SAMPLE", "offset")
    assert SamplingParams.from_env().mode == "offset"


def test_params_from_env_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE", "flase")   # typo must not
    with pytest.raises(ValueError):               # silently enable
        SamplingParams.from_env()


def test_ff_must_leave_room_in_budget():
    params = SamplingParams(mode="offset", ff=50_000)
    with pytest.raises(ValueError):
        simulate("gzip", SimConfig.baseline(), max_instructions=10_000,
                 sampling=params)


def test_max_cycles_rejected_with_sampling():
    with pytest.raises(ValueError):
        simulate("gzip", SimConfig.baseline(), max_instructions=10_000,
                 max_cycles=500, sampling=True)


def test_params_from_cli(monkeypatch):
    monkeypatch.delenv("REPRO_SAMPLE", raising=False)
    assert SamplingParams.from_cli() is None
    assert SamplingParams.from_cli(sample=True).mode == "periodic"
    offset = SamplingParams.from_cli(ff=5000)
    assert offset.mode == "offset" and offset.ff == 5000
    both = SamplingParams.from_cli(sample=True, ff=5000, interval=200)
    assert both.mode == "periodic" and both.ff == 5000
    assert both.interval == 200
    assert SamplingParams.from_cli(period=2000).period == 2000
    # With a schedule already configured by the environment, --ff only
    # overrides the initial skip — it must not flip the mode.
    monkeypatch.setenv("REPRO_SAMPLE", "periodic")
    env_ff = SamplingParams.from_cli(ff=5000)
    assert env_ff.mode == "periodic" and env_ff.ff == 5000


def test_env_knobs_apply_when_flags_enable_sampling(monkeypatch):
    """REPRO_SAMPLE_* knobs must not be silent no-ops just because the
    on-switch came from --sample instead of REPRO_SAMPLE."""
    monkeypatch.delenv("REPRO_SAMPLE", raising=False)
    monkeypatch.setenv("REPRO_SAMPLE_DETAIL_WARMUP", "0")
    monkeypatch.setenv("REPRO_SAMPLE_PERIOD", "7000")
    params = SamplingParams.from_cli(sample=True)
    assert params.detail_warmup == 0 and params.period == 7000
    offset = SamplingParams.from_cli(ff=100)
    assert offset.mode == "offset" and offset.detail_warmup == 0
    # --period implies periodic windows even alongside --ff.
    periodic = SamplingParams.from_cli(ff=100, period=9000)
    assert periodic.mode == "periodic" and periodic.period == 9000
    monkeypatch.setenv("REPRO_SAMPLE_WARMUP", "flase")
    with pytest.raises(ValueError):
        SamplingParams.from_cli(sample=True)


# --------------------------------------------------------------------- #
# Stitching arithmetic.
# --------------------------------------------------------------------- #

def _window(committed, cycles, represents, branches=0):
    stats = SimStats()
    stats.committed = committed
    stats.cycles = cycles
    stats.branches = branches
    return IntervalResult(0, represents, stats)


def test_stitch_weighted_cpi():
    # Two windows at CPI 2.0 and 1.0, each representing 1000 insts:
    # 1000*2 + 1000*1 = 3000 cycles over 2000 instructions.
    out = stitch([_window(100, 200, 1000, branches=10),
                  _window(100, 100, 1000, branches=30)])
    assert out.sampled and out.sample_intervals == 2
    assert out.committed == 2000
    assert out.cycles == 3000
    assert out.ipc == pytest.approx(2000 / 3000)
    assert out.branches == 400          # (10 + 30) scaled by 10x
    assert out.detail_instructions == 200


def test_stitch_empty_and_error_estimate():
    empty = stitch([])
    assert empty.sampled and empty.sample_intervals == 0
    assert sampling_error([_window(100, 150, 100)]) == 0.0
    # Identical windows: zero between-window variance.
    assert sampling_error([_window(100, 150, 100)] * 3) == 0.0
    spread = sampling_error([_window(100, 100, 100),
                             _window(100, 300, 100)])
    assert spread > 0.0
    # Represents-weighted: unequal spans shrink the effective sample
    # size toward 1, so the confidence interval widens relative to the
    # equal-weight case even though the small window counts for less
    # in the mean.
    downweighted = sampling_error([_window(100, 100, 100),
                                   _window(100, 300, 10)])
    assert downweighted > spread


def test_stats_delta_strips_prefix():
    before, after = SimStats(), SimStats()
    before.cycles, after.cycles = 100, 300
    before.committed, after.committed = 50, 200
    before.dispatch_stall_cycles["iq_full"] = 5
    after.dispatch_stall_cycles["iq_full"] = 12
    delta = stats_delta(after, before)
    assert delta.cycles == 200
    assert delta.committed == 150
    assert delta.dispatch_stall_cycles == {"iq_full": 7}


# --------------------------------------------------------------------- #
# Engine behaviour.
# --------------------------------------------------------------------- #

def test_sampled_run_reports_sampling_fields():
    stats = simulate("gzip", SimConfig.baseline(),
                     max_instructions=25_000, sampling=True)
    assert stats.sampled
    assert stats.sample_intervals >= 2
    assert stats.committed == 25_000
    assert 0 < stats.detail_instructions < 25_000 // 4
    assert stats.ff_instructions >= 25_000


def test_offset_mode_single_window():
    params = SamplingParams(mode="offset", ff=5000, interval=1000)
    stats = simulate("gzip", SimConfig.baseline(),
                     max_instructions=20_000, sampling=params)
    assert stats.sampled and stats.sample_intervals == 1
    # The window represents everything after the fast-forward.
    assert stats.committed == 15_000


def test_offset_mode_clamps_to_program_end():
    """An offset window must represent only the instructions that
    exist: a program that halts before the budget cannot be
    extrapolated over the whole remaining budget."""
    from repro.isa import Emulator, ProgramBuilder, int_reg
    b = ProgramBuilder("bounded")
    r_i, r_n = int_reg(1), int_reg(2)
    b.li(r_i, 0)
    b.li(r_n, 2000)
    b.label("loop")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "loop")
    b.halt()
    program = b.build()
    total = Emulator(program).run(max_instructions=100_000).retired

    params = SamplingParams(mode="offset", ff=1000, interval=500,
                            detail_warmup=0)
    stats = simulate(program, SimConfig.baseline(warm_caches=False),
                     max_instructions=80_000, sampling=params)
    assert stats.sampled and stats.sample_intervals == 1
    # Represented span = program end - fast-forward, not budget - ff.
    assert abs(stats.committed - (total - 1000)) <= 2
    assert stats.committed < 10_000


def test_sampling_via_config_fields():
    config = SamplingParams(interval=500,
                            period=2000).apply(SimConfig.baseline())
    stats = simulate("gzip", config, max_instructions=10_000)
    assert stats.sampled and stats.sample_intervals == 5


def test_halting_program_falls_back(halting_program):
    """A program that ends before the first window still yields exact
    (full-detail) statistics."""
    stats = simulate(halting_program, SimConfig.baseline(),
                     max_instructions=10_000, sampling=True)
    assert stats.sampled
    assert stats.sample_intervals == 0
    assert stats.committed == 6        # the whole program, HALT included


def test_sampled_matches_full_detail_ipc():
    """Acceptance: sampled IPC within 5% of full detail while
    cycle-simulating >= 5x fewer instructions (budget-scaled-down
    version of the 100k quick-grid check; see EXPERIMENTS.md for the
    full calibration)."""
    budget = 30_000
    diffs = []
    for config in (SimConfig.baseline(predictor="tage"),
                   SimConfig.cpr(predictor="tage"),
                   SimConfig.msp(16, predictor="tage")):
        full = simulate("gzip", config, max_instructions=budget)
        samp = simulate("gzip", config, max_instructions=budget,
                        sampling=True)
        assert samp.detail_instructions * 5 <= budget
        diffs.append(abs(samp.ipc - full.ipc) / full.ipc)
    assert max(diffs) < 0.05


def test_warmup_engine_trains_structures():
    program = get_program("gzip")
    config = SimConfig.baseline(predictor="tage")
    from repro.isa import Emulator
    emulator = Emulator(program)
    warm = WarmupEngine(config, program)
    emulator.observer = warm
    emulator.run(max_instructions=3000)
    assert warm.instructions == 3000
    assert warm.predictor.predictions > 0
    # History-driven accuracy on a loopy workload beats coin flips.
    assert warm.predictor.accuracy > 0.7
    assert warm.hierarchy.icache.accesses > 0


def test_warm_install_gives_private_copies():
    program = get_program("gzip")
    config = SimConfig.baseline()
    from repro.isa import Emulator
    from repro.sim.runner import build_core
    emulator = Emulator(program)
    warm = WarmupEngine(config, program)
    emulator.observer = warm
    emulator.run(max_instructions=1000)
    golden = warm.predictor.get_history()
    core = build_core(program, config.with_(warm_caches=False))
    core.seed_architectural_state(emulator.snapshot())
    warm.install(core)
    assert core.predictor is not warm.predictor
    assert core.fetch.predictor is core.predictor
    core.run(max_instructions=500)
    assert warm.predictor.get_history() == golden


# --------------------------------------------------------------------- #
# Identity: sampled cells can never collide with full-detail cells.
# --------------------------------------------------------------------- #

def test_sampling_perturbs_cache_key():
    base = SimConfig.msp(16)
    sampled = SamplingParams().apply(base)
    assert sampled.cache_key() != base.cache_key()
    other = SamplingParams(interval=123).apply(base)
    assert other.cache_key() != sampled.cache_key()
    assert Job("gzip", sampled, 300).cache_key() != \
        Job("gzip", base, 300).cache_key()


def test_sampled_config_roundtrips():
    sampled = SamplingParams(mode="offset", ff=9).apply(
        SimConfig.cpr())
    clone = SimConfig.from_dict(sampled.to_dict())
    assert clone == sampled
    assert clone.cache_key() == sampled.cache_key()


def test_sampled_stats_roundtrip():
    stats = simulate("gzip", SimConfig.baseline(),
                     max_instructions=12_000, sampling=True)
    clone = SimStats.from_dict(stats.to_dict())
    assert clone.sampled and clone.ipc == stats.ipc
    assert clone.sampling_error == stats.sampling_error
    assert clone.detail_instructions == stats.detail_instructions


# --------------------------------------------------------------------- #
# Campaign integration: sampled cells shard and cache.
# --------------------------------------------------------------------- #

def test_sampled_jobs_cache_and_shard(tmp_path):
    config = SamplingParams(interval=300,
                            period=1500).apply(SimConfig.baseline())
    jobs = [Job("gzip", config, 6000), Job("mcf", config, 6000)]
    first = run_jobs(jobs, workers=2, cache_dir=tmp_path)
    assert first.simulated == 2 and first.hits == 0
    serial = run_jobs(jobs, workers=1, cache_dir=tmp_path)
    assert serial.hits == 2 and serial.simulated == 0
    for job in jobs:
        a = first.stats_for(job)
        b = serial.stats_for(job)
        assert a.sampled and a.to_dict() == b.to_dict()


def test_sampled_parallel_matches_serial(tmp_path):
    config = SamplingParams(interval=300,
                            period=1500).apply(SimConfig.msp(16))
    job = Job("twolf", config, 5000)
    parallel = run_jobs([job], workers=2,
                        cache_dir=tmp_path / "a").stats_for(job)
    serial = run_jobs([job], workers=1,
                      cache_dir=tmp_path / "b").stats_for(job)
    assert parallel.to_dict() == serial.to_dict()


# --------------------------------------------------------------------- #
# Unified budget defaults.
# --------------------------------------------------------------------- #

def test_default_budget_single_source(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "700")
    assert default_instructions() == 700
    assert default_sample_instructions() == 21_000
    monkeypatch.setenv("REPRO_SAMPLE_INSTRUCTIONS", "4000")
    assert default_sample_instructions() == 4000
    from repro.sim import experiments
    assert experiments.default_instructions() == 700


def test_env_enables_sampling_for_harnesses(monkeypatch):
    """REPRO_SAMPLE=1 switches every harness grid to sampled mode —
    not just the CLI — with the schedule stamped into the cell configs
    (and therefore into their cache keys)."""
    from repro.sim.experiments import run_grid
    monkeypatch.setenv("REPRO_SAMPLE", "1")
    monkeypatch.setenv("REPRO_SAMPLE_INTERVAL", "300")
    monkeypatch.setenv("REPRO_SAMPLE_PERIOD", "1500")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    result = run_grid("env-sampled", ["gzip"], [SimConfig.baseline()],
                      instructions=6000)
    stats = result.stats["gzip"]["Baseline"]
    assert stats.sampled and stats.sample_intervals == 4


def test_malformed_env_knob_raises(monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE", "1")
    monkeypatch.setenv("REPRO_SAMPLE_INTERVAL", "1e4")
    with pytest.raises(ValueError):
        SamplingParams.from_env()


def test_run_grid_rejects_ff_exceeding_budget(monkeypatch):
    from repro.sim.experiments import run_grid
    monkeypatch.delenv("REPRO_SAMPLE", raising=False)
    with pytest.raises(ValueError):
        run_grid("bad-ff", ["gzip"], [SimConfig.baseline()],
                 instructions=3000,
                 sampling=SamplingParams(mode="offset", ff=99_999))


def test_runner_honors_default_budget(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "250")
    stats = simulate("gzip", SimConfig.baseline())
    # Commit groups may overshoot the budget by < one retire width.
    assert 250 <= stats.committed < 250 + SimConfig.baseline().retire_width
