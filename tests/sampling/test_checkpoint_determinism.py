"""Checkpoint determinism: snapshot -> restore -> resume must commit an
instruction stream identical to a straight-through run, both on the
emulator itself and on every timing core seeded from a checkpoint
(cross-checked against the same oracle contract the integration tests
enforce from the program entry).
"""

import pytest

from repro.isa import Emulator
from repro.sim import SimConfig, build_core
from repro.workloads import get_program

CONFIGS = [
    pytest.param(SimConfig.baseline(), id="baseline"),
    pytest.param(SimConfig.cpr(), id="cpr"),
    pytest.param(SimConfig.msp(8), id="msp8"),
    pytest.param(SimConfig.msp(16), id="msp16"),
    pytest.param(SimConfig.msp_ideal(), id="msp-ideal"),
]

WORKLOADS = ["gzip", "mcf", "perlbmk", "vortex", "swim"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_emulator_snapshot_restore_resume_identical(workload):
    program = get_program(workload)

    straight = Emulator(program, trace_pcs=True)
    reference = straight.run(max_instructions=2000)

    resumed = Emulator(program, trace_pcs=True)
    resumed.run(max_instructions=800)
    state = resumed.snapshot()
    assert state.retired == 800

    fresh = Emulator(program, trace_pcs=True)
    fresh.restore(state)
    tail = fresh.run(max_instructions=1200)

    assert tail.retired == 1200
    assert tail.pc_trace == reference.pc_trace[800:]
    assert fresh.regs == straight.regs
    assert fresh.memory == straight.memory


def test_snapshot_is_isolated_from_further_execution():
    program = get_program("gzip")
    emulator = Emulator(program)
    emulator.run(max_instructions=500)
    state = emulator.snapshot()
    frozen_regs = list(state.regs)
    frozen_mem = dict(state.memory)
    emulator.run(max_instructions=500)      # keep running past the
    assert state.regs == frozen_regs        # snapshot: it must not move
    assert state.memory == frozen_mem


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("workload", ["gzip", "mcf", "vortex"])
def test_seeded_core_matches_oracle_from_checkpoint(workload, config):
    """A timing core seeded from an architectural checkpoint commits
    exactly the emulator's instruction stream from that point."""
    program = get_program(workload)
    emulator = Emulator(program)
    emulator.run(max_instructions=700)
    state = emulator.snapshot()

    core = build_core(program, config.with_(record_commits=True,
                                            warm_caches=False))
    core.seed_architectural_state(state)
    stats = core.run(max_instructions=600)
    assert stats.committed >= 600

    oracle = Emulator(program, trace_pcs=True)
    oracle.restore(state)
    reference = oracle.run(max_instructions=stats.committed)
    assert core.commit_trace == reference.pc_trace

    touched = set(core.memory) | set(oracle.memory)
    for addr in touched:
        assert core.memory.get(addr, 0) == oracle.memory.get(addr, 0), \
            f"memory divergence at {addr}"


@pytest.mark.parametrize("config", CONFIGS)
def test_seed_requires_fresh_core(config):
    program = get_program("gzip")
    state = Emulator(program).snapshot()
    core = build_core(program, config)
    core.run(max_instructions=50)
    with pytest.raises(RuntimeError):
        core.seed_architectural_state(state)
