"""Simulation statistics.

The counters mirror what the paper reports:

* IPC (Figs. 6-8) = committed correct-path instructions / cycles;
* the executed-instruction breakdown of Fig. 9: correct-path executed
  (committed), correct-path re-executed (squashed past a checkpoint and
  executed again — CPR's imprecision cost) and wrong-path executed;
* dispatch-stall accounting, including the per-logical-register bank
  stalls the right-hand bars of Figs. 6-8 show for the 16-SP.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple


class SimStats:
    """Counter bundle for one simulation run."""

    def __init__(self) -> None:
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.dispatched = 0
        self.issued = 0

        # Fig. 9 breakdown. "Executed" means the instruction was issued to
        # a functional unit; committed instructions are counted once in
        # ``committed`` even if earlier instances were squashed.
        self.wrong_path_executed = 0
        self.correct_path_reexecuted = 0

        self.branches = 0
        self.branch_mispredictions = 0
        self.recoveries = 0
        self.exceptions_taken = 0

        self.squashed = 0
        self.checkpoints_created = 0

        # Dispatch stall accounting: cause -> cycles. A cycle counts as
        # stalled for a cause when dispatch could not move any instruction
        # and the head was blocked by that cause.
        self.dispatch_stall_cycles: Counter = Counter()
        # MSP: logical register -> stall cycles from its bank being full.
        self.bank_stall_cycles: Counter = Counter()

        # Sampled simulation (repro.sim.sampling). A stitched SimStats
        # extrapolates detailed measurement windows over the whole run:
        # ``committed``/``cycles`` then describe the *represented* run,
        # while ``detail_instructions`` counts what was actually
        # cycle-simulated and ``ff_instructions`` what was functionally
        # fast-forwarded.
        self.sampled = False
        self.sample_intervals = 0
        self.detail_instructions = 0
        self.ff_instructions = 0
        #: Relative 95% confidence half-width of the per-window CPI
        #: (0.0 when fewer than two windows were measured).
        self.sampling_error = 0.0

        # Provenance of the functional work (repro.sim.artifacts):
        # ``ff_instructions`` splits into instructions actually executed
        # this run vs replayed from the checkpoint store, and
        # ``checkpoint_hits`` counts windows served from stored
        # checkpoints. Pure provenance — the represented statistics
        # above are bit-identical either way, so comparisons of a
        # replayed run against a fresh one must exclude these three.
        self.checkpoint_hits = 0
        self.ff_executed_instructions = 0
        self.ff_skipped_instructions = 0

    # ------------------------------------------------------------------ #

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def total_executed(self) -> int:
        """Every trip through a functional unit (Fig. 9 bar height)."""
        return (self.committed + self.wrong_path_executed
                + self.correct_path_reexecuted)

    @property
    def misprediction_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.branch_mispredictions / self.branches

    def top_bank_stalls(self, count: int = 3) -> List[Tuple[int, int]]:
        """The ``count`` logical registers with most bank-full stall cycles."""
        return self.bank_stall_cycles.most_common(count)

    # ------------------------------------------------------------------ #
    # Serialization: the campaign executor ships statistics across
    # process boundaries and persists them in the result cache, so the
    # round-trip must be exact (including Counter key types: ints for
    # ``bank_stall_cycles`` logical registers, strings for
    # ``dispatch_stall_cycles`` causes).
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        """JSON-serializable snapshot of every counter."""
        out: Dict = {}
        for key, value in vars(self).items():
            if isinstance(value, Counter):
                out[key] = sorted(value.items())
            else:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        """Rebuild a :class:`SimStats` from :meth:`to_dict` output."""
        stats = cls()
        for key, value in data.items():
            if isinstance(getattr(stats, key, None), Counter):
                setattr(stats, key,
                        Counter({k: v for k, v in value}))
            else:
                setattr(stats, key, value)
        return stats

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers, for reports and tests."""
        out = {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "total_executed": self.total_executed,
            "wrong_path_executed": self.wrong_path_executed,
            "correct_path_reexecuted": self.correct_path_reexecuted,
            "branches": self.branches,
            "branch_mispredictions": self.branch_mispredictions,
            "misprediction_rate": self.misprediction_rate,
            "recoveries": self.recoveries,
            "exceptions_taken": self.exceptions_taken,
            "checkpoints_created": self.checkpoints_created,
        }
        if self.sampled:
            out.update({
                "sample_intervals": self.sample_intervals,
                "detail_instructions": self.detail_instructions,
                "ff_instructions": self.ff_instructions,
                "sampling_error": self.sampling_error,
            })
            if self.checkpoint_hits or self.ff_skipped_instructions:
                out.update({
                    "checkpoint_hits": self.checkpoint_hits,
                    "ff_skipped_instructions":
                        self.ff_skipped_instructions,
                })
        return out

    def __repr__(self) -> str:
        return (f"SimStats(cycles={self.cycles}, committed={self.committed}, "
                f"ipc={self.ipc:.3f})")
