"""Per-static-instruction execute codegen.

The PR 3 exec-codegen idiom (pre-bound per-op closures in
``EVAL_FNS``), taken one step further: instead of one closure per
*opcode* called from a generic kind ladder, generate one specialised
closure per *static instruction* — operand column reads, semantics,
latency and the completion-bucket push are all compiled into a single
small function with every hot object bound as an argument default.
The event scheduler's issue walk then runs

    exec_fns[pc](seq, slot, now)

and nothing else: no kind ladder, no operand-tuple construction, no
``wrap_int`` call (the two's-complement wrap is emitted as inline
arithmetic), no per-issue attribute lookups.

Flavours
--------
The three backends differ only in how an operand handle turns into a
value, so the generator is shared and the operand-read snippet is
flavoured (selected by the core class's ``codegen_flavor``):

* ``"direct"``  — baseline: ``value = phys_value[handle]``;
* ``"release"`` — CPR: the read also consumes the reader's reference
  count, inlined together with the free-list push (underflow guarded,
  exactly mirroring ``CPRProcessor._release``);
* ``"banked"``  — MSP: handles are ``(logical, mono)`` pairs; the
  static source register is known at generation time, so the bank
  *object* is bound as a default and the closure runs
  ``bank.consume(mono); bank.read(mono)``.

Staleness guard
---------------
Semantics are inlined only when the instruction's decode-time eval fn
**is** the pristine table entry snapshotted at import
(``_ORIGINAL_EVAL``/``_ORIGINAL_BRANCH``); any replaced fn is instead
bound as a default and called, so monkeypatched semantics are honoured
exactly like the generic ladder honours them.  Compiled sources are
cached per decoded program keyed by ``(flavor, semantics_fingerprint)``
— the fingerprint hashes the live tables' bytecode, so mutating an
eval fn invalidates the cache and forces regeneration.

Instantiation
-------------
One module source is generated and compiled per (program, flavour,
fingerprint); per-core instantiation just calls the compiled ``_build``
with the core, which binds that core's columns/tables into fresh
closures.  Closures never bake the ring mask (the walk passes ``slot``
in) and all bound containers are mutated in place by the engine, so
window growth does not invalidate them — the core still rebuilds on
growth for belt-and-braces symmetry with future mask-baking templates.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.isa.opcodes import Op
from repro.isa.semantics import BRANCH_FNS, EVAL_FNS

#: Unsigned 64-bit mask / sign bit for the inline two's-complement wrap:
#: ``wrap_int(x) == ((x & _M) ^ _S) - _S`` for every int ``x``.
_M = (1 << 64) - 1
_S = 1 << 63

#: Table snapshots at import time: the inline templates below replicate
#: exactly these closures, so inlining is only sound while the live
#: table entry is still the snapshotted object.
_ORIGINAL_EVAL = dict(EVAL_FNS)
_ORIGINAL_BRANCH = dict(BRANCH_FNS)


def _wrap(expr: str) -> str:
    """Inline ``wrap_int`` as pure arithmetic."""
    return f"((({expr}) & {_M:#x}) ^ {_S:#x}) - {_S:#x}"


#: op -> (imm -> result expression over locals v0/v1).  Each template
#: must equal ``EVAL_FNS[op]((v0, v1), imm)`` for all values; the
#: semantics parity test pins the table against the reference ladder.
_EVAL_TEMPLATES = {
    Op.ADD: lambda imm: _wrap("v0 + v1"),
    Op.SUB: lambda imm: _wrap("v0 - v1"),
    Op.MUL: lambda imm: _wrap("v0 * v1"),
    Op.DIV: lambda imm: f"({_wrap('int(v0 / v1)')}) if v1 != 0 else 0",
    Op.AND: lambda imm: _wrap("v0 & v1"),
    Op.OR: lambda imm: _wrap("v0 | v1"),
    Op.XOR: lambda imm: _wrap("v0 ^ v1"),
    Op.SHL: lambda imm: _wrap("v0 << (v1 & 63)"),
    Op.SHR: lambda imm: _wrap("v0 >> (v1 & 63)"),
    Op.SLT: lambda imm: "1 if v0 < v1 else 0",
    Op.ADDI: lambda imm: _wrap(f"v0 + {imm}"),
    Op.LI: lambda imm: repr(((imm & _M) ^ _S) - _S),   # constant-folded
    Op.MOV: lambda imm: _wrap("v0"),
    Op.FADD: lambda imm: "v0 + v1",
    Op.FSUB: lambda imm: "v0 - v1",
    Op.FMUL: lambda imm: "v0 * v1",
    Op.FDIV: lambda imm: "(v0 / v1) if v1 != 0.0 else 0.0",
    Op.FMOV: lambda imm: "float(v0)",
    Op.FCVT: lambda imm: "float(v0)",
    Op.FCMPLT: lambda imm: "1 if v0 < v1 else 0",
}

#: op -> direction expression over locals v0/v1 (== BRANCH_FNS[op]).
_BRANCH_TEMPLATES = {
    Op.BEQ: "v0 == v1",
    Op.BNE: "v0 != v1",
    Op.BLT: "v0 < v1",
    Op.BGE: "v0 >= v1",
    Op.BEQZ: "v0 == 0",
    Op.BNEZ: "v0 != 0",
}


def semantics_fingerprint() -> str:
    """Fingerprint of the live semantics tables.

    Hashes each entry's bytecode, constants and names plus whether it is
    still the import-time original, so both monkeypatching a table slot
    and editing a closure's source change the fingerprint (and therefore
    the codegen cache key)."""
    h = hashlib.sha256()
    for table, original in ((EVAL_FNS, _ORIGINAL_EVAL),
                            (BRANCH_FNS, _ORIGINAL_BRANCH)):
        for op in sorted(table, key=lambda o: o.value):
            fn = table[op]
            code = fn.__code__
            h.update(op.name.encode())
            h.update(b"1" if fn is original.get(op) else b"0")
            h.update(code.co_code)
            h.update(repr(code.co_consts).encode())
            h.update(repr(code.co_names).encode())
    return h.hexdigest()[:16]


# --------------------------------------------------------------------- #
# Source generation.
# --------------------------------------------------------------------- #

#: build-scope names shared by every flavour (assigned in the prelude).
_COMMON_PRELUDE = """\
    w = core.w
    _comp = core._completions
    _sq = core.sq
    _mem = core.memory
    _hier = core.hierarchy
    _dc = _hier.dcache
    _h0 = w.h0
    _h1 = w.h1
    _res = w.res
    _sval = w.sval
    _ma = w.ma
    _fin = w.fin
    _atk = w.atk
    _atg = w.atg
    _fwd = _sq.forward
    _sqe = _sq._entries
    _ll = _hier.load_latency
    _dsets = _dc._sets
    _dls = _dc._line_shift
    _dsb = _dc._set_bits
    _dsm = _dc.set_mask
    _dhit = _hier.dcache_hit
"""

_FLAVOR_PRELUDE = {
    "direct": "    _pv = core.phys_value\n",
    "release": ("    _pv = core.phys_value\n"
                "    _rc = core.refcount\n"
                "    _if = core.int_free\n"
                "    _ff = core.fp_free\n"
                "    _nint = core.config.phys_int\n"),
    "banked": "    _bk = core.banks\n",
}


def _read_snippet(flavor: str, i: int, dec, pc: int,
                  params: List[str]) -> List[str]:
    """Lines computing local ``v{i}`` from operand column ``h{i}``,
    with the flavour's issue-time side effects inlined."""
    if flavor == "direct":
        for name in ("_pv", f"_h{i}"):
            if name not in params:
                params.append(name)
        return [f"v{i} = _pv[_h{i}[slot]]"]
    if flavor == "release":
        for name in ("_pv", "_rc", "_if", "_ff", "_nint", f"_h{i}"):
            if name not in params:
                params.append(name)
        return [
            f"h{i} = _h{i}[slot]",
            f"v{i} = _pv[h{i}]",
            f"c{i} = _rc[h{i}] - 1",
            f"if c{i} < 0:",
            f"    raise AssertionError("
            f"'refcount underflow on phys %d' % h{i})",
            f"_rc[h{i}] = c{i}",
            f"if c{i} == 0:",
            f"    if h{i} < _nint:",
            f"        _if.append(h{i})",
            f"    else:",
            f"        _ff.append(h{i})",
        ]
    # banked: the source register is static, so the bank object itself
    # is a default argument.
    src = dec.s0[pc] if i == 0 else dec.s1[pc]
    bank = f"_b{i}"
    params.append(f"{bank}=_bk[{src}]")
    if f"_h{i}" not in params:
        params.append(f"_h{i}")
    return [
        f"m{i} = _h{i}[slot][1]",
        f"{bank}.consume(m{i})",
        f"v{i} = {bank}.read(m{i})",
    ]


_BUCKET = [
    "_fin[slot] = finish",
    "b = _comp.get(finish)",
    "if b is None:",
    "    _comp[finish] = [seq]",
    "else:",
    "    b.append(seq)",
]


def _gen_fn(dec, pc: int, flavor: str) -> Optional[str]:
    """Source of the specialised closure for static instruction ``pc``,
    or None for kinds that never issue (NOP/HALT)."""
    kind = dec.kind[pc]
    if kind == 6:
        return None
    op = Op(dec.code[pc])
    imm = dec.imm[pc]
    nsrc = dec.nsrc[pc]
    lat = dec.lat[pc]
    params: List[str] = ["_comp", "_fin"]
    body: List[str] = []

    if kind == 0:                        # register-writing ALU op
        for i in range(nsrc):
            body += _read_snippet(flavor, i, dec, pc, params)
        template = _EVAL_TEMPLATES.get(op)
        if template is not None and dec.evalf[pc] is _ORIGINAL_EVAL.get(op):
            expr = template(imm)
        else:
            # Replaced semantics: call the decode-time fn, like the
            # generic ladder would.
            params.append(f"_ef=_dec.evalf[{pc}]")
            values = "(v0, v1)" if nsrc == 2 else \
                ("(v0,)" if nsrc else "()")
            expr = f"_ef({values}, {imm})"
        params.append("_res")
        body.append(f"_res[slot] = {expr}")
        body.append(f"finish = now + {lat}")
    elif kind == 1:                      # conditional branch
        for i in range(nsrc):
            body += _read_snippet(flavor, i, dec, pc, params)
        template = _BRANCH_TEMPLATES.get(op)
        if (template is not None
                and dec.branchf[pc] is _ORIGINAL_BRANCH.get(op)):
            expr = template
        else:
            params.append(f"_bf=_dec.branchf[{pc}]")
            expr = f"_bf((v0, v1))" if nsrc == 2 else "_bf((v0,))"
        params += ["_atk", "_atg"]
        body.append(f"taken = {expr}")
        body.append("_atk[slot] = taken")
        body.append(f"_atg[slot] = {dec.target[pc]} if taken "
                    f"else {pc + 1}")
        body.append(f"finish = now + {lat}")
    elif kind == 2:                      # direct jump
        params += ["_atk", "_atg"]
        body.append("_atk[slot] = True")
        body.append(f"_atg[slot] = {dec.target[pc]}")
        body.append(f"finish = now + {lat}")
    elif kind == 3:                      # indirect jump
        body += _read_snippet(flavor, 0, dec, pc, params)
        params += ["_atk", "_atg"]
        body.append("_atk[slot] = True")
        body.append("_atg[slot] = int(v0)")
        body.append(f"finish = now + {lat}")
    elif kind == 4:                      # load
        # The issue walk memoises the effective address in the ``ma``
        # column before its store-conflict/FU checks, so the closure
        # just reads it back; the operand read survives only for its
        # flavour side effects (refcount release / bank consume).
        if flavor != "direct":
            body += _read_snippet(flavor, 0, dec, pc, params)
        params += ["_ma", "_res", "_sqe", "_fwd", "_mem",
                   "_dsets", "_dls", "_dsb", "_dsm", "_dhit", "_dc",
                   "_ll"]
        cast = "float(%s)" if dec.code[pc] == Op.FLD.value else "%s"
        body += [
            "addr = _ma[slot]",
            "if _sqe:",
            "    fwd, pen = _fwd(addr, seq)",
            "else:",
            "    fwd = None",
            "if fwd is not None:",
            f"    _res[slot] = {cast % 'fwd'}",
            "    finish = now + 1 + pen",
            "else:",
            f"    _res[slot] = {cast % '_mem.get(addr, 0)'}",
            "    # D-cache hit path, inline (Cache.access)",
            "    line = (addr << 3) >> _dls",
            "    t = line >> _dsb",
            "    ls = _dsets[line & _dsm]",
            "    if t in ls:",
            "        _dc.hits += 1",
            "        ls.move_to_end(t)",
            "        finish = now + _dhit",
            "    else:",
            "        finish = now + _ll(addr)",
        ]
    else:                                # kind == 5: store
        body += _read_snippet(flavor, 0, dec, pc, params)   # data
        body += _read_snippet(flavor, 1, dec, pc, params)   # base
        params += ["_sval", "_ma", "_ea"]
        addr = f"(v1 + {imm}) & {_M:#x}" if imm else f"v1 & {_M:#x}"
        body += [
            "_sval[slot] = v0",
            "if type(v1) is int:",
            f"    _ma[slot] = {addr}",
            "else:",
            f"    _ma[slot] = _ea(v1, {imm})",
            "finish = now + 1",
        ]
    body += _BUCKET

    arglist = ", ".join(p if "=" in p else f"{p}={p}" for p in params)
    lines = [f"    def _f{pc}(seq, slot, now, {arglist}):"]
    lines += [f"        {line}" for line in body]
    lines.append(f"    fns[{pc}] = _f{pc}")
    return "\n".join(lines)


def generate_source(dec, flavor: str) -> str:
    """Full module source for one (program, flavour) pair."""
    parts = [
        '"""Generated per-static-instruction exec closures '
        f'(flavor={flavor!r})."""',
        "from repro.isa.semantics import effective_address as _ea_",
        "",
        "def _build(core):",
        "    _dec = core._dec",
        "    _ea = _ea_",
        _COMMON_PRELUDE + _FLAVOR_PRELUDE[flavor],
        f"    fns = [None] * {dec.size}",
    ]
    for pc in range(dec.size):
        fn_src = _gen_fn(dec, pc, flavor)
        if fn_src is not None:
            parts.append(fn_src)
    parts.append("    return fns")
    parts.append("")
    return "\n".join(parts)


# --------------------------------------------------------------------- #
# Compile cache: per decoded program, keyed by (flavor, semantics fp).
# The cache lives on the DecodedProgram itself (``_codegen_cache``), so
# it dies with the program and two cores over the same program share one
# compilation.
# --------------------------------------------------------------------- #

def _compiled_build(dec, flavor: str):
    key = (flavor, semantics_fingerprint())
    cache: Optional[Dict] = dec._codegen_cache
    if cache is None:
        cache = dec._codegen_cache = {}
    build = cache.get(key)
    if build is None:
        source = generate_source(dec, flavor)
        namespace: Dict = {}
        exec(compile(source, f"<codegen:{flavor}>", "exec"), namespace)
        build = namespace["_build"]
        build.__codegen_source__ = source   # introspection for tests
        cache[key] = build
    return build


def build_exec_fns(core) -> Optional[List]:
    """Instantiate this core's per-static-instruction exec closures,
    or None when the core's class declares no codegen flavour."""
    flavor = getattr(type(core), "codegen_flavor", None)
    if flavor is None:
        return None
    return _compiled_build(core._dec, flavor)(core)
