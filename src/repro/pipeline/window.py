"""Structure-of-arrays in-flight instruction state.

Every dynamic instruction used to be a ``DynInst`` object; on the
hottest loop in the repo that meant an attribute access (dict-backed or
slot-backed, either way a C call) per field per stage.  The
:class:`InflightWindow` replaces the object with parallel columns —
one plain Python list per field — indexed by ``seq & mask`` over a
power-of-two ring.  This is the same parallel-int-array idiom that made
the TAGE predictor 3x faster (PR 2), applied one layer deeper.

Ownership discipline
--------------------
Sequence numbers are globally unique, monotonically increasing, and
never reused.  A slot is *owned* by dynamic instruction ``s`` exactly
while ``window.sq[s & mask] == s``; once a younger instruction claims
the slot the old seq is dead.  Stale seq references (scan-scheduler
heap zombies, waiting-list leftovers, completion buckets) therefore
check ownership first — a mismatch is semantically identical to the old
``di.squashed`` test, because the only way a slot is recycled is that
every older occupant was squashed or committed.

Growth
------
The ring must always span ``[oldest_live_seq, next_seq + fetch_width)``.
Capacity is checked once per fetch group against a cached *barrier*
(``oldest_live + capacity``); only when the barrier is crossed does the
core recompute the true oldest live seq and, if the span genuinely
exceeds capacity, :meth:`grow` doubles the ring — re-placing every
column entry at ``seq & new_mask`` *in place* (``col[:] = new``), so
closures that bound a column as an argument default keep seeing live
storage.  The mask itself cannot be updated in place, so growth fires
the registered ``on_grow`` callbacks and any codegen'd closures that
baked the old mask are regenerated.  ``REPRO_WINDOW_CAP`` forces a tiny
initial capacity so tests and the fuzz harness exercise the growth
path on ordinary programs.
"""

from __future__ import annotations

from typing import Callable, List

from repro.defaults import env_int

#: ``st`` column bit flags.
ISSUED = 1
COMPLETED = 2
SQUASHED = 4
MISPRED = 8

#: Names of the per-instruction columns, in declaration order.
COLUMNS = (
    "sq",    # owning seq (-1 = free): the validity check
    "pc",    # fetch PC (indexes the program's static columns)
    "st",    # status bitfield: ISSUED/COMPLETED/SQUASHED/MISPRED
    "h0",    # physical handle of source 0
    "h1",    # physical handle of source 1
    "wc",    # outstanding-operand wait count
    "dest",  # destination physical handle (None when !writes_reg)
    "res",   # execution result (written at issue, published at WB)
    "sval",  # store data value (read again at writeback)
    "eic",   # earliest issue cycle
    "pred",  # Prediction object (conditional branches)
    "ptk",   # predicted taken
    "ptg",   # predicted target
    "atk",   # actual taken (resolved at execute)
    "atg",   # actual target
    "ma",    # effective memory address
    "fin",   # completion cycle (written at issue; targeted squash purge)
    "se",    # store-queue entry
    "tag",   # arch snapshot / CPR checkpoint memo (None default)
    "sid",   # MSP state id
    "ghr",   # global-history snapshot at fetch
)


#: Free-slot filler per column (only ``sq`` is ever *read* before the
#: owning instruction writes the field, but keep fillers type-honest).
_DEFAULTS = {
    "sq": -1, "pc": 0, "st": 0, "h0": 0, "h1": 0, "wc": 0,
    "dest": None, "res": 0, "sval": 0, "eic": 0, "pred": None,
    "ptk": False, "ptg": 0, "atk": False, "atg": 0, "ma": -1,
    "fin": 0, "se": None, "tag": None, "sid": 0, "ghr": None,
}


def _window_capacity(requested: int) -> int:
    """Initial ring capacity: env override, rounded up to a power of 2."""
    cap = env_int("REPRO_WINDOW_CAP", requested)
    if cap < 4:
        cap = 4
    size = 4
    while size < cap:
        size <<= 1
    return size


class InflightWindow:
    """Ring-buffered SoA state for all in-flight instructions."""

    __slots__ = tuple(COLUMNS) + ("capacity", "mask", "grow_barrier",
                                  "grows", "_on_grow")

    def __init__(self, capacity: int = 1024) -> None:
        capacity = _window_capacity(capacity)
        self.capacity = capacity
        self.mask = capacity - 1
        #: Fetch may mint seqs below this without an oldest-live check.
        self.grow_barrier = capacity
        self.grows = 0
        self._on_grow: List[Callable[[], None]] = []
        self.sq = [-1] * capacity
        self.pc = [0] * capacity
        self.st = [0] * capacity
        self.h0 = [0] * capacity
        self.h1 = [0] * capacity
        self.wc = [0] * capacity
        self.dest = [None] * capacity
        self.res = [0] * capacity
        self.sval = [0] * capacity
        self.eic = [0] * capacity
        self.pred = [None] * capacity
        self.ptk = [False] * capacity
        self.ptg = [0] * capacity
        self.atk = [False] * capacity
        self.atg = [0] * capacity
        self.ma = [-1] * capacity
        self.fin = [0] * capacity
        self.se = [None] * capacity
        self.tag = [None] * capacity
        self.sid = [0] * capacity
        self.ghr = [None] * capacity

    # ------------------------------------------------------------------ #

    def add_on_grow(self, callback: Callable[[], None]) -> None:
        """Register a callback fired after every capacity doubling
        (codegen'd closures bake the mask and must be rebuilt)."""
        self._on_grow.append(callback)

    def ensure_room(self, oldest_live: int, limit: int) -> None:
        """Grow until the ring spans ``[oldest_live, limit)``; refresh
        the barrier either way.  Called only when fetch crosses
        ``grow_barrier``, i.e. rarely."""
        while limit - oldest_live > self.capacity:
            self._grow()
        self.grow_barrier = oldest_live + self.capacity

    def _grow(self) -> None:
        old_cap = self.capacity
        new_cap = old_cap * 2
        new_mask = new_cap - 1
        old_sq = list(self.sq)
        for name in COLUMNS:
            col = getattr(self, name)
            fresh = [_DEFAULTS[name]] * new_cap
            for slot in range(old_cap):
                s = old_sq[slot]
                if s >= 0:
                    fresh[s & new_mask] = col[slot]
            # In place: closures bound the list object itself.
            col[:] = fresh
        self.capacity = new_cap
        self.mask = new_mask
        self.grows += 1
        for callback in self._on_grow:
            callback()
