"""Issue-bandwidth resources: functional-unit pool and load buffer.

Table I gives all four machines the same execution resources: 4 integer
units, 4 floating-point units, 2 load/store units, and an issue width
of 5. Units are fully pipelined, so the pool is a per-cycle issue-slot
counter per class plus the global issue-width cap.
"""

from __future__ import annotations

from repro.isa.opcodes import FUType


class FunctionalUnitPool:
    """Per-cycle issue slots: N units of each class, fully pipelined."""

    def __init__(self, int_units: int = 4, fp_units: int = 4,
                 ldst_units: int = 2, issue_width: int = 5) -> None:
        self.limits = {
            FUType.INT: int_units,
            FUType.FP: fp_units,
            FUType.LDST: ldst_units,
        }
        self.issue_width = issue_width
        self._used = {FUType.INT: 0, FUType.FP: 0, FUType.LDST: 0}
        self._issued_total = 0

    def new_cycle(self) -> None:
        self._used[FUType.INT] = 0
        self._used[FUType.FP] = 0
        self._used[FUType.LDST] = 0
        self._issued_total = 0

    def can_issue(self, fu_type: FUType) -> bool:
        if self._issued_total >= self.issue_width:
            return False
        if fu_type is FUType.NONE:
            return True
        return self._used[fu_type] < self.limits[fu_type]

    def issue(self, fu_type: FUType) -> None:
        self._issued_total += 1
        if fu_type is not FUType.NONE:
            self._used[fu_type] += 1

    @property
    def slots_left(self) -> int:
        return self.issue_width - self._issued_total


class LoadBuffer:
    """Bounds the number of in-flight loads (Table I: 48 entries).

    Occupied from dispatch to commit/squash.
    """

    def __init__(self, capacity: int = 48) -> None:
        self.capacity = capacity
        self.occupied = 0

    def is_full(self) -> bool:
        return self.occupied >= self.capacity

    def allocate(self) -> None:
        if self.is_full():
            raise RuntimeError("load buffer overflow; check is_full() first")
        self.occupied += 1

    def release(self) -> None:
        if self.occupied <= 0:
            raise RuntimeError("load buffer underflow")
        self.occupied -= 1
