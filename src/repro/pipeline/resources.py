"""Issue-bandwidth resources: functional-unit pool and load buffer.

Table I gives all four machines the same execution resources: 4 integer
units, 4 floating-point units, 2 load/store units, and an issue width
of 5. Units are fully pipelined, so the pool is a per-cycle issue-slot
counter per class plus the global issue-width cap.
"""

from __future__ import annotations

from repro.isa.opcodes import FU_CODE, FUType


class FunctionalUnitPool:
    """Per-cycle issue slots: N units of each class, fully pipelined.

    State lives in dense int-indexed lists (``FU_CODE`` order: INT, FP,
    LDST, NONE) so the issue loop's per-candidate checks are plain list
    indexing; the ``*_code`` methods take an ``Instruction.fu_code``.
    The NONE class gets an effectively unbounded per-class limit — only
    the global issue width caps it — which keeps ``can_issue_code``
    branch-free.
    """

    def __init__(self, int_units: int = 4, fp_units: int = 4,
                 ldst_units: int = 2, issue_width: int = 5) -> None:
        self._limits = [int_units, fp_units, ldst_units, 1 << 30]
        self.issue_width = issue_width
        self._used = [0, 0, 0, 0]
        self._issued_total = 0

    @property
    def limits(self) -> dict:
        """Per-class unit counts keyed by :class:`FUType` (inspection)."""
        return {FUType.INT: self._limits[0], FUType.FP: self._limits[1],
                FUType.LDST: self._limits[2]}

    def new_cycle(self) -> None:
        used = self._used
        used[0] = used[1] = used[2] = used[3] = 0
        self._issued_total = 0

    def can_issue_code(self, code: int) -> bool:
        return (self._issued_total < self.issue_width
                and self._used[code] < self._limits[code])

    def issue_code(self, code: int) -> None:
        self._issued_total += 1
        self._used[code] += 1

    def can_issue(self, fu_type: FUType) -> bool:
        return self.can_issue_code(FU_CODE[fu_type])

    def issue(self, fu_type: FUType) -> None:
        self.issue_code(FU_CODE[fu_type])

    @property
    def slots_left(self) -> int:
        return self.issue_width - self._issued_total


class LoadBuffer:
    """Bounds the number of in-flight loads (Table I: 48 entries).

    Occupied from dispatch to commit/squash.
    """

    def __init__(self, capacity: int = 48) -> None:
        self.capacity = capacity
        self.occupied = 0

    def is_full(self) -> bool:
        return self.occupied >= self.capacity

    def allocate(self) -> None:
        if self.is_full():
            raise RuntimeError("load buffer overflow; check is_full() first")
        self.occupied += 1

    def release(self) -> None:
        if self.occupied <= 0:
            raise RuntimeError("load buffer underflow")
        self.occupied -= 1
