"""Shared pipeline machinery: fetch, in-flight window, resources, core
engine, per-static-instruction codegen."""

from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.resources import FunctionalUnitPool, LoadBuffer
from repro.pipeline.stats import SimStats
from repro.pipeline.window import InflightWindow

__all__ = [
    "FAULT_NONE",
    "FetchEngine",
    "FunctionalUnitPool",
    "InflightWindow",
    "LoadBuffer",
    "OutOfOrderCore",
    "SimStats",
]
