"""Shared pipeline machinery: fetch, dyninst, resources, core engine."""

from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore
from repro.pipeline.dyninst import DynInst
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.resources import FunctionalUnitPool, LoadBuffer
from repro.pipeline.stats import SimStats

__all__ = [
    "DynInst",
    "FAULT_NONE",
    "FetchEngine",
    "FunctionalUnitPool",
    "LoadBuffer",
    "OutOfOrderCore",
    "SimStats",
]
