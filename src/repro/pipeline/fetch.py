"""Front end: fetch, branch prediction, fetch-buffer decoupling.

All four machines share this front end (fetch width 3, Table I). Each
cycle it fetches up to ``width`` sequential instructions from the I-cache,
predicting conditional branches (direction predictor) and indirect jumps
(BTB), and stops the group at the first predicted-taken control transfer.
Fetched instructions wait in a small decoupling buffer until the dispatch
stage pulls them.

On an I-cache miss the front end stalls for the miss latency. On a
misprediction the core calls :meth:`redirect`, which also discards the
buffer (those are wrong-path instructions by definition).
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.base import BranchPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.memory.cache import MemoryHierarchy
from repro.pipeline.dyninst import DynInst


class FetchEngine:
    """Decoupled front end shared by all cores."""

    def __init__(
        self,
        program: Program,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        btb: Optional[BranchTargetBuffer] = None,
        width: int = 3,
        buffer_capacity: int = 16,
    ) -> None:
        self.program = program
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.btb = btb or BranchTargetBuffer()
        self.width = width
        self.buffer_capacity = buffer_capacity

        #: Observability hook slot (armed by ``core.attach_tracer``);
        #: None-checked at every emission site, zero-overhead when off.
        self.tracer = None

        self.pc = program.entry
        self.buffer: List[DynInst] = []
        self.next_seq = 0
        self.halted = False          # saw HALT; wait for redirect
        self.stalled_until = 0       # I-cache miss in progress
        self.fetched = 0
        self.icache_stall_cycles = 0

    # ------------------------------------------------------------------ #

    def redirect(self, target: int, now: int) -> None:
        """Recovery: discard the buffer and restart fetch at ``target``."""
        if self.tracer is not None:
            # Normally the core's squash_after has already traced (and
            # dropped) buffered wrong-path instructions; anything still
            # here is discarded by the redirect itself.
            for di in self.buffer:
                self.tracer.squash(di.seq, now)
        self.buffer.clear()
        self.pc = target
        self.halted = False
        # The redirected fetch starts next cycle.
        self.stalled_until = now + 1

    def squash_after(self, seq: int) -> None:
        """Drop buffered instructions younger than ``seq``."""
        self.buffer[:] = [di for di in self.buffer if di.seq <= seq]

    # ------------------------------------------------------------------ #

    def cycle(self, now: int) -> None:
        """Fetch up to ``width`` instructions into the buffer."""
        if self.halted:
            return
        if now < self.stalled_until:
            self.icache_stall_cycles += 1
            return
        buffer = self.buffer
        capacity = self.buffer_capacity
        if len(buffer) >= capacity:
            return

        pc = self.pc
        latency = self.hierarchy.instruction_latency(pc)
        if latency > 1:
            self.stalled_until = now + latency
            self.icache_stall_cycles += 1
            return

        program_fetch = self.program.fetch
        predictor = self.predictor
        tracer = self.tracer
        next_seq = self.next_seq
        fetched = 0
        for _ in range(self.width):
            if len(buffer) >= capacity:
                break
            inst = program_fetch(pc)
            if inst is None:
                # Wrong-path PC fell off the program: nothing to fetch
                # until a recovery redirects us.
                self.halted = True
                break

            di = DynInst(next_seq, pc, inst)
            di.ghr_at_fetch = predictor.get_history()
            next_seq += 1
            fetched += 1
            buffer.append(di)
            if tracer is not None:
                tracer.fetch(di, now)

            if inst.op is Op.HALT:
                self.halted = True
                break

            next_pc = pc + 1
            stop_group = False
            if inst.is_branch:
                prediction = predictor.predict(pc)
                di.prediction = prediction
                di.predicted_taken = prediction.taken
                di.predicted_target = (inst.target if prediction.taken
                                       else pc + 1)
                if prediction.taken:
                    next_pc = inst.target
                    stop_group = True
            elif inst.op is Op.JMP:
                di.predicted_taken = True
                di.predicted_target = inst.target
                next_pc = inst.target
                stop_group = True
            elif inst.op is Op.JR:
                di.predicted_taken = True
                predicted = self.btb.predict(pc)
                # On a BTB miss, fall through (will mispredict and recover).
                di.predicted_target = (predicted if predicted is not None
                                       else pc + 1)
                next_pc = di.predicted_target
                stop_group = True

            pc = next_pc
            if stop_group:
                break
        self.pc = pc
        self.next_seq = next_seq
        self.fetched += fetched

    def skip_cycles(self, start: int, count: int) -> None:
        """Replicate the per-cycle accounting of ``count`` consecutive
        cycles ``[start, start + count)`` during which the core proved
        fetch cannot make progress (event-scheduler idle skip): every
        such cycle that is still inside an I-cache stall counts a stall
        cycle, exactly as :meth:`cycle` would have."""
        if self.halted:
            return
        stalled = self.stalled_until - start
        if stalled > 0:
            self.icache_stall_cycles += stalled if stalled < count else count

