"""Front end: fetch, branch prediction, fetch-buffer decoupling.

All four machines share this front end (fetch width 3, Table I). Each
cycle it fetches up to ``width`` sequential instructions from the I-cache,
predicting conditional branches (direction predictor) and indirect jumps
(BTB), and stops the group at the first predicted-taken control transfer.
Fetched instructions wait in a small decoupling buffer until the dispatch
stage pulls them.

Fetched state lives in the core's :class:`~repro.pipeline.window.
InflightWindow` columns; the buffer itself is a plain list of sequence
numbers.  On an I-cache miss the front end stalls for the miss latency.
On a misprediction the core calls :meth:`redirect`, which also discards
the buffer (those are wrong-path instructions by definition).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.branch.base import BranchPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.isa.opcodes import KIND_BRANCH, KIND_JMP, KIND_JR, Op
from repro.isa.program import Program
from repro.memory.cache import MemoryHierarchy
from repro.pipeline.window import InflightWindow

_HALT = Op.HALT.value


class FetchEngine:
    """Decoupled front end shared by all cores."""

    def __init__(
        self,
        program: Program,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        btb: Optional[BranchTargetBuffer] = None,
        width: int = 3,
        buffer_capacity: int = 16,
        window: Optional[InflightWindow] = None,
    ) -> None:
        self.program = program
        self.decoded = program.decoded
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.btb = btb or BranchTargetBuffer()
        self.width = width
        self.buffer_capacity = buffer_capacity
        self.window = window if window is not None else InflightWindow(64)

        #: Observability hook slot (armed by ``core.attach_tracer``);
        #: None-checked at every emission site, zero-overhead when off.
        self.tracer = None

        #: Oldest live seq supplier for the window growth check; the
        #: core overrides this with one that also consults its ROB.
        self.oldest_live: Callable[[], int] = (
            lambda: self.buffer[0] if self.buffer else self.next_seq)

        self.pc = program.entry
        self.buffer: List[int] = []
        self.next_seq = 0
        self.halted = False          # saw HALT; wait for redirect
        self.stalled_until = 0       # I-cache miss in progress
        self.fetched = 0
        self.icache_stall_cycles = 0

    # ------------------------------------------------------------------ #

    def redirect(self, target: int, now: int) -> None:
        """Recovery: discard the buffer and restart fetch at ``target``."""
        if self.tracer is not None:
            # Normally the core's squash_after has already traced (and
            # dropped) buffered wrong-path instructions; anything still
            # here is discarded by the redirect itself.
            for seq in self.buffer:
                self.tracer.squash(seq, now)
        self.buffer.clear()
        self.pc = target
        self.halted = False
        # The redirected fetch starts next cycle.
        self.stalled_until = now + 1

    def squash_after(self, seq: int) -> None:
        """Drop buffered instructions younger than ``seq``."""
        self.buffer[:] = [s for s in self.buffer if s <= seq]

    # ------------------------------------------------------------------ #

    def cycle(self, now: int) -> None:
        """Fetch up to ``width`` instructions into the buffer."""
        if self.halted:
            return
        if now < self.stalled_until:
            self.icache_stall_cycles += 1
            return
        buffer = self.buffer
        capacity = self.buffer_capacity
        if len(buffer) >= capacity:
            return

        pc = self.pc
        latency = self.hierarchy.instruction_latency(pc)
        if latency > 1:
            self.stalled_until = now + latency
            self.icache_stall_cycles += 1
            return

        w = self.window
        next_seq = self.next_seq
        if next_seq + self.width > w.grow_barrier:
            w.ensure_room(self.oldest_live(), next_seq + self.width)
        mask = w.mask
        w_sq, w_pc, w_st = w.sq, w.pc, w.st
        w_tag, w_ghr = w.tag, w.ghr
        dec = self.decoded
        size = dec.size
        kinds, codes, targets = dec.kind, dec.code, dec.target
        predictor = self.predictor
        tracer = self.tracer
        fetched = 0
        for _ in range(self.width):
            if len(buffer) >= capacity:
                break
            if pc < 0 or pc >= size:
                # Wrong-path PC fell off the program: nothing to fetch
                # until a recovery redirects us.
                self.halted = True
                break

            slot = next_seq & mask
            w_sq[slot] = next_seq
            w_pc[slot] = pc
            w_st[slot] = 0
            w_tag[slot] = None
            w_ghr[slot] = predictor.get_history()
            seq = next_seq
            next_seq += 1
            fetched += 1
            buffer.append(seq)
            if tracer is not None:
                tracer.fetch(seq, pc, dec.insts[pc], now)

            kind = kinds[pc]
            if kind >= 6:            # KIND_NONE: NOP or HALT
                if codes[pc] == _HALT:
                    self.halted = True
                    break
                pc += 1
                continue

            next_pc = pc + 1
            stop_group = False
            if kind == KIND_BRANCH:
                prediction = predictor.predict(pc)
                w.pred[slot] = prediction
                taken = prediction.taken
                w.ptk[slot] = taken
                if taken:
                    next_pc = targets[pc]
                    w.ptg[slot] = next_pc
                    stop_group = True
                else:
                    w.ptg[slot] = pc + 1
            elif kind == KIND_JMP:
                w.ptk[slot] = True
                next_pc = targets[pc]
                w.ptg[slot] = next_pc
                stop_group = True
            elif kind == KIND_JR:
                w.ptk[slot] = True
                predicted = self.btb.predict(pc)
                # On a BTB miss, fall through (will mispredict and recover).
                next_pc = predicted if predicted is not None else pc + 1
                w.ptg[slot] = next_pc
                stop_group = True

            pc = next_pc
            if stop_group:
                break
        self.pc = pc
        self.next_seq = next_seq
        self.fetched += fetched

    def skip_cycles(self, start: int, count: int) -> None:
        """Replicate the per-cycle accounting of ``count`` consecutive
        cycles ``[start, start + count)`` during which the core proved
        fetch cannot make progress (event-scheduler idle skip): every
        such cycle that is still inside an I-cache stall counts a stall
        cycle, exactly as :meth:`cycle` would have."""
        if self.halted:
            return
        stalled = self.stalled_until - start
        if stalled > 0:
            self.icache_stall_cycles += stalled if stalled < count else count
