"""Dynamic (in-flight) instruction record.

One :class:`DynInst` is created per *fetched* instruction instance —
including wrong-path instances — and carries everything the backend needs:
renamed operands, execution status, branch prediction context and the
architecture-specific tags (ROB slot / checkpoint id / StateId).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.isa.instructions import Instruction


class DynInst:
    """One dynamic instance of a static instruction."""

    __slots__ = (
        "seq", "pc", "inst",
        "src_handles", "src_values", "wait_count",
        "dest_handle",
        "dispatch_cycle", "earliest_issue_cycle",
        "issued", "completed", "squashed", "committed",
        "result",
        "prediction", "predicted_taken", "predicted_target",
        "actual_taken", "actual_target", "mispredicted",
        "mem_addr", "store_entry",
        "stateid", "tag", "ghr_at_fetch",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst

        # Renamed sources: architecture-specific operand handles.  Both
        # sequences start as a shared empty tuple (rename/issue replace
        # them wholesale) so constructing a DynInst allocates nothing
        # per-field on the fetch hot path.
        self.src_handles: Sequence[Any] = ()
        self.src_values: Sequence[Any] = ()
        #: Outstanding source operands; the instruction enters the
        #: scheduler's ready structure exactly once, when this reaches
        #: zero (at dispatch, or at the producer writeback that clears
        #: the last operand — see ``OutOfOrderCore._complete``).
        self.wait_count = 0
        self.dest_handle: Any = None

        self.issued = False
        self.completed = False
        self.squashed = False
        self.committed = False

        # Architecture-specific tags: MSP StateId; ROB index or checkpoint
        # id live in ``tag``.  ``tag`` must default to None — CPR probes
        # it to memoise the checkpoint decision across stalled retries.
        self.tag: Any = None

        # Everything below is written before it is read on the paths
        # that need it, so the constructor — one per *fetched*
        # instruction instance, wrong paths included — skips the stores:
        #
        # * ``dispatch_cycle`` / ``earliest_issue_cycle`` — set when
        #   dependencies are wired at dispatch;
        # * ``prediction`` / ``predicted_taken`` / ``predicted_target``
        #   — set at fetch for control transfers (their only readers);
        # * ``actual_taken`` / ``actual_target`` / ``mispredicted`` /
        #   ``result`` / ``mem_addr`` — set at execute/resolve;
        # * ``store_entry`` — set at dispatch for stores;
        # * ``stateid`` — set at rename (MSP);
        # * ``ghr_at_fetch`` — set by the fetch engine immediately after
        #   construction.

    @property
    def next_pc(self) -> int:
        """Architecturally correct next PC (valid once executed)."""
        target = getattr(self, "actual_target", None)
        if target is not None:
            return target
        return self.pc + 1

    def __repr__(self) -> str:
        flags = "".join((
            "I" if self.issued else "-",
            "C" if self.completed else "-",
            "X" if self.squashed else "-",
        ))
        return f"DynInst(#{self.seq} pc={self.pc} {self.inst!r} {flags})"
