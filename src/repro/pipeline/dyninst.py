"""Dynamic (in-flight) instruction record.

One :class:`DynInst` is created per *fetched* instruction instance —
including wrong-path instances — and carries everything the backend needs:
renamed operands, execution status, branch prediction context and the
architecture-specific tags (ROB slot / checkpoint id / StateId).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.branch.base import Prediction
from repro.isa.instructions import Instruction


class DynInst:
    """One dynamic instance of a static instruction."""

    __slots__ = (
        "seq", "pc", "inst",
        "src_handles", "src_values", "wait_count",
        "dest_handle",
        "dispatch_cycle", "earliest_issue_cycle",
        "issued", "completed", "squashed", "committed",
        "result",
        "prediction", "predicted_taken", "predicted_target",
        "actual_taken", "actual_target", "mispredicted",
        "mem_addr", "store_entry",
        "stateid", "tag", "ghr_at_fetch",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst

        # Renamed sources: architecture-specific operand handles.
        self.src_handles: List[Any] = []
        self.src_values: List[Any] = []
        self.wait_count = 0
        self.dest_handle: Any = None

        self.dispatch_cycle = -1
        self.earliest_issue_cycle = 0
        self.issued = False
        self.completed = False
        self.squashed = False
        self.committed = False
        self.result: Any = None

        # Control-flow context.
        self.prediction: Optional[Prediction] = None
        self.predicted_taken = False
        self.predicted_target: Optional[int] = None
        self.actual_taken = False
        self.actual_target: Optional[int] = None
        self.mispredicted = False

        # Memory context.
        self.mem_addr: Optional[int] = None
        self.store_entry: Any = None

        # Architecture-specific tags: MSP StateId; ROB index or checkpoint
        # id live in ``tag``.
        self.stateid = 0
        self.tag: Any = None
        #: predictor global history at fetch, before this instruction's
        #: own prediction (for history repair on recovery).
        self.ghr_at_fetch: Any = None

    @property
    def next_pc(self) -> int:
        """Architecturally correct next PC (valid once executed)."""
        if self.actual_target is not None:
            return self.actual_target
        return self.pc + 1

    def __repr__(self) -> str:
        flags = "".join((
            "I" if self.issued else "-",
            "C" if self.completed else "-",
            "X" if self.squashed else "-",
        ))
        return f"DynInst(#{self.seq} pc={self.pc} {self.inst!r} {flags})"
