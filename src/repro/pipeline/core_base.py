"""Shared out-of-order core engine.

The three machines (baseline ROB, CPR, MSP) share this cycle-level engine:
fetch, dispatch, operand wakeup, issue with functional-unit limits,
execution with real data values (execution-driven, including wrong paths),
store-queue forwarding and squash bookkeeping. Subclasses plug in exactly
the parts the paper says differ:

* renaming / resource allocation (``rename`` / ``dispatch_blocked``),
* commit (``commit_stage``),
* recovery (``recover_from_branch`` / ``take_exception``),
* physical-register storage (``handle_ready`` / ``read_operand`` /
  ``write_result``),
* port arbitration (``acquire_read_ports`` / ``filter_writebacks``).

In-flight state is structure-of-arrays: one :class:`InflightWindow`
column per field, indexed by ``seq & mask`` (see
:mod:`repro.pipeline.window`).  Static per-PC metadata (kind, FU code,
latency, sources, semantics fn) comes from the program's predecoded
columns, so the hot loops never touch an ``Instruction`` object.  All
engine-to-architecture hooks identify an instruction by ``(seq, slot)``.

Stage evaluation order within a cycle is commit -> writeback -> issue ->
dispatch -> fetch, so results written back in cycle *t* can wake a
consumer that issues in *t* (standard back-to-back scheduling) while
newly dispatched instructions first become issue-eligible in *t+1*
(*t+2* with the MSP arbitration stage).

Two interchangeable backend schedulers drive issue/wakeup
(``SimConfig.scheduler``):

* ``"scan"`` — the original per-cycle loop: every ready candidate is
  heap-popped, examined and re-pushed each cycle, completion buckets are
  filtered lazily, and every cycle is simulated even when nothing can
  happen.  Kept verbatim as the reference oracle.
* ``"event"`` (default) — the ready window is ONE sorted-by-seq list
  that each candidate enters exactly once (at dispatch, or when its
  last operand arrives); the per-cycle walk examines the front of the
  window in place with no heap churn, squash unlinks waiters from the
  wakeup map and purges stale completion events instead of leaving
  zombies, and ``run`` skips provably idle stretches (no completions
  due, fetch stalled, dispatch blocked, nothing issuable) in one jump
  to the next event time while replaying the per-cycle stall
  accounting in bulk.

Both schedulers produce bit-identical :class:`SimStats` — the event
walk examines candidates in the same seq order, consumes the same
``max_issue_scan`` budget (including for blocked, not-yet-eligible and
stale entries) and defers for the same reasons; the idle skip engages
only after a cycle whose observed effect was provably nothing but
counter ticks.

Stale seq references (scan-heap zombies, waiting-list leftovers,
completion-bucket entries) are detected by slot ownership:
``window.sq[s & mask] != s`` means the slot was recycled, which can
only happen after ``s`` was squashed or committed — semantically the
old ``di.squashed`` test.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from collections import deque
from heapq import heappush, heappop
from typing import Any, Deque, Dict, List, Optional

#: Unsigned 64-bit mask — ``effective_address`` fast path for int bases
#: (``wrap_int(base + imm) & mask`` equals ``(base + imm) & mask``).
_ADDR_MASK = (1 << 64) - 1

from repro.branch import BranchTargetBuffer, make_predictor
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.semantics import effective_address
from repro.memory.cache import MemoryHierarchy
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.resources import FunctionalUnitPool, LoadBuffer
from repro.pipeline.stats import SimStats
from repro.pipeline.window import (COMPLETED, ISSUED, MISPRED, SQUASHED,
                                   InflightWindow)
from repro.storequeue.queue import StoreQueue

_HALT = Op.HALT.value
_FLD = Op.FLD.value

#: fault_seq sentinel for exceptions: every squashed executed instruction
#: is on the correct path (will be re-fetched identically).
FAULT_NONE = 1 << 62


class OutOfOrderCore(ABC):
    """Cycle-level execution-driven out-of-order core."""

    #: Extra pipe stages between rename and first issue eligibility
    #: (the MSP arbitration stage sets this to 1).
    extra_dispatch_delay = 0

    #: Initial in-flight ring capacity.  The baseline ROB bounds its
    #: window structurally; CPR/MSP can keep more in flight, so they
    #: start bigger.  Either way :class:`InflightWindow` grows on
    #: demand — this is a starting point, not a limit.
    window_capacity = 1024

    def __init__(self, program: Program, config) -> None:
        self.program = program
        self.config = config
        self.stats = SimStats()

        #: Structure-of-arrays in-flight state, shared with fetch.
        self.w = InflightWindow(self.window_capacity)
        self._dec = program.decoded

        self.hierarchy = MemoryHierarchy.from_config(config)
        if config.warm_caches:
            self.hierarchy.warm(range(len(program)),
                                program.memory_line_addrs)
        self.predictor = make_predictor(config.predictor,
                                        **config.predictor_kwargs)
        self.btb = BranchTargetBuffer()
        self.fetch = FetchEngine(program, self.hierarchy, self.predictor,
                                 self.btb, width=config.fetch_width,
                                 window=self.w)
        self.fetch.oldest_live = self._oldest_live
        self.fus = FunctionalUnitPool(config.int_units, config.fp_units,
                                      config.ldst_units, config.issue_width)
        self.load_buffer = LoadBuffer(config.load_buffer)
        self.sq = StoreQueue(config.sq_l1, config.sq_l2,
                             config.l2_forward_penalty)

        #: Committed architectural memory state.
        self.memory: Dict[int, Any] = dict(program.initial_memory)

        self.now = 0
        self.done = False
        #: Dispatched, uncommitted seqs, oldest first (the ROB view).
        self.in_flight: Deque[int] = deque()
        self.iq_count = 0
        scheduler = getattr(config, "scheduler", "event")
        if scheduler not in ("event", "scan"):
            raise ValueError(f"unknown scheduler {scheduler!r}; "
                             f"choose 'event' or 'scan'")
        #: True for the event-driven scheduler, False for the reference
        #: per-cycle scan loop.
        self._sched_event = scheduler == "event"
        self._ready: List[int] = []                # scan: heap of seqs
        #: Event scheduler's ready window: seqs sorted ascending.  An
        #: instruction enters exactly once — at dispatch when all
        #: operands are ready, else when its last operand writes back.
        self._ready_list: List[int] = []
        self._waiting: Dict[Any, List[int]] = {}
        self._completions: Dict[int, List[int]] = {}
        # Stores waiting for their address operand (early AGU).
        self._addr_watch: Dict[Any, List[int]] = {}

        # Event-scheduler idle-skip bookkeeping (see ``run``).
        self._quiet = False                 # last cycle changed nothing
        self._last_stall_reason: Optional[str] = None
        self._wb_live = False               # writeback processed work
        self._ready_dropped = False         # walk dropped stale entries
        self._next_timed: Optional[int] = None  # earliest pending-issue
        #: Cycles elided by the idle skip (diagnostics; included in
        #: ``stats.cycles`` — the skip is accounting-exact).
        self.skipped_cycles = 0

        # Hot-path specialisation for the event scheduler.  Hook-override
        # flags let the per-instruction loops skip calls that would hit
        # the base class's no-op implementations; the operand tables are
        # published by subclasses whose register file is a flat
        # int-indexed (value, ready) list pair so the core can index it
        # directly instead of paying a method call per operand.  None of
        # this changes behaviour — the scan oracle always goes through
        # the virtual calls.
        base = OutOfOrderCore
        cls = type(self)
        self._has_read_ports = (
            cls.acquire_read_ports is not base.acquire_read_ports)
        self._has_wb_filter = (
            cls.filter_writebacks is not base.filter_writebacks)
        self._has_on_complete = cls.on_complete is not base.on_complete
        self._has_begin_issue = (
            cls.begin_issue_cycle is not base.begin_issue_cycle)
        self._has_begin_dispatch = (
            cls.begin_dispatch_cycle is not base.begin_dispatch_cycle)
        #: ``phys_ready`` list for direct ``handle_ready`` indexing
        #: (baseline and CPR publish it), or None.
        self._ready_table: Optional[List[bool]] = None
        #: ``phys_value`` list for direct side-effect-free peeks and
        #: result writes (baseline and CPR — both store values in a flat
        #: list and mark ready on writeback), or None.  MSP keeps the
        #: virtual calls (banked storage).
        self._value_table: Optional[List] = None
        #: True when ``read_operand`` is a pure table read (baseline;
        #: CPR reads must release reader reference counts).
        self._read_direct = False

        #: Per-static-instruction execute closures (event scheduler),
        #: built lazily at the first ``run`` when ``config.codegen`` —
        #: see :mod:`repro.pipeline.codegen`.  None = generic ladder.
        self._exec_fns: Optional[List] = None
        self._codegen_built = False

        #: Observability hook slots (``repro.obs``), pre-bound to None
        #: so every emission site is a single attribute test when
        #: telemetry is off — the same idiom as the specialisation
        #: flags above.  Armed via :meth:`attach_tracer` /
        #: :meth:`attach_metrics`; the fused baseline loop falls back
        #: to this generic (hook-bearing, bit-identical) engine while
        #: either is armed.
        self.tracer = None
        self._metrics = None

        self.commit_ordinal = 0
        self.exception_plan = set(config.exception_ordinals)
        self._exceptions_taken: set = set()
        #: PCs of committed instructions, in order (when record_commits).
        self.commit_trace: Optional[List[int]] = (
            [] if config.record_commits else None)

    def _oldest_live(self) -> int:
        """Oldest seq whose window slot must stay intact (ring growth)."""
        if self.in_flight:
            return self.in_flight[0]
        buffer = self.fetch.buffer
        return buffer[0] if buffer else self.fetch.next_seq

    # ------------------------------------------------------------------ #
    # Checkpoint seeding and warm-state injection (sampled simulation).
    # ------------------------------------------------------------------ #

    def seed_architectural_state(self, state) -> None:
        """Start this (fresh) core from an architectural checkpoint
        (:class:`~repro.isa.emulator.EmulatorState`) instead of the
        program entry: PC, committed memory and every logical register
        take the checkpoint's values. Must be called before the first
        cycle — the identity rename mappings set up at construction are
        what make per-logical-register seeding sufficient.

        The memory copy below is load-bearing: the sampled engine
        hands out copy-on-write checkpoints that alias the emulator's
        live dict (``Emulator.snapshot(share=True)``), so the core must
        never write through ``state.memory``."""
        if self.now or self.stats.cycles or self.fetch.fetched:
            raise RuntimeError("seed_architectural_state requires a "
                               "fresh core (no cycles simulated yet)")
        self.fetch.pc = state.pc
        self.memory = dict(state.memory)
        for logical, value in enumerate(state.regs):
            self.seed_register(logical, value)
        self.on_seeded(state.pc)

    def seed_register(self, logical: int, value) -> None:
        """Set the initial architectural value of ``logical`` (each
        machine stores it in its own register organisation)."""
        raise NotImplementedError

    def on_seeded(self, pc: int) -> None:
        """Architecture hook after checkpoint seeding (CPR re-anchors
        its initial checkpoint here)."""

    def install_warm_state(self, predictor=None, btb=None,
                           hierarchy=None, confidence=None) -> None:
        """Replace branch predictor / BTB / cache hierarchy with
        pre-warmed instances (the sampling engine's functional warm-up
        trains them on the fast-forwarded stream). ``confidence`` is
        accepted for CPR's estimator and ignored elsewhere."""
        if predictor is not None:
            self.predictor = predictor
            self.fetch.predictor = predictor
        if btb is not None:
            self.btb = btb
            self.fetch.btb = btb
        if hierarchy is not None:
            self.hierarchy = hierarchy
            self.fetch.hierarchy = hierarchy

    # ------------------------------------------------------------------ #
    # Observability (repro.obs).
    # ------------------------------------------------------------------ #

    def attach_tracer(self, tracer) -> None:
        """Arm pipeline lifecycle tracing
        (:class:`repro.obs.PipelineTracer`)."""
        self.tracer = tracer
        self.fetch.tracer = tracer

    def attach_metrics(self, recorder) -> None:
        """Arm interval metrics sampling
        (:class:`repro.obs.IntervalRecorder`)."""
        recorder.bind(self)
        self._metrics = recorder

    # ------------------------------------------------------------------ #
    # Top level.
    # ------------------------------------------------------------------ #

    def _maybe_build_codegen(self) -> None:
        """Instantiate per-static-instruction closures for this core.

        Deferred to the first ``run`` call on purpose: seeding and
        warm-state injection (sampled simulation) rebind ``memory`` /
        ``predictor`` / ``hierarchy``, and the closures bake direct
        references to those objects as argument defaults."""
        self._codegen_built = True
        if not getattr(self.config, "codegen", True):
            return
        if not self._sched_event:
            return                       # the scan oracle stays generic
        from repro.pipeline import codegen
        self._exec_fns = codegen.build_exec_fns(self)
        if self._exec_fns is not None:
            self.w.add_on_grow(self._rebuild_codegen)

    def _rebuild_codegen(self) -> None:
        """Window growth doubled the mask the closures baked in —
        regenerate them against the (in-place mutated) columns."""
        from repro.pipeline import codegen
        fns = codegen.build_exec_fns(self)
        if fns is not None and self._exec_fns is not None:
            self._exec_fns[:] = fns

    def run(self, max_instructions: int = 50_000,
            max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until ``max_instructions`` commit, HALT, or cycle cap."""
        cycle_cap = max_cycles if max_cycles is not None \
            else max_instructions * 200 + 100_000
        stats = self.stats
        if not self._codegen_built:
            self._maybe_build_codegen()
        if not self._sched_event:
            while (not self.done and stats.committed < max_instructions
                   and stats.cycles < cycle_cap):
                self.cycle()
            return stats
        while (not self.done and stats.committed < max_instructions
               and stats.cycles < cycle_cap):
            self.cycle()
            if self._quiet and self.commit_settled():
                bound = self._next_event_cycle()
                horizon = self.now + (cycle_cap - stats.cycles)
                if bound is None or bound > horizon:
                    bound = horizon
                if bound > self.now:
                    self._skip_quiet_cycles(bound - self.now)
        return stats

    def cycle(self) -> None:
        now = self.now
        stats = self.stats
        stats.cycles += 1
        if not self._sched_event:
            self.commit_stage(now)
            if not self.done:
                self.writeback_stage(now)
                self.issue_stage(now)
                self.dispatch_stage(now)
                self.fetch.cycle(now)
            self.now = now + 1
            return
        fetch = self.fetch
        before = (stats.committed, stats.issued, stats.dispatched,
                  stats.recoveries, stats.exceptions_taken,
                  stats.checkpoints_created, stats.squashed, fetch.fetched)
        self._wb_live = False
        self._ready_dropped = False
        self._last_stall_reason = None
        self.commit_stage(now)
        if not self.done:
            self.writeback_stage(now)
            self.issue_stage(now)
            self.dispatch_stage(now)
            fetch.cycle(now)
        self._quiet = (not self.done and not self._wb_live
                       and not self._ready_dropped
                       and before == (stats.committed, stats.issued,
                                      stats.dispatched, stats.recoveries,
                                      stats.exceptions_taken,
                                      stats.checkpoints_created,
                                      stats.squashed, fetch.fetched))
        self.now = now + 1

    # ------------------------------------------------------------------ #
    # Idle skip (event scheduler): a *quiet* cycle changed no machine
    # state — nothing committed, wrote back, issued, dispatched or
    # fetched, no recovery ran and the ready window kept every entry.
    # Re-simulating such cycles until the next event only ticks the same
    # counters, so ``run`` jumps straight to the earliest cycle at which
    # anything can happen and replays the per-cycle accounting in bulk.
    # ------------------------------------------------------------------ #

    def _next_event_cycle(self) -> Optional[int]:
        """Earliest future cycle at which machine state can change:
        the next completion event, the cycle a stalled fetch resumes,
        or the cycle a dispatched-but-not-yet-eligible instruction in
        the examined issue window becomes issuable. ``None`` when no
        event is pending (the machine can only spin to its cycle cap).
        """
        bound: Optional[int] = None
        if self._completions:
            bound = min(self._completions)
        fetch = self.fetch
        if not fetch.halted and len(fetch.buffer) < fetch.buffer_capacity:
            resume = fetch.stalled_until
            if bound is None or resume < bound:
                bound = resume
        timed = self._next_timed
        if timed is not None and (bound is None or timed < bound):
            bound = timed
        return bound

    def _skip_quiet_cycles(self, count: int) -> None:
        """Account ``count`` quiet cycles without simulating them."""
        self.stats.cycles += count
        self.skipped_cycles += count
        reason = self._last_stall_reason
        if reason is not None:
            self.stats.dispatch_stall_cycles[reason] += count
            self.on_dispatch_stall_bulk(reason, count)
        self.fetch.skip_cycles(self.now, count)
        self.now += count

    def commit_settled(self) -> bool:
        """True when re-running the commit stage against frozen machine
        state is a provable no-op, so quiet cycles may be skipped in
        bulk (MSP requires its pipelined LCS min-tree to have drained
        to a fixpoint)."""
        return True

    # ------------------------------------------------------------------ #
    # Writeback / completion.
    # ------------------------------------------------------------------ #

    def writeback_stage(self, now: int) -> None:
        completed = self._completions.pop(now, None)
        if not completed:
            return
        # Resolve strictly oldest-first.  Buckets accumulate in issue
        # order, so a younger long-latency branch could otherwise be
        # examined before an older same-cycle mispredict: it would train
        # the predictor, repair history and trigger a recovery of its
        # own even though the older branch's squash is about to prove it
        # wrong-path — re-repairing history and double-squashing state.
        # Age order makes the older squash land first, and the squashed
        # younger completions below are simply dropped.
        if len(completed) > 1:
            completed.sort()
        w = self.w
        mask = w.mask
        w_sq, w_st = w.sq, w.st
        live = [s for s in completed
                if w_sq[s & mask] == s and not w_st[s & mask] & SQUASHED]
        if not live:
            return
        self._wb_live = True
        if self._has_wb_filter:
            accepted, deferred = self.filter_writebacks(live, now)
            for s in deferred:
                self._completions.setdefault(now + 1, []).append(s)
        else:
            accepted = live
        complete = self._complete
        for s in accepted:
            slot = s & mask
            if w_st[slot] & SQUASHED:
                continue  # an earlier completion this cycle recovered
            complete(s, slot, now)

    def _complete(self, seq: int, slot: int, now: int) -> None:
        w = self.w
        w.st[slot] |= COMPLETED
        if self.tracer is not None:
            self.tracer.writeback(seq, now)
        pc = w.pc[slot]
        dec = self._dec
        kind = dec.kind[pc]
        if dec.wreg[pc]:
            dest = w.dest[slot]
            result = w.res[slot]
            values = self._value_table
            if values is not None:
                values[dest] = result
                self._ready_table[dest] = True
            else:
                self.write_result(slot)
            waiters = self._waiting.pop(dest, None)
            if waiters:
                wake = (self._ready_insert if self._sched_event
                        else self._ready_push)
                mask = w.mask
                w_sq, w_st, w_wc = w.sq, w.st, w.wc
                for ws in waiters:
                    wslot = ws & mask
                    if w_sq[wslot] != ws or w_st[wslot] & SQUASHED:
                        continue
                    count = w_wc[wslot] - 1
                    w_wc[wslot] = count
                    if count == 0:
                        wake(ws)
            watchers = self._addr_watch.pop(dest, None)
            if watchers:
                mask = w.mask
                w_sq, w_st = w.sq, w.st
                imms = dec.imm
                for ws in watchers:
                    wslot = ws & mask
                    if w_sq[wslot] == ws and not w_st[wslot] & SQUASHED:
                        addr = effective_address(result,
                                                 imms[w.pc[wslot]])
                        self.sq.set_address(w.se[wslot], addr)
        elif kind == 5:                  # store
            self.sq.execute(w.se[slot], w.ma[slot], w.sval[slot])
        if self._has_on_complete:
            self.on_complete(seq, slot)
        if kind == 1 or kind == 2 or kind == 3:
            self._resolve_control(seq, slot, pc, kind, now)

    def _ready_push(self, seq: int) -> None:
        heappush(self._ready, seq)

    def _ready_insert(self, seq: int) -> None:
        """Admit ``seq`` to the event scheduler's sorted ready window."""
        window = self._ready_list
        if not window or window[-1] < seq:
            window.append(seq)
        else:
            insort(window, seq)

    def _resolve_control(self, seq: int, slot: int, pc: int, kind: int,
                         now: int) -> None:
        w = self.w
        mispredicted = False
        if kind == 1:                    # conditional branch
            self.stats.branches += 1
            taken = w.atk[slot]
            prediction = w.pred[slot]
            self.predictor.update(prediction, taken)
            mispredicted = taken != w.ptk[slot]
            self.on_branch_resolved(slot, mispredicted)
            if mispredicted:
                self.stats.branch_mispredictions += 1
                # Repair speculative global history with the real outcome.
                prediction.taken = taken
                self.predictor.restore(prediction)
        elif kind == 3:                  # indirect jump
            target = w.atg[slot]
            correct = target == w.ptg[slot]
            self.btb.update(pc, target, correct)
            self.on_branch_resolved(slot, not correct)
            mispredicted = not correct
            ghr = w.ghr[slot]
            if mispredicted and ghr is not None:
                # Wipe squashed younger branches' speculative history
                # (an indirect jump shifts no direction history itself).
                self.predictor.set_history(ghr)
        if mispredicted:
            w.st[slot] |= MISPRED
            self.stats.recoveries += 1
            self.recover_from_branch(seq, slot, now)

    # ------------------------------------------------------------------ #
    # Issue / execute.
    # ------------------------------------------------------------------ #

    def issue_stage(self, now: int) -> None:
        if self._sched_event:
            self._issue_stage_event(now)
        else:
            self._issue_stage_scan(now)

    def _issue_stage_scan(self, now: int) -> None:
        """Reference issue loop: pop every candidate from the ready
        heap, re-pushing the ones that cannot issue this cycle."""
        self.fus.new_cycle()
        self.begin_issue_cycle()
        deferred: List[int] = []
        scanned = 0
        w = self.w
        mask = w.mask
        w_sq, w_st, w_eic, w_pc = w.sq, w.st, w.eic, w.pc
        dec = self._dec
        while (self._ready and self.fus.slots_left > 0
               and scanned < self.config.max_issue_scan):
            s = heappop(self._ready)
            scanned += 1
            slot = s & mask
            if w_sq[slot] != s or w_st[slot] & (SQUASHED | ISSUED):
                continue
            if w_eic[slot] > now:
                deferred.append(s)
                continue
            pc = w_pc[slot]
            kind = dec.kind[pc]
            if kind == 4:                # load
                addr = effective_address(
                    self.peek_operand(w.h0[slot]), dec.imm[pc])
                if self.sq.load_blocked(addr, s):
                    deferred.append(s)   # unresolved/conflicting store
                    continue
            if not self.fus.can_issue_code(dec.fu[pc]):
                deferred.append(s)
                continue
            if not self.acquire_read_ports(slot, pc):
                deferred.append(s)       # MSP bank read-port conflict
                continue
            self._issue(s, slot, pc, kind, now)
        for s in deferred:
            heappush(self._ready, s)

    def _issue_stage_event(self, now: int) -> None:
        """Event-scheduler issue walk: examine the front of the sorted
        ready window in place.  Identical candidate order, deferral
        rules and ``max_issue_scan`` budget accounting as the scan loop
        (stale and not-yet-eligible entries consume budget in both), but
        blocked candidates simply stay put instead of being heap-popped
        and re-pushed, and issued/stale entries are compacted out."""
        window = self._ready_list
        if not window:
            self._next_timed = None
            return
        fus = self.fus
        fus.new_cycle()
        if self._has_begin_issue:
            self.begin_issue_cycle()
        check_ports = self._has_read_ports
        values = self._value_table
        issue = self._issue
        sq = self.sq
        sq_pending = sq._pending_data
        # The SQ only changes between walks; unresolved-address seqs
        # iterate in ascending order, so the "any older store with an
        # unknown address" half of load_blocked is one compare.
        sq_oldest_unknown = -1
        for _q in sq._unknown_addr:
            sq_oldest_unknown = _q
            break
        fu_used = fus._used
        fu_limits = fus._limits
        budget = self.config.max_issue_scan
        slots = fus.issue_width
        next_timed: Optional[int] = None
        w = self.w
        mask = w.mask
        w_sq, w_st, w_eic, w_pc, w_h0 = w.sq, w.st, w.eic, w.pc, w.h0
        w_ma = w.ma
        dec = self._dec
        kinds, imms, fu_codes = dec.kind, dec.imm, dec.fu
        exec_fns = self._exec_fns
        tracer = self.tracer
        stats = self.stats
        read = 0
        write = 0
        n = len(window)
        if budget < n:
            n = budget                         # scan-budget cap
        while read < n:
            s = window[read]
            read += 1
            slot = s & mask
            st = w_st[slot]
            if w_sq[slot] != s or st & 5:      # stale, squashed or issued
                self._ready_dropped = True
                continue                       # compacted out
            eic = w_eic[slot]
            if eic > now:
                if next_timed is None or eic < next_timed:
                    next_timed = eic
                window[write] = s
                write += 1
                continue
            pc = w_pc[slot]
            kind = kinds[pc]
            if kind == 4:                      # load
                # The base register cannot be freed or rewritten while
                # the load is in flight (commit is in order), so the
                # effective address is computed once and memoised in the
                # ``ma`` column across blocked re-visits.
                addr = w_ma[slot]
                if addr < 0:
                    base = (values[w_h0[slot]] if values is not None
                            else self.peek_operand(w_h0[slot]))
                    if type(base) is int:
                        addr = (base + imms[pc]) & _ADDR_MASK
                    else:
                        addr = effective_address(base, imms[pc])
                    w_ma[slot] = addr
                # StoreQueue.load_blocked, inline.
                if -1 < sq_oldest_unknown < s:
                    window[write] = s          # unresolved older store
                    write += 1
                    continue
                if sq_pending:
                    pend = sq_pending.get(addr)
                    if pend is not None:
                        blocked = False
                        for _e in pend:
                            if _e.seq < s:
                                blocked = True
                                break
                        if blocked:            # conflicting older store
                            window[write] = s
                            write += 1
                            continue
            code = fu_codes[pc]
            if fu_used[code] >= fu_limits[code]:
                window[write] = s
                write += 1
                continue
            if check_ports and not self.acquire_read_ports(slot, pc):
                window[write] = s              # MSP bank read-port conflict
                write += 1
                continue
            if exec_fns is not None:           # per-static codegen path
                w_st[slot] = st | 1
                if tracer is not None:
                    tracer.issue(s, now)
                stats.issued += 1
                fu_used[code] += 1
                fus._issued_total += 1
                self.iq_count -= 1
                exec_fns[pc](s, slot, now)
            else:
                issue(s, slot, pc, kind, now)  # compacted out
            slots -= 1
            if slots <= 0:
                break
        if write != read:
            del window[write:read]
        self._next_timed = next_timed

    def _issue(self, seq: int, slot: int, pc: int, kind: int,
               now: int) -> None:
        w = self.w
        w.st[slot] |= ISSUED
        if self.tracer is not None:
            self.tracer.issue(seq, now)
        dec = self._dec
        self.stats.issued += 1
        self.fus.issue_code(dec.fu[pc])
        self.iq_count -= 1
        nsrc = dec.nsrc[pc]
        v0 = v1 = None
        if nsrc:
            if self._read_direct:
                values = self._value_table
                v0 = values[w.h0[slot]]
                if nsrc > 1:
                    v1 = values[w.h1[slot]]
            else:
                v0 = self.read_operand(w.h0[slot])
                if nsrc > 1:
                    v1 = self.read_operand(w.h1[slot])
        latency = self._execute(seq, slot, pc, kind, v0, v1)
        completions = self._completions
        finish = now + latency
        w.fin[slot] = finish
        bucket = completions.get(finish)
        if bucket is None:
            completions[finish] = [seq]
        else:
            bucket.append(seq)

    def _execute(self, seq: int, slot: int, pc: int, kind: int,
                 v0, v1) -> int:
        """Functional execution; returns result latency in cycles."""
        w = self.w
        dec = self._dec
        if kind == 0:                        # plain register-writing op
            srcs = (v0, v1) if dec.nsrc[pc] > 1 \
                else ((v0,) if dec.nsrc[pc] else ())
            w.res[slot] = dec.evalf[pc](srcs, dec.imm[pc])
            return dec.lat[pc]
        if kind == 1:                        # conditional branch
            srcs = (v0, v1) if dec.nsrc[pc] > 1 else (v0,)
            w.atk[slot] = taken = dec.branchf[pc](srcs)
            w.atg[slot] = dec.target[pc] if taken else pc + 1
            return dec.lat[pc]
        if kind == 4:                        # load
            imm = dec.imm[pc]
            if type(v0) is int:
                addr = (v0 + imm) & _ADDR_MASK
            else:
                addr = effective_address(v0, imm)
            w.ma[slot] = addr
            forwarded, penalty = self.sq.forward(addr, seq)
            is_fld = dec.code[pc] == _FLD
            if forwarded is not None:
                w.res[slot] = float(forwarded) if is_fld else forwarded
                return 1 + penalty
            value = self.memory.get(addr, 0)
            w.res[slot] = float(value) if is_fld else value
            return self.hierarchy.load_latency(addr)
        if kind == 5:                        # store
            imm = dec.imm[pc]
            w.sval[slot] = v0
            if type(v1) is int:
                w.ma[slot] = (v1 + imm) & _ADDR_MASK
            else:
                w.ma[slot] = effective_address(v1, imm)
            return 1
        if kind == 2:                        # direct jump
            w.atk[slot] = True
            w.atg[slot] = dec.target[pc]
            return dec.lat[pc]
        if kind == 3:                        # indirect jump
            w.atk[slot] = True
            w.atg[slot] = int(v0)
            return dec.lat[pc]
        raise AssertionError(f"kind {kind} reached execute")

    # ------------------------------------------------------------------ #
    # Dispatch (rename + allocate).
    # ------------------------------------------------------------------ #

    def dispatch_stage(self, now: int) -> None:
        buffer = self.fetch.buffer
        if not buffer:
            return
        if self._has_begin_dispatch or not self._sched_event:
            self.begin_dispatch_cycle()
        rename_width = self.config.rename_width
        iq_size = self.config.iq_size
        w = self.w
        mask = w.mask
        dec = self._dec
        moved = 0
        stall_reason: Optional[str] = None
        while moved < rename_width and buffer:
            s = buffer[0]
            slot = s & mask
            pc = w.pc[slot]
            kind = dec.kind[pc]
            if kind == 6:                # NOP/HALT
                buffer.pop(0)
                w.st[slot] |= COMPLETED
                self.assign_state_tag(slot)
                self.in_flight.append(s)
                self.stats.dispatched += 1
                if self.tracer is not None:
                    self.tracer.dispatch(s, now)
                moved += 1
                continue

            if self.iq_count >= iq_size:
                stall_reason = "iq_full"
                break
            if kind == 4 and self.load_buffer.is_full():
                stall_reason = "load_buffer_full"
                break
            if kind == 5 and self.sq.is_full():
                stall_reason = "store_queue_full"
                break
            stall_reason = self.dispatch_blocked(s, slot, pc, moved)
            if stall_reason is not None:
                break

            buffer.pop(0)
            self.rename(s, slot, pc)
            self._wire_dependencies(s, slot, pc, kind, now)
            if self.tracer is not None:
                self.tracer.dispatch(s, now)
            moved += 1

        if moved == 0 and stall_reason is not None:
            self._last_stall_reason = stall_reason
            self.stats.dispatch_stall_cycles[stall_reason] += 1
            if self.tracer is not None:
                self.tracer.stall(buffer[0], now, stall_reason)
            self.on_dispatch_stall(stall_reason)

    def _wire_dependencies(self, seq: int, slot: int, pc: int, kind: int,
                           now: int) -> None:
        waiting = self._waiting
        ready_table = self._ready_table
        w = self.w
        dec = self._dec
        nsrc = dec.nsrc[pc]
        wait_count = 0
        for i in range(nsrc):
            handle = w.h0[slot] if i == 0 else w.h1[slot]
            ready = (ready_table[handle] if ready_table is not None
                     else self.handle_ready(handle))
            if not ready:
                wait_count += 1
                lst = waiting.get(handle)
                if lst is None:
                    waiting[handle] = [seq]
                else:
                    lst.append(seq)
        w.wc[slot] = wait_count
        w.eic[slot] = now + 1 + self.extra_dispatch_delay
        if kind == 5:                    # store
            w.se[slot] = self.sq.allocate(seq)
            # Early AGU: resolve the address as soon as the base operand
            # is available, possibly long before the store issues.
            base = w.h1[slot]
            if (ready_table[base] if ready_table is not None
                    else self.handle_ready(base)):
                addr = effective_address(self.peek_operand(base),
                                         dec.imm[pc])
                self.sq.set_address(w.se[slot], addr)
            else:
                self._addr_watch.setdefault(base, []).append(seq)
        elif kind == 4:                  # load
            w.ma[slot] = -1              # address memo for the issue walk
            self.load_buffer.allocate()
        self.in_flight.append(seq)
        self.iq_count += 1
        self.stats.dispatched += 1
        if wait_count == 0:
            # A freshly dispatched instruction is the youngest in the
            # machine, so the event window admits it with an append.
            if self._sched_event:
                self._ready_list.append(seq)
            else:
                heappush(self._ready, seq)

    # ------------------------------------------------------------------ #
    # Commit helpers.
    # ------------------------------------------------------------------ #

    def commit_one(self, seq: int, slot: int, now: int) -> bool:
        """Commit the in-flight head; False if an exception interrupted."""
        ordinal = self.commit_ordinal
        if (ordinal in self.exception_plan
                and ordinal not in self._exceptions_taken):
            self._exceptions_taken.add(ordinal)
            self.stats.exceptions_taken += 1
            self.stats.recoveries += 1
            self.take_exception(seq, slot, now)
            return False
        self.commit_ordinal += 1
        self.stats.committed += 1
        if self.tracer is not None:
            self.tracer.commit(seq, now, ordinal)
        metrics = self._metrics
        if metrics is not None \
                and self.stats.committed % metrics.interval == 0:
            metrics.sample(self)
        pc = self.w.pc[slot]
        if self.commit_trace is not None:
            self.commit_trace.append(pc)
        code = self._dec.code[pc]
        if self._dec.kind[pc] == 4:
            self.load_buffer.release()
        elif code == _HALT:
            self.done = True
        return True

    def pending_exception_offset(self, count: int) -> Optional[int]:
        """Offset (< count) of the first planned exception among the next
        ``count`` commit ordinals, or None. Used by CPR's bulk commit to
        pre-scan an interval before committing any of it."""
        if not self.exception_plan:
            return None
        for offset in range(count):
            ordinal = self.commit_ordinal + offset
            if (ordinal in self.exception_plan
                    and ordinal not in self._exceptions_taken):
                return offset
        return None

    def commit_store_write(self, addr: int, value) -> None:
        self.memory[addr] = value
        self.hierarchy.store_commit(addr)

    def repair_history_at(self, slot: int) -> None:
        """Restore predictor history to the point just before this
        instruction was fetched (exception recovery re-fetches its PC)."""
        ghr = self.w.ghr[slot]
        if ghr is not None:
            self.predictor.set_history(ghr)

    # ------------------------------------------------------------------ #
    # Squash.
    # ------------------------------------------------------------------ #

    def squash_after(self, boundary_seq: int,
                     fault_seq: int) -> List[int]:
        """Remove every in-flight instruction with ``seq > boundary_seq``.

        ``fault_seq`` classifies the Fig. 9 accounting: squashed *issued*
        instructions with ``seq > fault_seq`` were wrong-path; the rest
        were correct-path work that will be re-executed (CPR rollback past
        a checkpoint, or an exception replay).

        Returns the squashed seqs, youngest first, so the architecture
        can undo its own state for them (their window slots stay owned
        until fetch recycles them, so columns remain readable).

        The event scheduler additionally unlinks each squashed waiter
        from the per-operand wakeup map and purges the squashed
        instructions' pending completion events, so a producer that
        later reuses a freed register handle never walks zombie waiter
        lists and the completion wheel holds no stale wakeup times (the
        idle skip keys its next-event bound off that wheel).  Entries
        already admitted to the ready window are left to be dropped by
        the next walk — exactly when the reference scan loop would pop
        and discard them, so the shared ``max_issue_scan`` budget
        accounting stays bit-identical.
        """
        squashed: List[int] = []
        purge = self._sched_event
        waiting = self._waiting
        addr_watch = self._addr_watch
        tracer = self.tracer
        in_flight = self.in_flight
        w = self.w
        mask = w.mask
        w_st = w.st
        dec = self._dec
        stats = self.stats
        while in_flight and in_flight[-1] > boundary_seq:
            s = in_flight.pop()
            slot = s & mask
            st = w_st[slot]
            w_st[slot] = st | SQUASHED
            squashed.append(s)
            if tracer is not None:
                tracer.squash(s, self.now)
            stats.squashed += 1
            pc = w.pc[slot]
            kind = dec.kind[pc]
            if st & ISSUED:
                if s > fault_seq:
                    stats.wrong_path_executed += 1
                else:
                    stats.correct_path_reexecuted += 1
            elif not st & COMPLETED:
                self.iq_count -= 1
                if purge:
                    if w.wc[slot]:
                        for i in range(dec.nsrc[pc]):
                            handle = w.h0[slot] if i == 0 else w.h1[slot]
                            lst = waiting.get(handle)
                            if lst is not None:
                                try:
                                    lst.remove(s)
                                except ValueError:
                                    pass
                    if kind == 5:
                        lst = addr_watch.get(w.h1[slot])
                        if lst is not None:
                            try:
                                lst.remove(s)
                            except ValueError:
                                pass
            if kind == 4:
                self.load_buffer.release()
        if purge and squashed:
            # Targeted purge: an issued-but-incomplete instruction has
            # exactly one pending completion event, at the cycle the
            # ``fin`` column recorded at issue.  (A bucket already
            # popped by this cycle's writeback is simply absent — its
            # in-loop ownership recheck drops the squashed entry.)
            completions = self._completions
            w_fin = w.fin
            for s in squashed:
                slot = s & mask
                st = w_st[slot]
                if st & ISSUED and not st & COMPLETED:
                    finish = w_fin[slot]
                    bucket = completions.get(finish)
                    if bucket is not None:
                        try:
                            bucket.remove(s)
                        except ValueError:
                            pass
                        if not bucket:
                            del completions[finish]
        self.sq.squash_after(boundary_seq)
        if tracer is not None:
            # Buffered (fetched, never dispatched) younger instructions
            # are dropped by the fetch engine below; trace them too so
            # the viewer closes their fetch stage.
            for s in self.fetch.buffer:
                if s > boundary_seq:
                    tracer.squash(s, self.now)
        self.fetch.squash_after(boundary_seq)
        return squashed

    # ------------------------------------------------------------------ #
    # Architecture hooks.  Instructions are identified by (seq, slot);
    # ``slot`` is ``seq & window.mask`` at call time (growth can only
    # happen at a fetch-group boundary, never between the computation of
    # a slot and the hook call that consumes it).
    # ------------------------------------------------------------------ #

    @abstractmethod
    def commit_stage(self, now: int) -> None:
        """Retire completed instructions per the machine's commit rules."""

    @abstractmethod
    def dispatch_blocked(self, seq: int, slot: int, pc: int,
                         moved: int) -> Optional[str]:
        """Stall reason preventing this instruction from dispatching."""

    @abstractmethod
    def rename(self, seq: int, slot: int, pc: int) -> None:
        """Rename sources, allocate the destination, fill h0/h1/dest."""

    @abstractmethod
    def recover_from_branch(self, seq: int, slot: int, now: int) -> None:
        """Squash and restore state for the mispredicted instruction."""

    @abstractmethod
    def take_exception(self, seq: int, slot: int, now: int) -> None:
        """Recover for an exception raised by a committable instruction."""

    @abstractmethod
    def handle_ready(self, handle: Any) -> bool:
        """Is the physical register behind ``handle`` ready to read?"""

    @abstractmethod
    def read_operand(self, handle: Any):
        """Read a (ready) physical register value."""

    @abstractmethod
    def peek_operand(self, handle: Any):
        """Read a ready value with *no* side effects (no use-bit clear,
        no reference-count release) — used by the early AGU and the
        load disambiguation check."""

    @abstractmethod
    def write_result(self, slot: int) -> None:
        """Write ``w.res[slot]`` to its destination register, mark ready."""

    def assign_state_tag(self, slot: int) -> None:
        """Tag NOP/HALT with the current state (MSP overrides)."""

    def begin_dispatch_cycle(self) -> None:
        """Per-cycle dispatch-group state reset (MSP rename limits)."""

    def begin_issue_cycle(self) -> None:
        """Per-cycle issue-port state reset (MSP read-port arbitration)."""

    def acquire_read_ports(self, slot: int, pc: int) -> bool:
        """Try to claim register-file read ports (MSP)."""
        return True

    def filter_writebacks(self, completed: List[int], now: int):
        """Split completions into (accepted, deferred) per write ports."""
        return completed, []

    def on_complete(self, seq: int, slot: int) -> None:
        """Architecture bookkeeping when an instruction finishes."""

    def on_branch_resolved(self, slot: int, mispredicted: bool) -> None:
        """CPR trains its confidence estimator here."""

    def on_dispatch_stall(self, reason: str) -> None:
        """Called when a whole dispatch cycle stalled (MSP attributes
        bank-full stalls to the blocking logical register here)."""

    def on_dispatch_stall_bulk(self, reason: str, count: int) -> None:
        """Replay ``count`` per-cycle :meth:`on_dispatch_stall` calls
        during the idle skip, in O(1) where possible.  Machine state is
        frozen across the skipped cycles, so the per-cycle hook is a
        pure function of that frozen state: one call reproduces the
        cumulative effect of ``count`` unless the hook mutates
        per-cycle counters (MSP overrides this with a bulk add).  The
        base hook is a no-op, so the default does nothing when it is
        not overridden."""
        if type(self).on_dispatch_stall is not \
                OutOfOrderCore.on_dispatch_stall:
            self.on_dispatch_stall(reason)
