"""Shared out-of-order core engine.

The three machines (baseline ROB, CPR, MSP) share this cycle-level engine:
fetch, dispatch, operand wakeup, issue with functional-unit limits,
execution with real data values (execution-driven, including wrong paths),
store-queue forwarding and squash bookkeeping. Subclasses plug in exactly
the parts the paper says differ:

* renaming / resource allocation (``rename`` / ``dispatch_blocked``),
* commit (``commit_stage``),
* recovery (``recover_from_branch`` / ``take_exception``),
* physical-register storage (``handle_ready`` / ``read_operand`` /
  ``write_result``),
* port arbitration (``acquire_read_ports`` / ``filter_writebacks``).

Stage evaluation order within a cycle is commit -> writeback -> issue ->
dispatch -> fetch, so results written back in cycle *t* can wake a
consumer that issues in *t* (standard back-to-back scheduling) while
newly dispatched instructions first become issue-eligible in *t+1*
(*t+2* with the MSP arbitration stage).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from heapq import heappush, heappop
from typing import Any, Deque, Dict, List, Optional

from repro.branch import BranchTargetBuffer, make_predictor
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.semantics import branch_taken, effective_address, evaluate
from repro.memory.cache import MemoryHierarchy
from repro.pipeline.dyninst import DynInst
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.resources import FunctionalUnitPool, LoadBuffer
from repro.pipeline.stats import SimStats
from repro.storequeue.queue import StoreQueue

#: fault_seq sentinel for exceptions: every squashed executed instruction
#: is on the correct path (will be re-fetched identically).
FAULT_NONE = 1 << 62


class OutOfOrderCore(ABC):
    """Cycle-level execution-driven out-of-order core."""

    #: Extra pipe stages between rename and first issue eligibility
    #: (the MSP arbitration stage sets this to 1).
    extra_dispatch_delay = 0

    def __init__(self, program: Program, config) -> None:
        self.program = program
        self.config = config
        self.stats = SimStats()

        self.hierarchy = MemoryHierarchy.from_config(config)
        if config.warm_caches:
            self.hierarchy.warm(range(len(program)),
                                program.memory_line_addrs)
        self.predictor = make_predictor(config.predictor,
                                        **config.predictor_kwargs)
        self.btb = BranchTargetBuffer()
        self.fetch = FetchEngine(program, self.hierarchy, self.predictor,
                                 self.btb, width=config.fetch_width)
        self.fus = FunctionalUnitPool(config.int_units, config.fp_units,
                                      config.ldst_units, config.issue_width)
        self.load_buffer = LoadBuffer(config.load_buffer)
        self.sq = StoreQueue(config.sq_l1, config.sq_l2,
                             config.l2_forward_penalty)

        #: Committed architectural memory state.
        self.memory: Dict[int, Any] = dict(program.initial_memory)

        self.now = 0
        self.done = False
        self.in_flight: Deque[DynInst] = deque()
        self.iq_count = 0
        self._ready: List = []                     # heap of (seq, DynInst)
        self._waiting: Dict[Any, List[DynInst]] = {}
        self._completions: Dict[int, List[DynInst]] = {}
        # Stores waiting for their address operand (early AGU).
        self._addr_watch: Dict[Any, List[DynInst]] = {}

        self.commit_ordinal = 0
        self.exception_plan = set(config.exception_ordinals)
        self._exceptions_taken: set = set()
        #: PCs of committed instructions, in order (when record_commits).
        self.commit_trace: Optional[List[int]] = (
            [] if config.record_commits else None)

    # ------------------------------------------------------------------ #
    # Checkpoint seeding and warm-state injection (sampled simulation).
    # ------------------------------------------------------------------ #

    def seed_architectural_state(self, state) -> None:
        """Start this (fresh) core from an architectural checkpoint
        (:class:`~repro.isa.emulator.EmulatorState`) instead of the
        program entry: PC, committed memory and every logical register
        take the checkpoint's values. Must be called before the first
        cycle — the identity rename mappings set up at construction are
        what make per-logical-register seeding sufficient.

        The memory copy below is load-bearing: the sampled engine
        hands out copy-on-write checkpoints that alias the emulator's
        live dict (``Emulator.snapshot(share=True)``), so the core must
        never write through ``state.memory``."""
        if self.now or self.stats.cycles or self.fetch.fetched:
            raise RuntimeError("seed_architectural_state requires a "
                               "fresh core (no cycles simulated yet)")
        self.fetch.pc = state.pc
        self.memory = dict(state.memory)
        for logical, value in enumerate(state.regs):
            self.seed_register(logical, value)
        self.on_seeded(state.pc)

    def seed_register(self, logical: int, value) -> None:
        """Set the initial architectural value of ``logical`` (each
        machine stores it in its own register organisation)."""
        raise NotImplementedError

    def on_seeded(self, pc: int) -> None:
        """Architecture hook after checkpoint seeding (CPR re-anchors
        its initial checkpoint here)."""

    def install_warm_state(self, predictor=None, btb=None,
                           hierarchy=None, confidence=None) -> None:
        """Replace branch predictor / BTB / cache hierarchy with
        pre-warmed instances (the sampling engine's functional warm-up
        trains them on the fast-forwarded stream). ``confidence`` is
        accepted for CPR's estimator and ignored elsewhere."""
        if predictor is not None:
            self.predictor = predictor
            self.fetch.predictor = predictor
        if btb is not None:
            self.btb = btb
            self.fetch.btb = btb
        if hierarchy is not None:
            self.hierarchy = hierarchy
            self.fetch.hierarchy = hierarchy

    # ------------------------------------------------------------------ #
    # Top level.
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int = 50_000,
            max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until ``max_instructions`` commit, HALT, or cycle cap."""
        cycle_cap = max_cycles if max_cycles is not None \
            else max_instructions * 200 + 100_000
        while (not self.done and self.stats.committed < max_instructions
               and self.stats.cycles < cycle_cap):
            self.cycle()
        return self.stats

    def cycle(self) -> None:
        now = self.now
        self.stats.cycles += 1
        self.commit_stage(now)
        if not self.done:
            self.writeback_stage(now)
            self.issue_stage(now)
            self.dispatch_stage(now)
            self.fetch.cycle(now)
        self.now = now + 1

    # ------------------------------------------------------------------ #
    # Writeback / completion.
    # ------------------------------------------------------------------ #

    def writeback_stage(self, now: int) -> None:
        completed = self._completions.pop(now, None)
        if not completed:
            return
        live = [di for di in completed if not di.squashed]
        accepted, deferred = self.filter_writebacks(live, now)
        for di in deferred:
            self._completions.setdefault(now + 1, []).append(di)
        for di in accepted:
            if di.squashed:
                continue  # an earlier completion this cycle recovered
            self._complete(di, now)

    def _complete(self, di: DynInst, now: int) -> None:
        di.completed = True
        inst = di.inst
        if inst.writes_reg:
            self.write_result(di)
            waiters = self._waiting.pop(di.dest_handle, None)
            if waiters:
                for waiter in waiters:
                    if waiter.squashed:
                        continue
                    waiter.wait_count -= 1
                    if waiter.wait_count == 0:
                        heappush(self._ready, (waiter.seq, waiter))
            watchers = self._addr_watch.pop(di.dest_handle, None)
            if watchers:
                for store in watchers:
                    if not store.squashed:
                        addr = effective_address(di.result, store.inst.imm)
                        self.sq.set_address(store.store_entry, addr)
        elif inst.is_store:
            self.sq.execute(di.store_entry, di.mem_addr, di.src_values[0])
        self.on_complete(di)
        if inst.is_control:
            self._resolve_control(di, now)

    def _resolve_control(self, di: DynInst, now: int) -> None:
        inst = di.inst
        mispredicted = False
        if inst.is_branch:
            self.stats.branches += 1
            taken = di.actual_taken
            self.predictor.update(di.prediction, taken)
            self.on_branch_resolved(di, taken != di.predicted_taken)
            if taken != di.predicted_taken:
                mispredicted = True
                self.stats.branch_mispredictions += 1
                # Repair speculative global history with the real outcome.
                di.prediction.taken = taken
                self.predictor.restore(di.prediction)
        elif inst.op is Op.JR:
            correct = di.actual_target == di.predicted_target
            self.btb.update(di.pc, di.actual_target, correct)
            self.on_branch_resolved(di, not correct)
            mispredicted = not correct
            if mispredicted and di.ghr_at_fetch is not None:
                # Wipe squashed younger branches' speculative history
                # (an indirect jump shifts no direction history itself).
                self.predictor.set_history(di.ghr_at_fetch)
        if mispredicted:
            di.mispredicted = True
            self.stats.recoveries += 1
            self.recover_from_branch(di, now)

    # ------------------------------------------------------------------ #
    # Issue / execute.
    # ------------------------------------------------------------------ #

    def issue_stage(self, now: int) -> None:
        self.fus.new_cycle()
        self.begin_issue_cycle()
        deferred: List[DynInst] = []
        scanned = 0
        while (self._ready and self.fus.slots_left > 0
               and scanned < self.config.max_issue_scan):
            _, di = heappop(self._ready)
            scanned += 1
            if di.squashed or di.issued:
                continue
            if di.earliest_issue_cycle > now:
                deferred.append(di)
                continue
            inst = di.inst
            if inst.is_load:
                addr = effective_address(
                    self.peek_operand(di.src_handles[0]), inst.imm)
                if self.sq.load_blocked(addr, di.seq):
                    deferred.append(di)   # unresolved/conflicting store
                    continue
            if not self.fus.can_issue(inst.fu_type):
                deferred.append(di)
                continue
            if not self.acquire_read_ports(di):
                deferred.append(di)       # MSP bank read-port conflict
                continue
            self._issue(di, now)
        for di in deferred:
            heappush(self._ready, (di.seq, di))

    def _issue(self, di: DynInst, now: int) -> None:
        di.issued = True
        self.stats.issued += 1
        self.fus.issue(di.inst.fu_type)
        self.iq_count -= 1
        di.src_values = [self.read_operand(handle)
                         for handle in di.src_handles]
        latency = self._execute(di)
        self._completions.setdefault(now + latency, []).append(di)

    def _execute(self, di: DynInst) -> int:
        """Functional execution; returns result latency in cycles."""
        inst = di.inst
        values = di.src_values
        if inst.is_branch:
            di.actual_taken = branch_taken(inst.op, values)
            di.actual_target = inst.target if di.actual_taken else di.pc + 1
            return inst.latency
        if inst.op is Op.JMP:
            di.actual_taken = True
            di.actual_target = inst.target
            return inst.latency
        if inst.op is Op.JR:
            di.actual_taken = True
            di.actual_target = int(values[0])
            return inst.latency
        if inst.is_load:
            addr = effective_address(values[0], inst.imm)
            di.mem_addr = addr
            forwarded, penalty = self.sq.forward(addr, di.seq)
            if forwarded is not None:
                di.result = (float(forwarded) if inst.op is Op.FLD
                             else forwarded)
                return 1 + penalty
            value = self.memory.get(addr, 0)
            di.result = float(value) if inst.op is Op.FLD else value
            return self.hierarchy.load_latency(addr)
        if inst.is_store:
            di.mem_addr = effective_address(values[1], inst.imm)
            return 1
        # Plain register-writing op.
        di.result = evaluate(inst.op, values, inst.imm)
        return inst.latency

    # ------------------------------------------------------------------ #
    # Dispatch (rename + allocate).
    # ------------------------------------------------------------------ #

    def dispatch_stage(self, now: int) -> None:
        self.begin_dispatch_cycle()
        moved = 0
        stall_reason: Optional[str] = None
        while moved < self.config.rename_width and self.fetch.buffer:
            di = self.fetch.buffer[0]
            inst = di.inst
            if inst.op in (Op.NOP, Op.HALT):
                self.fetch.buffer.pop(0)
                di.completed = True
                self.assign_state_tag(di)
                self.in_flight.append(di)
                self.stats.dispatched += 1
                moved += 1
                continue

            if self.iq_count >= self.config.iq_size:
                stall_reason = "iq_full"
                break
            if inst.is_load and self.load_buffer.is_full():
                stall_reason = "load_buffer_full"
                break
            if inst.is_store and self.sq.is_full():
                stall_reason = "store_queue_full"
                break
            stall_reason = self.dispatch_blocked(di, moved)
            if stall_reason is not None:
                break

            self.fetch.buffer.pop(0)
            self.rename(di)
            self._wire_dependencies(di, now)
            moved += 1

        if moved == 0 and stall_reason is not None:
            self.stats.dispatch_stall_cycles[stall_reason] += 1
            self.on_dispatch_stall(stall_reason)

    def _wire_dependencies(self, di: DynInst, now: int) -> None:
        for handle in di.src_handles:
            if not self.handle_ready(handle):
                di.wait_count += 1
                self._waiting.setdefault(handle, []).append(di)
        di.dispatch_cycle = now
        di.earliest_issue_cycle = now + 1 + self.extra_dispatch_delay
        inst = di.inst
        if inst.is_store:
            di.store_entry = self.sq.allocate(di.seq)
            # Early AGU: resolve the address as soon as the base operand
            # is available, possibly long before the store issues.
            base = di.src_handles[1]
            if self.handle_ready(base):
                addr = effective_address(self.peek_operand(base), inst.imm)
                self.sq.set_address(di.store_entry, addr)
            else:
                self._addr_watch.setdefault(base, []).append(di)
        if inst.is_load:
            self.load_buffer.allocate()
        self.in_flight.append(di)
        self.iq_count += 1
        self.stats.dispatched += 1
        if di.wait_count == 0:
            heappush(self._ready, (di.seq, di))

    # ------------------------------------------------------------------ #
    # Commit helpers.
    # ------------------------------------------------------------------ #

    def commit_one(self, di: DynInst, now: int) -> bool:
        """Commit the in-flight head; False if an exception interrupted."""
        ordinal = self.commit_ordinal
        if (ordinal in self.exception_plan
                and ordinal not in self._exceptions_taken):
            self._exceptions_taken.add(ordinal)
            self.stats.exceptions_taken += 1
            self.stats.recoveries += 1
            self.take_exception(di, now)
            return False
        self.commit_ordinal += 1
        di.committed = True
        self.stats.committed += 1
        if self.commit_trace is not None:
            self.commit_trace.append(di.pc)
        if di.inst.is_load:
            self.load_buffer.release()
        if di.inst.op is Op.HALT:
            self.done = True
        return True

    def pending_exception_offset(self, count: int) -> Optional[int]:
        """Offset (< count) of the first planned exception among the next
        ``count`` commit ordinals, or None. Used by CPR's bulk commit to
        pre-scan an interval before committing any of it."""
        if not self.exception_plan:
            return None
        for offset in range(count):
            ordinal = self.commit_ordinal + offset
            if (ordinal in self.exception_plan
                    and ordinal not in self._exceptions_taken):
                return offset
        return None

    def commit_store_write(self, addr: int, value) -> None:
        self.memory[addr] = value
        self.hierarchy.store_commit(addr)

    def repair_history_at(self, di: DynInst) -> None:
        """Restore predictor history to the point just before ``di`` was
        fetched (exception recovery re-fetches from ``di.pc``)."""
        if di.ghr_at_fetch is not None:
            self.predictor.set_history(di.ghr_at_fetch)

    # ------------------------------------------------------------------ #
    # Squash.
    # ------------------------------------------------------------------ #

    def squash_after(self, boundary_seq: int,
                     fault_seq: int) -> List[DynInst]:
        """Remove every in-flight instruction with ``seq > boundary_seq``.

        ``fault_seq`` classifies the Fig. 9 accounting: squashed *issued*
        instructions with ``seq > fault_seq`` were wrong-path; the rest
        were correct-path work that will be re-executed (CPR rollback past
        a checkpoint, or an exception replay).

        Returns the squashed instructions, youngest first, so the
        architecture can undo its own state for them.
        """
        squashed: List[DynInst] = []
        while self.in_flight and self.in_flight[-1].seq > boundary_seq:
            di = self.in_flight.pop()
            di.squashed = True
            squashed.append(di)
            self.stats.squashed += 1
            if di.issued:
                if di.seq > fault_seq:
                    self.stats.wrong_path_executed += 1
                else:
                    self.stats.correct_path_reexecuted += 1
                if not di.completed and di.inst.is_load:
                    pass  # completion event will be dropped via flag
            elif not di.completed:
                self.iq_count -= 1
            if di.inst.is_load:
                self.load_buffer.release()
        self.sq.squash_after(boundary_seq)
        self.fetch.squash_after(boundary_seq)
        return squashed

    # ------------------------------------------------------------------ #
    # Architecture hooks.
    # ------------------------------------------------------------------ #

    @abstractmethod
    def commit_stage(self, now: int) -> None:
        """Retire completed instructions per the machine's commit rules."""

    @abstractmethod
    def dispatch_blocked(self, di: DynInst, moved: int) -> Optional[str]:
        """Stall reason preventing ``di`` from dispatching, or None."""

    @abstractmethod
    def rename(self, di: DynInst) -> None:
        """Rename sources, allocate the destination, tag ``di``."""

    @abstractmethod
    def recover_from_branch(self, di: DynInst, now: int) -> None:
        """Squash and restore state for the mispredicted ``di``."""

    @abstractmethod
    def take_exception(self, di: DynInst, now: int) -> None:
        """Recover for an exception raised by committable ``di``."""

    @abstractmethod
    def handle_ready(self, handle: Any) -> bool:
        """Is the physical register behind ``handle`` ready to read?"""

    @abstractmethod
    def read_operand(self, handle: Any):
        """Read a (ready) physical register value."""

    @abstractmethod
    def peek_operand(self, handle: Any):
        """Read a ready value with *no* side effects (no use-bit clear,
        no reference-count release) — used by the early AGU and the
        load disambiguation check."""

    @abstractmethod
    def write_result(self, di: DynInst) -> None:
        """Write ``di.result`` to its destination register, mark ready."""

    def assign_state_tag(self, di: DynInst) -> None:
        """Tag NOP/HALT with the current state (MSP overrides)."""

    def begin_dispatch_cycle(self) -> None:
        """Per-cycle dispatch-group state reset (MSP rename limits)."""

    def begin_issue_cycle(self) -> None:
        """Per-cycle issue-port state reset (MSP read-port arbitration)."""

    def acquire_read_ports(self, di: DynInst) -> bool:
        """Try to claim register-file read ports for ``di`` (MSP)."""
        return True

    def filter_writebacks(self, completed: List[DynInst], now: int):
        """Split completions into (accepted, deferred) per write ports."""
        return completed, []

    def on_complete(self, di: DynInst) -> None:
        """Architecture bookkeeping when ``di`` finishes execution."""

    def on_branch_resolved(self, di: DynInst, mispredicted: bool) -> None:
        """CPR trains its confidence estimator here."""

    def on_dispatch_stall(self, reason: str) -> None:
        """Called when a whole dispatch cycle stalled (MSP attributes
        bank-full stalls to the blocking logical register here)."""
