"""Shared out-of-order core engine.

The three machines (baseline ROB, CPR, MSP) share this cycle-level engine:
fetch, dispatch, operand wakeup, issue with functional-unit limits,
execution with real data values (execution-driven, including wrong paths),
store-queue forwarding and squash bookkeeping. Subclasses plug in exactly
the parts the paper says differ:

* renaming / resource allocation (``rename`` / ``dispatch_blocked``),
* commit (``commit_stage``),
* recovery (``recover_from_branch`` / ``take_exception``),
* physical-register storage (``handle_ready`` / ``read_operand`` /
  ``write_result``),
* port arbitration (``acquire_read_ports`` / ``filter_writebacks``).

Stage evaluation order within a cycle is commit -> writeback -> issue ->
dispatch -> fetch, so results written back in cycle *t* can wake a
consumer that issues in *t* (standard back-to-back scheduling) while
newly dispatched instructions first become issue-eligible in *t+1*
(*t+2* with the MSP arbitration stage).

Two interchangeable backend schedulers drive issue/wakeup
(``SimConfig.scheduler``):

* ``"scan"`` — the original per-cycle loop: every ready candidate is
  heap-popped, examined and re-pushed each cycle, completion buckets are
  filtered lazily, and every cycle is simulated even when nothing can
  happen.  Kept verbatim as the reference oracle.
* ``"event"`` (default) — the ready window is ONE sorted-by-seq list
  that each candidate enters exactly once (at dispatch, or when its
  last operand arrives); the per-cycle walk examines the front of the
  window in place with no heap churn, squash unlinks waiters from the
  wakeup map and purges stale completion events instead of leaving
  zombies, and ``run`` skips provably idle stretches (no completions
  due, fetch stalled, dispatch blocked, nothing issuable) in one jump
  to the next event time while replaying the per-cycle stall
  accounting in bulk.

Both schedulers produce bit-identical :class:`SimStats` — the event
walk examines candidates in the same seq order, consumes the same
``max_issue_scan`` budget (including for blocked, not-yet-eligible and
stale entries) and defers for the same reasons; the idle skip engages
only after a cycle whose observed effect was provably nothing but
counter ticks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from collections import deque
from heapq import heappush, heappop
from operator import attrgetter
from typing import Any, Deque, Dict, List, Optional

_SEQ = attrgetter("seq")

#: Unsigned 64-bit mask — ``effective_address`` fast path for int bases
#: (``wrap_int(base + imm) & mask`` equals ``(base + imm) & mask``).
_ADDR_MASK = (1 << 64) - 1

from repro.branch import BranchTargetBuffer, make_predictor
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.semantics import effective_address
from repro.memory.cache import MemoryHierarchy
from repro.pipeline.dyninst import DynInst
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.resources import FunctionalUnitPool, LoadBuffer
from repro.pipeline.stats import SimStats
from repro.storequeue.queue import StoreQueue

#: fault_seq sentinel for exceptions: every squashed executed instruction
#: is on the correct path (will be re-fetched identically).
FAULT_NONE = 1 << 62


class OutOfOrderCore(ABC):
    """Cycle-level execution-driven out-of-order core."""

    #: Extra pipe stages between rename and first issue eligibility
    #: (the MSP arbitration stage sets this to 1).
    extra_dispatch_delay = 0

    def __init__(self, program: Program, config) -> None:
        self.program = program
        self.config = config
        self.stats = SimStats()

        self.hierarchy = MemoryHierarchy.from_config(config)
        if config.warm_caches:
            self.hierarchy.warm(range(len(program)),
                                program.memory_line_addrs)
        self.predictor = make_predictor(config.predictor,
                                        **config.predictor_kwargs)
        self.btb = BranchTargetBuffer()
        self.fetch = FetchEngine(program, self.hierarchy, self.predictor,
                                 self.btb, width=config.fetch_width)
        self.fus = FunctionalUnitPool(config.int_units, config.fp_units,
                                      config.ldst_units, config.issue_width)
        self.load_buffer = LoadBuffer(config.load_buffer)
        self.sq = StoreQueue(config.sq_l1, config.sq_l2,
                             config.l2_forward_penalty)

        #: Committed architectural memory state.
        self.memory: Dict[int, Any] = dict(program.initial_memory)

        self.now = 0
        self.done = False
        self.in_flight: Deque[DynInst] = deque()
        self.iq_count = 0
        scheduler = getattr(config, "scheduler", "event")
        if scheduler not in ("event", "scan"):
            raise ValueError(f"unknown scheduler {scheduler!r}; "
                             f"choose 'event' or 'scan'")
        #: True for the event-driven scheduler, False for the reference
        #: per-cycle scan loop.
        self._sched_event = scheduler == "event"
        self._ready: List = []                     # scan: heap of (seq, di)
        #: Event scheduler's ready window: DynInsts sorted by seq.  An
        #: instruction enters exactly once — at dispatch when all
        #: operands are ready, else when its last operand writes back.
        self._ready_list: List[DynInst] = []
        self._waiting: Dict[Any, List[DynInst]] = {}
        self._completions: Dict[int, List[DynInst]] = {}
        # Stores waiting for their address operand (early AGU).
        self._addr_watch: Dict[Any, List[DynInst]] = {}

        # Event-scheduler idle-skip bookkeeping (see ``run``).
        self._quiet = False                 # last cycle changed nothing
        self._last_stall_reason: Optional[str] = None
        self._wb_live = False               # writeback processed work
        self._ready_dropped = False         # walk dropped stale entries
        self._next_timed: Optional[int] = None  # earliest pending-issue
        #: Cycles elided by the idle skip (diagnostics; included in
        #: ``stats.cycles`` — the skip is accounting-exact).
        self.skipped_cycles = 0

        # Hot-path specialisation for the event scheduler.  Hook-override
        # flags let the per-instruction loops skip calls that would hit
        # the base class's no-op implementations; the operand tables are
        # published by subclasses whose register file is a flat
        # int-indexed (value, ready) list pair so the core can index it
        # directly instead of paying a method call per operand.  None of
        # this changes behaviour — the scan oracle always goes through
        # the virtual calls.
        base = OutOfOrderCore
        cls = type(self)
        self._has_read_ports = (
            cls.acquire_read_ports is not base.acquire_read_ports)
        self._has_wb_filter = (
            cls.filter_writebacks is not base.filter_writebacks)
        self._has_on_complete = cls.on_complete is not base.on_complete
        self._has_begin_issue = (
            cls.begin_issue_cycle is not base.begin_issue_cycle)
        self._has_begin_dispatch = (
            cls.begin_dispatch_cycle is not base.begin_dispatch_cycle)
        #: ``phys_ready`` list for direct ``handle_ready`` indexing
        #: (baseline and CPR publish it), or None.
        self._ready_table: Optional[List[bool]] = None
        #: ``phys_value`` list for direct side-effect-free peeks and
        #: result writes (baseline and CPR — both store values in a flat
        #: list and mark ready on writeback), or None.  MSP keeps the
        #: virtual calls (banked storage).
        self._value_table: Optional[List] = None
        #: True when ``read_operand`` is a pure table read (baseline;
        #: CPR reads must release reader reference counts).
        self._read_direct = False

        #: Observability hook slots (``repro.obs``), pre-bound to None
        #: so every emission site is a single attribute test when
        #: telemetry is off — the same idiom as the specialisation
        #: flags above.  Armed via :meth:`attach_tracer` /
        #: :meth:`attach_metrics`; the fused baseline loop falls back
        #: to this generic (hook-bearing, bit-identical) engine while
        #: either is armed.
        self.tracer = None
        self._metrics = None

        self.commit_ordinal = 0
        self.exception_plan = set(config.exception_ordinals)
        self._exceptions_taken: set = set()
        #: PCs of committed instructions, in order (when record_commits).
        self.commit_trace: Optional[List[int]] = (
            [] if config.record_commits else None)

    # ------------------------------------------------------------------ #
    # Checkpoint seeding and warm-state injection (sampled simulation).
    # ------------------------------------------------------------------ #

    def seed_architectural_state(self, state) -> None:
        """Start this (fresh) core from an architectural checkpoint
        (:class:`~repro.isa.emulator.EmulatorState`) instead of the
        program entry: PC, committed memory and every logical register
        take the checkpoint's values. Must be called before the first
        cycle — the identity rename mappings set up at construction are
        what make per-logical-register seeding sufficient.

        The memory copy below is load-bearing: the sampled engine
        hands out copy-on-write checkpoints that alias the emulator's
        live dict (``Emulator.snapshot(share=True)``), so the core must
        never write through ``state.memory``."""
        if self.now or self.stats.cycles or self.fetch.fetched:
            raise RuntimeError("seed_architectural_state requires a "
                               "fresh core (no cycles simulated yet)")
        self.fetch.pc = state.pc
        self.memory = dict(state.memory)
        for logical, value in enumerate(state.regs):
            self.seed_register(logical, value)
        self.on_seeded(state.pc)

    def seed_register(self, logical: int, value) -> None:
        """Set the initial architectural value of ``logical`` (each
        machine stores it in its own register organisation)."""
        raise NotImplementedError

    def on_seeded(self, pc: int) -> None:
        """Architecture hook after checkpoint seeding (CPR re-anchors
        its initial checkpoint here)."""

    def install_warm_state(self, predictor=None, btb=None,
                           hierarchy=None, confidence=None) -> None:
        """Replace branch predictor / BTB / cache hierarchy with
        pre-warmed instances (the sampling engine's functional warm-up
        trains them on the fast-forwarded stream). ``confidence`` is
        accepted for CPR's estimator and ignored elsewhere."""
        if predictor is not None:
            self.predictor = predictor
            self.fetch.predictor = predictor
        if btb is not None:
            self.btb = btb
            self.fetch.btb = btb
        if hierarchy is not None:
            self.hierarchy = hierarchy
            self.fetch.hierarchy = hierarchy

    # ------------------------------------------------------------------ #
    # Observability (repro.obs).
    # ------------------------------------------------------------------ #

    def attach_tracer(self, tracer) -> None:
        """Arm pipeline lifecycle tracing
        (:class:`repro.obs.PipelineTracer`)."""
        self.tracer = tracer
        self.fetch.tracer = tracer

    def attach_metrics(self, recorder) -> None:
        """Arm interval metrics sampling
        (:class:`repro.obs.IntervalRecorder`)."""
        recorder.bind(self)
        self._metrics = recorder

    # ------------------------------------------------------------------ #
    # Top level.
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int = 50_000,
            max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until ``max_instructions`` commit, HALT, or cycle cap."""
        cycle_cap = max_cycles if max_cycles is not None \
            else max_instructions * 200 + 100_000
        stats = self.stats
        if not self._sched_event:
            while (not self.done and stats.committed < max_instructions
                   and stats.cycles < cycle_cap):
                self.cycle()
            return stats
        while (not self.done and stats.committed < max_instructions
               and stats.cycles < cycle_cap):
            self.cycle()
            if self._quiet and self.commit_settled():
                bound = self._next_event_cycle()
                horizon = self.now + (cycle_cap - stats.cycles)
                if bound is None or bound > horizon:
                    bound = horizon
                if bound > self.now:
                    self._skip_quiet_cycles(bound - self.now)
        return stats

    def cycle(self) -> None:
        now = self.now
        stats = self.stats
        stats.cycles += 1
        if not self._sched_event:
            self.commit_stage(now)
            if not self.done:
                self.writeback_stage(now)
                self.issue_stage(now)
                self.dispatch_stage(now)
                self.fetch.cycle(now)
            self.now = now + 1
            return
        fetch = self.fetch
        before = (stats.committed, stats.issued, stats.dispatched,
                  stats.recoveries, stats.exceptions_taken,
                  stats.checkpoints_created, stats.squashed, fetch.fetched)
        self._wb_live = False
        self._ready_dropped = False
        self._last_stall_reason = None
        self.commit_stage(now)
        if not self.done:
            self.writeback_stage(now)
            self.issue_stage(now)
            self.dispatch_stage(now)
            fetch.cycle(now)
        self._quiet = (not self.done and not self._wb_live
                       and not self._ready_dropped
                       and before == (stats.committed, stats.issued,
                                      stats.dispatched, stats.recoveries,
                                      stats.exceptions_taken,
                                      stats.checkpoints_created,
                                      stats.squashed, fetch.fetched))
        self.now = now + 1

    # ------------------------------------------------------------------ #
    # Idle skip (event scheduler): a *quiet* cycle changed no machine
    # state — nothing committed, wrote back, issued, dispatched or
    # fetched, no recovery ran and the ready window kept every entry.
    # Re-simulating such cycles until the next event only ticks the same
    # counters, so ``run`` jumps straight to the earliest cycle at which
    # anything can happen and replays the per-cycle accounting in bulk.
    # ------------------------------------------------------------------ #

    def _next_event_cycle(self) -> Optional[int]:
        """Earliest future cycle at which machine state can change:
        the next completion event, the cycle a stalled fetch resumes,
        or the cycle a dispatched-but-not-yet-eligible instruction in
        the examined issue window becomes issuable. ``None`` when no
        event is pending (the machine can only spin to its cycle cap).
        """
        bound: Optional[int] = None
        if self._completions:
            bound = min(self._completions)
        fetch = self.fetch
        if not fetch.halted and len(fetch.buffer) < fetch.buffer_capacity:
            resume = fetch.stalled_until
            if bound is None or resume < bound:
                bound = resume
        timed = self._next_timed
        if timed is not None and (bound is None or timed < bound):
            bound = timed
        return bound

    def _skip_quiet_cycles(self, count: int) -> None:
        """Account ``count`` quiet cycles without simulating them."""
        self.stats.cycles += count
        self.skipped_cycles += count
        reason = self._last_stall_reason
        if reason is not None:
            self.stats.dispatch_stall_cycles[reason] += count
            self.on_dispatch_stall_bulk(reason, count)
        self.fetch.skip_cycles(self.now, count)
        self.now += count

    def commit_settled(self) -> bool:
        """True when re-running the commit stage against frozen machine
        state is a provable no-op, so quiet cycles may be skipped in
        bulk (MSP requires its pipelined LCS min-tree to have drained
        to a fixpoint)."""
        return True

    # ------------------------------------------------------------------ #
    # Writeback / completion.
    # ------------------------------------------------------------------ #

    def writeback_stage(self, now: int) -> None:
        completed = self._completions.pop(now, None)
        if not completed:
            return
        # Resolve strictly oldest-first.  Buckets accumulate in issue
        # order, so a younger long-latency branch could otherwise be
        # examined before an older same-cycle mispredict: it would train
        # the predictor, repair history and trigger a recovery of its
        # own even though the older branch's squash is about to prove it
        # wrong-path — re-repairing history and double-squashing state.
        # Age order makes the older squash land first, and the squashed
        # younger completions below are simply dropped.
        if len(completed) > 1:
            completed.sort(key=_SEQ)
        live = [di for di in completed if not di.squashed]
        if not live:
            return
        self._wb_live = True
        if self._has_wb_filter:
            accepted, deferred = self.filter_writebacks(live, now)
            for di in deferred:
                self._completions.setdefault(now + 1, []).append(di)
        else:
            accepted = live
        complete = self._complete
        for di in accepted:
            if di.squashed:
                continue  # an earlier completion this cycle recovered
            complete(di, now)

    def _complete(self, di: DynInst, now: int) -> None:
        di.completed = True
        if self.tracer is not None:
            self.tracer.writeback(di.seq, now)
        inst = di.inst
        if inst.writes_reg:
            values = self._value_table
            if values is not None:
                dest = di.dest_handle
                values[dest] = di.result
                self._ready_table[dest] = True
            else:
                self.write_result(di)
            waiters = self._waiting.pop(di.dest_handle, None)
            if waiters:
                wake = (self._ready_insert if self._sched_event
                        else self._ready_push)
                for waiter in waiters:
                    if waiter.squashed:
                        continue
                    waiter.wait_count -= 1
                    if waiter.wait_count == 0:
                        wake(waiter)
            watchers = self._addr_watch.pop(di.dest_handle, None)
            if watchers:
                for store in watchers:
                    if not store.squashed:
                        addr = effective_address(di.result, store.inst.imm)
                        self.sq.set_address(store.store_entry, addr)
        elif inst.is_store:
            self.sq.execute(di.store_entry, di.mem_addr, di.src_values[0])
        if self._has_on_complete:
            self.on_complete(di)
        if inst.is_control:
            self._resolve_control(di, now)

    def _ready_push(self, di: DynInst) -> None:
        heappush(self._ready, (di.seq, di))

    def _ready_insert(self, di: DynInst) -> None:
        """Admit ``di`` to the event scheduler's sorted ready window."""
        window = self._ready_list
        if not window or window[-1].seq < di.seq:
            window.append(di)
        else:
            insort(window, di, key=_SEQ)

    def _resolve_control(self, di: DynInst, now: int) -> None:
        inst = di.inst
        mispredicted = False
        if inst.is_branch:
            self.stats.branches += 1
            taken = di.actual_taken
            self.predictor.update(di.prediction, taken)
            self.on_branch_resolved(di, taken != di.predicted_taken)
            if taken != di.predicted_taken:
                mispredicted = True
                self.stats.branch_mispredictions += 1
                # Repair speculative global history with the real outcome.
                di.prediction.taken = taken
                self.predictor.restore(di.prediction)
        elif inst.op is Op.JR:
            correct = di.actual_target == di.predicted_target
            self.btb.update(di.pc, di.actual_target, correct)
            self.on_branch_resolved(di, not correct)
            mispredicted = not correct
            if mispredicted and di.ghr_at_fetch is not None:
                # Wipe squashed younger branches' speculative history
                # (an indirect jump shifts no direction history itself).
                self.predictor.set_history(di.ghr_at_fetch)
        if mispredicted:
            di.mispredicted = True
            self.stats.recoveries += 1
            self.recover_from_branch(di, now)

    # ------------------------------------------------------------------ #
    # Issue / execute.
    # ------------------------------------------------------------------ #

    def issue_stage(self, now: int) -> None:
        if self._sched_event:
            self._issue_stage_event(now)
        else:
            self._issue_stage_scan(now)

    def _issue_stage_scan(self, now: int) -> None:
        """Reference issue loop: pop every candidate from the ready
        heap, re-pushing the ones that cannot issue this cycle."""
        self.fus.new_cycle()
        self.begin_issue_cycle()
        deferred: List[DynInst] = []
        scanned = 0
        while (self._ready and self.fus.slots_left > 0
               and scanned < self.config.max_issue_scan):
            _, di = heappop(self._ready)
            scanned += 1
            if di.squashed or di.issued:
                continue
            if di.earliest_issue_cycle > now:
                deferred.append(di)
                continue
            inst = di.inst
            if inst.is_load:
                addr = effective_address(
                    self.peek_operand(di.src_handles[0]), inst.imm)
                if self.sq.load_blocked(addr, di.seq):
                    deferred.append(di)   # unresolved/conflicting store
                    continue
            if not self.fus.can_issue(inst.fu_type):
                deferred.append(di)
                continue
            if not self.acquire_read_ports(di):
                deferred.append(di)       # MSP bank read-port conflict
                continue
            self._issue(di, now)
        for di in deferred:
            heappush(self._ready, (di.seq, di))

    def _issue_stage_event(self, now: int) -> None:
        """Event-scheduler issue walk: examine the front of the sorted
        ready window in place.  Identical candidate order, deferral
        rules and ``max_issue_scan`` budget accounting as the scan loop
        (stale and not-yet-eligible entries consume budget in both), but
        blocked candidates simply stay put instead of being heap-popped
        and re-pushed, and issued/stale entries are compacted out."""
        window = self._ready_list
        if not window:
            self._next_timed = None
            return
        fus = self.fus
        fus.new_cycle()
        if self._has_begin_issue:
            self.begin_issue_cycle()
        check_ports = self._has_read_ports
        values = self._value_table
        issue = self._issue
        load_blocked = self.sq.load_blocked
        fu_used = fus._used
        fu_limits = fus._limits
        budget = self.config.max_issue_scan
        slots = fus.issue_width
        next_timed: Optional[int] = None
        read = 0
        write = 0
        n = len(window)
        if budget < n:
            n = budget                         # scan-budget cap
        while read < n:
            di = window[read]
            read += 1
            if di.squashed or di.issued:
                self._ready_dropped = True
                continue                       # compacted out
            eic = di.earliest_issue_cycle
            if eic > now:
                if next_timed is None or eic < next_timed:
                    next_timed = eic
                window[write] = di
                write += 1
                continue
            inst = di.inst
            if inst.is_load:
                base = (values[di.src_handles[0]] if values is not None
                        else self.peek_operand(di.src_handles[0]))
                if type(base) is int:
                    addr = (base + inst.imm) & _ADDR_MASK
                else:
                    addr = effective_address(base, inst.imm)
                if load_blocked(addr, di.seq):
                    window[write] = di         # unresolved/conflicting store
                    write += 1
                    continue
            code = inst.fu_code
            if fu_used[code] >= fu_limits[code]:
                window[write] = di
                write += 1
                continue
            if check_ports and not self.acquire_read_ports(di):
                window[write] = di             # MSP bank read-port conflict
                write += 1
                continue
            issue(di, now)                     # compacted out
            slots -= 1
            if slots <= 0:
                break
        if write != read:
            del window[write:read]
        self._next_timed = next_timed

    def _issue(self, di: DynInst, now: int) -> None:
        di.issued = True
        if self.tracer is not None:
            self.tracer.issue(di.seq, now)
        self.stats.issued += 1
        self.fus.issue_code(di.inst.fu_code)
        self.iq_count -= 1
        if self._read_direct:
            values = self._value_table
            di.src_values = [values[handle] for handle in di.src_handles]
        else:
            read_operand = self.read_operand
            di.src_values = [read_operand(handle)
                             for handle in di.src_handles]
        latency = self._execute(di)
        completions = self._completions
        finish = now + latency
        bucket = completions.get(finish)
        if bucket is None:
            completions[finish] = [di]
        else:
            bucket.append(di)

    def _execute(self, di: DynInst) -> int:
        """Functional execution; returns result latency in cycles."""
        inst = di.inst
        values = di.src_values
        kind = inst.kind
        if kind == 0:                        # plain register-writing op
            di.result = inst.eval_fn(values, inst.imm)
            return inst.latency
        if kind == 1:                        # conditional branch
            di.actual_taken = taken = inst.branch_fn(values)
            di.actual_target = inst.target if taken else di.pc + 1
            return inst.latency
        if kind == 4:                        # load
            base = values[0]
            if type(base) is int:
                addr = (base + inst.imm) & _ADDR_MASK
            else:
                addr = effective_address(base, inst.imm)
            di.mem_addr = addr
            forwarded, penalty = self.sq.forward(addr, di.seq)
            if forwarded is not None:
                di.result = (float(forwarded) if inst.op is Op.FLD
                             else forwarded)
                return 1 + penalty
            value = self.memory.get(addr, 0)
            di.result = float(value) if inst.op is Op.FLD else value
            return self.hierarchy.load_latency(addr)
        if kind == 5:                        # store
            base = values[1]
            if type(base) is int:
                di.mem_addr = (base + inst.imm) & _ADDR_MASK
            else:
                di.mem_addr = effective_address(base, inst.imm)
            return 1
        if kind == 2:                        # direct jump
            di.actual_taken = True
            di.actual_target = inst.target
            return inst.latency
        if kind == 3:                        # indirect jump
            di.actual_taken = True
            di.actual_target = int(values[0])
            return inst.latency
        raise AssertionError(f"{inst.op.name} reached execute")

    # ------------------------------------------------------------------ #
    # Dispatch (rename + allocate).
    # ------------------------------------------------------------------ #

    def dispatch_stage(self, now: int) -> None:
        buffer = self.fetch.buffer
        if not buffer:
            return
        if self._has_begin_dispatch or not self._sched_event:
            self.begin_dispatch_cycle()
        rename_width = self.config.rename_width
        iq_size = self.config.iq_size
        moved = 0
        stall_reason: Optional[str] = None
        while moved < rename_width and buffer:
            di = buffer[0]
            inst = di.inst
            if inst.kind == 6:               # NOP/HALT
                buffer.pop(0)
                di.completed = True
                self.assign_state_tag(di)
                self.in_flight.append(di)
                self.stats.dispatched += 1
                if self.tracer is not None:
                    self.tracer.dispatch(di.seq, now)
                moved += 1
                continue

            if self.iq_count >= iq_size:
                stall_reason = "iq_full"
                break
            if inst.is_load and self.load_buffer.is_full():
                stall_reason = "load_buffer_full"
                break
            if inst.is_store and self.sq.is_full():
                stall_reason = "store_queue_full"
                break
            stall_reason = self.dispatch_blocked(di, moved)
            if stall_reason is not None:
                break

            buffer.pop(0)
            self.rename(di)
            self._wire_dependencies(di, now)
            if self.tracer is not None:
                self.tracer.dispatch(di.seq, now)
            moved += 1

        if moved == 0 and stall_reason is not None:
            self._last_stall_reason = stall_reason
            self.stats.dispatch_stall_cycles[stall_reason] += 1
            if self.tracer is not None:
                self.tracer.stall(buffer[0].seq, now, stall_reason)
            self.on_dispatch_stall(stall_reason)

    def _wire_dependencies(self, di: DynInst, now: int) -> None:
        waiting = self._waiting
        ready_table = self._ready_table
        wait_count = 0
        for handle in di.src_handles:
            ready = (ready_table[handle] if ready_table is not None
                     else self.handle_ready(handle))
            if not ready:
                wait_count += 1
                lst = waiting.get(handle)
                if lst is None:
                    waiting[handle] = [di]
                else:
                    lst.append(di)
        di.wait_count = wait_count
        di.dispatch_cycle = now
        di.earliest_issue_cycle = now + 1 + self.extra_dispatch_delay
        inst = di.inst
        if inst.is_store:
            di.store_entry = self.sq.allocate(di.seq)
            # Early AGU: resolve the address as soon as the base operand
            # is available, possibly long before the store issues.
            base = di.src_handles[1]
            if (ready_table[base] if ready_table is not None
                    else self.handle_ready(base)):
                addr = effective_address(self.peek_operand(base), inst.imm)
                self.sq.set_address(di.store_entry, addr)
            else:
                self._addr_watch.setdefault(base, []).append(di)
        elif inst.is_load:
            self.load_buffer.allocate()
        self.in_flight.append(di)
        self.iq_count += 1
        self.stats.dispatched += 1
        if wait_count == 0:
            # A freshly dispatched instruction is the youngest in the
            # machine, so the event window admits it with an append.
            if self._sched_event:
                self._ready_list.append(di)
            else:
                heappush(self._ready, (di.seq, di))

    # ------------------------------------------------------------------ #
    # Commit helpers.
    # ------------------------------------------------------------------ #

    def commit_one(self, di: DynInst, now: int) -> bool:
        """Commit the in-flight head; False if an exception interrupted."""
        ordinal = self.commit_ordinal
        if (ordinal in self.exception_plan
                and ordinal not in self._exceptions_taken):
            self._exceptions_taken.add(ordinal)
            self.stats.exceptions_taken += 1
            self.stats.recoveries += 1
            self.take_exception(di, now)
            return False
        self.commit_ordinal += 1
        di.committed = True
        self.stats.committed += 1
        if self.tracer is not None:
            self.tracer.commit(di.seq, now, ordinal)
        metrics = self._metrics
        if metrics is not None \
                and self.stats.committed % metrics.interval == 0:
            metrics.sample(self)
        if self.commit_trace is not None:
            self.commit_trace.append(di.pc)
        if di.inst.is_load:
            self.load_buffer.release()
        if di.inst.op is Op.HALT:
            self.done = True
        return True

    def pending_exception_offset(self, count: int) -> Optional[int]:
        """Offset (< count) of the first planned exception among the next
        ``count`` commit ordinals, or None. Used by CPR's bulk commit to
        pre-scan an interval before committing any of it."""
        if not self.exception_plan:
            return None
        for offset in range(count):
            ordinal = self.commit_ordinal + offset
            if (ordinal in self.exception_plan
                    and ordinal not in self._exceptions_taken):
                return offset
        return None

    def commit_store_write(self, addr: int, value) -> None:
        self.memory[addr] = value
        self.hierarchy.store_commit(addr)

    def repair_history_at(self, di: DynInst) -> None:
        """Restore predictor history to the point just before ``di`` was
        fetched (exception recovery re-fetches from ``di.pc``)."""
        if di.ghr_at_fetch is not None:
            self.predictor.set_history(di.ghr_at_fetch)

    # ------------------------------------------------------------------ #
    # Squash.
    # ------------------------------------------------------------------ #

    def squash_after(self, boundary_seq: int,
                     fault_seq: int) -> List[DynInst]:
        """Remove every in-flight instruction with ``seq > boundary_seq``.

        ``fault_seq`` classifies the Fig. 9 accounting: squashed *issued*
        instructions with ``seq > fault_seq`` were wrong-path; the rest
        were correct-path work that will be re-executed (CPR rollback past
        a checkpoint, or an exception replay).

        Returns the squashed instructions, youngest first, so the
        architecture can undo its own state for them.

        The event scheduler additionally unlinks each squashed waiter
        from the per-operand wakeup map and purges the squashed
        instructions' pending completion events, so a producer that
        later reuses a freed register handle never walks zombie waiter
        lists and the completion wheel holds no stale wakeup times (the
        idle skip keys its next-event bound off that wheel).  Entries
        already admitted to the ready window are left to be dropped by
        the next walk — exactly when the reference scan loop would pop
        and discard them, so the shared ``max_issue_scan`` budget
        accounting stays bit-identical.
        """
        squashed: List[DynInst] = []
        purge = self._sched_event
        waiting = self._waiting
        addr_watch = self._addr_watch
        tracer = self.tracer
        while self.in_flight and self.in_flight[-1].seq > boundary_seq:
            di = self.in_flight.pop()
            di.squashed = True
            squashed.append(di)
            if tracer is not None:
                tracer.squash(di.seq, self.now)
            self.stats.squashed += 1
            if di.issued:
                if di.seq > fault_seq:
                    self.stats.wrong_path_executed += 1
                else:
                    self.stats.correct_path_reexecuted += 1
                if not di.completed and di.inst.is_load:
                    pass  # completion event will be dropped via flag
            elif not di.completed:
                self.iq_count -= 1
                if purge:
                    if di.wait_count:
                        for handle in di.src_handles:
                            lst = waiting.get(handle)
                            if lst is not None:
                                try:
                                    lst.remove(di)
                                except ValueError:
                                    pass
                    if di.inst.is_store and di.store_entry is not None:
                        lst = addr_watch.get(di.src_handles[1])
                        if lst is not None:
                            try:
                                lst.remove(di)
                            except ValueError:
                                pass
            if di.inst.is_load:
                self.load_buffer.release()
        if purge and squashed:
            completions = self._completions
            for finish in list(completions):
                bucket = completions[finish]
                live = [di for di in bucket if not di.squashed]
                if not live:
                    del completions[finish]
                elif len(live) != len(bucket):
                    completions[finish] = live
        self.sq.squash_after(boundary_seq)
        if tracer is not None:
            # Buffered (fetched, never dispatched) younger instructions
            # are dropped by the fetch engine below; trace them too so
            # the viewer closes their fetch stage.
            for di in self.fetch.buffer:
                if di.seq > boundary_seq:
                    tracer.squash(di.seq, self.now)
        self.fetch.squash_after(boundary_seq)
        return squashed

    # ------------------------------------------------------------------ #
    # Architecture hooks.
    # ------------------------------------------------------------------ #

    @abstractmethod
    def commit_stage(self, now: int) -> None:
        """Retire completed instructions per the machine's commit rules."""

    @abstractmethod
    def dispatch_blocked(self, di: DynInst, moved: int) -> Optional[str]:
        """Stall reason preventing ``di`` from dispatching, or None."""

    @abstractmethod
    def rename(self, di: DynInst) -> None:
        """Rename sources, allocate the destination, tag ``di``."""

    @abstractmethod
    def recover_from_branch(self, di: DynInst, now: int) -> None:
        """Squash and restore state for the mispredicted ``di``."""

    @abstractmethod
    def take_exception(self, di: DynInst, now: int) -> None:
        """Recover for an exception raised by committable ``di``."""

    @abstractmethod
    def handle_ready(self, handle: Any) -> bool:
        """Is the physical register behind ``handle`` ready to read?"""

    @abstractmethod
    def read_operand(self, handle: Any):
        """Read a (ready) physical register value."""

    @abstractmethod
    def peek_operand(self, handle: Any):
        """Read a ready value with *no* side effects (no use-bit clear,
        no reference-count release) — used by the early AGU and the
        load disambiguation check."""

    @abstractmethod
    def write_result(self, di: DynInst) -> None:
        """Write ``di.result`` to its destination register, mark ready."""

    def assign_state_tag(self, di: DynInst) -> None:
        """Tag NOP/HALT with the current state (MSP overrides)."""

    def begin_dispatch_cycle(self) -> None:
        """Per-cycle dispatch-group state reset (MSP rename limits)."""

    def begin_issue_cycle(self) -> None:
        """Per-cycle issue-port state reset (MSP read-port arbitration)."""

    def acquire_read_ports(self, di: DynInst) -> bool:
        """Try to claim register-file read ports for ``di`` (MSP)."""
        return True

    def filter_writebacks(self, completed: List[DynInst], now: int):
        """Split completions into (accepted, deferred) per write ports."""
        return completed, []

    def on_complete(self, di: DynInst) -> None:
        """Architecture bookkeeping when ``di`` finishes execution."""

    def on_branch_resolved(self, di: DynInst, mispredicted: bool) -> None:
        """CPR trains its confidence estimator here."""

    def on_dispatch_stall(self, reason: str) -> None:
        """Called when a whole dispatch cycle stalled (MSP attributes
        bank-full stalls to the blocking logical register here)."""

    def on_dispatch_stall_bulk(self, reason: str, count: int) -> None:
        """Replay ``count`` per-cycle :meth:`on_dispatch_stall` calls
        during the idle skip, in O(1) where possible.  Machine state is
        frozen across the skipped cycles, so the per-cycle hook is a
        pure function of that frozen state: one call reproduces the
        cumulative effect of ``count`` unless the hook mutates
        per-cycle counters (MSP overrides this with a bulk add).  The
        base hook is a no-op, so the default does nothing when it is
        not overridden."""
        if type(self).on_dispatch_stall is not \
                OutOfOrderCore.on_dispatch_stall:
            self.on_dispatch_stall(reason)
