"""Branch-predictor interface shared by all direction predictors.

Predictors are *speculatively updated* the way the paper's machines use
them: history is updated at predict time (so back-to-back branches see each
other), and corrected on a misprediction by restoring the history snapshot
the predictor handed out with the prediction. Counter tables are updated
non-speculatively at branch resolution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any


class BranchPredictor(ABC):
    """Direction predictor for conditional branches."""

    name = "base"

    def __init__(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    @abstractmethod
    def predict(self, pc: int) -> "Prediction":
        """Predict the direction of the branch at ``pc``.

        Also speculatively updates any global history; the returned
        :class:`Prediction` carries the snapshot needed to undo that on a
        squash.
        """

    @abstractmethod
    def update(self, prediction: "Prediction", taken: bool) -> None:
        """Train tables with the resolved outcome (at branch execution)."""

    @abstractmethod
    def restore(self, prediction: "Prediction") -> None:
        """Roll speculative history back to just *after* this prediction
        was corrected — called on a misprediction squash, with the
        now-known outcome stored in the prediction."""

    def record_outcome(self, prediction: "Prediction", taken: bool) -> None:
        """Bookkeeping shared by all predictors."""
        self.predictions += 1
        if prediction.taken != taken:
            self.mispredictions += 1

    def train(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, train with the known outcome
        and leave history as if the prediction had been resolved (and,
        on a misprediction, repaired) — the discipline the functional
        warm-up stream follows, where every branch resolves immediately.

        Returns True when the prediction was correct.  This default is
        a convenience wrapper over ``predict``/``update``/``restore``;
        predictors with a cheaper fused path (TAGE) override it.
        """
        prediction = self.predict(pc)
        correct = prediction.taken == taken
        self.update(prediction, taken)
        if not correct:
            prediction.taken = taken
            self.restore(prediction)
        return correct

    def clone(self) -> "BranchPredictor":
        """Independent deep copy (tables and history). The sampled
        engine clones the functionally-warmed predictor into each
        measurement window; predictors with large table state override
        this with a structure-aware copy."""
        import pickle
        return pickle.loads(pickle.dumps(self, pickle.HIGHEST_PROTOCOL))

    # ------------------------------------------------------------------ #
    # Global-history checkpointing (used by CPR checkpoints and by
    # exception/indirect-jump recovery to repair speculative history).
    # ------------------------------------------------------------------ #

    def get_history(self):
        """Snapshot of the speculative global history (None if the
        predictor keeps no history)."""
        return None

    def set_history(self, snapshot) -> None:
        """Restore a snapshot taken by :meth:`get_history`."""

    def set_history_appended(self, snapshot, taken: bool) -> None:
        """Restore ``snapshot`` with one branch outcome appended —
        the state just after predicting/resolving that branch."""

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class Prediction:
    """One direction prediction plus undo/training context.

    ``meta`` is predictor-private (history snapshots, provider component,
    etc.). ``taken`` may be corrected in place once the branch resolves.
    """

    __slots__ = ("pc", "taken", "meta")

    def __init__(self, pc: int, taken: bool, meta: Any = None) -> None:
        self.pc = pc
        self.taken = taken
        self.meta = meta

    def __repr__(self) -> str:
        return f"Prediction(pc={self.pc}, taken={self.taken})"
