"""Trivial direction predictors, used mainly by tests.

``BimodalPredictor`` is also the base component style used inside TAGE;
having it standalone lets tests and examples isolate history effects.
"""

from __future__ import annotations

from repro.branch.base import BranchPredictor, Prediction


class StaticPredictor(BranchPredictor):
    """Always predicts the same direction (default: not taken)."""

    name = "static"

    def __init__(self, taken: bool = False) -> None:
        super().__init__()
        self._taken = taken

    def predict(self, pc: int) -> Prediction:
        return Prediction(pc, self._taken)

    def update(self, prediction: Prediction, taken: bool) -> None:
        self.record_outcome(prediction, taken)

    def restore(self, prediction: Prediction) -> None:
        pass


class OraclePredictor(BranchPredictor):
    """Test-only predictor fed the true outcome before each prediction.

    The pipeline tests use it to run with zero mispredictions; the core
    asks for a prediction after the fetch stage has already consulted the
    functional front end, so the oracle simply echoes it back.
    """

    name = "oracle"

    def __init__(self) -> None:
        super().__init__()
        self.next_outcome = False

    def predict(self, pc: int) -> Prediction:
        return Prediction(pc, self.next_outcome)

    def update(self, prediction: Prediction, taken: bool) -> None:
        self.record_outcome(prediction, taken)

    def restore(self, prediction: Prediction) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit saturating counters, no history."""

    name = "bimodal"

    def __init__(self, entries: int = 4096) -> None:
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.mask = entries - 1
        self.table = [2] * entries

    def predict(self, pc: int) -> Prediction:
        index = pc & self.mask
        return Prediction(pc, self.table[index] >= 2, meta=index)

    def update(self, prediction: Prediction, taken: bool) -> None:
        self.record_outcome(prediction, taken)
        index = prediction.meta
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1

    def restore(self, prediction: Prediction) -> None:
        pass
