"""JRS confidence estimator (Jacobsen, Rotenberg & Smith, MICRO-29).

CPR uses it to decide where to place checkpoints: "a new check-point is
created if the estimator gives low confidence for the current prediction".
Table I sizes it at 64K entries of 4 bits.

Each entry is a resetting counter ("miss distance counter"): incremented,
saturating, on a correct prediction; reset to zero on a misprediction.
A prediction is *high confidence* when the counter is at or above a
threshold.
"""

from __future__ import annotations


class ConfidenceEstimator:
    """Resetting-counter confidence table indexed by PC XOR history."""

    def __init__(self, entries: int = 64 * 1024, counter_bits: int = 4,
                 threshold: int = 3, history_bits: int = 8) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.mask = entries - 1
        self.max_value = (1 << counter_bits) - 1
        self.threshold = threshold
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.table = [0] * entries
        self.ghr = 0
        self.queries = 0
        self.low_confidence = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.ghr) & self.mask

    def is_confident(self, pc: int) -> bool:
        """True when the branch at ``pc`` is predicted with high confidence."""
        self.queries += 1
        confident = self.table[self._index(pc)] >= self.threshold
        if not confident:
            self.low_confidence += 1
        return confident

    def update(self, pc: int, correct: bool, taken: bool) -> None:
        """Train with the resolved prediction correctness."""
        index = self._index(pc)
        if correct:
            if self.table[index] < self.max_value:
                self.table[index] += 1
        else:
            self.table[index] = 0
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self.history_mask

    @property
    def low_confidence_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.low_confidence / self.queries
