"""Branch prediction: gshare, TAGE, bimodal, BTB, JRS confidence."""

from repro.branch.base import BranchPredictor, Prediction
from repro.branch.btb import BranchTargetBuffer
from repro.branch.confidence import ConfidenceEstimator
from repro.branch.gshare import GsharePredictor
from repro.branch.simple import BimodalPredictor, OraclePredictor, StaticPredictor
from repro.branch.tage import TagePredictor


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Factory used by :class:`repro.sim.config.SimConfig`."""
    factories = {
        "gshare": GsharePredictor,
        "tage": TagePredictor,
        "bimodal": BimodalPredictor,
        "static": StaticPredictor,
        "oracle": OraclePredictor,
    }
    if name not in factories:
        raise ValueError(f"unknown branch predictor {name!r}; "
                         f"choose from {sorted(factories)}")
    return factories[name](**kwargs)


__all__ = [
    "BimodalPredictor",
    "BranchPredictor",
    "BranchTargetBuffer",
    "ConfidenceEstimator",
    "GsharePredictor",
    "OraclePredictor",
    "Prediction",
    "StaticPredictor",
    "TagePredictor",
    "make_predictor",
]
