"""TAGE direction predictor (Seznec & Michaud, "A case for (partially)
tagged geometric history length branch prediction").

The paper's "very aggressive" predictor: Table I specifies a TAGE with
8 components, which we realise as a bimodal base predictor plus 7
partially-tagged components with geometric history lengths.

This is a faithful, if compact, TAGE:

* longest-matching tagged component provides the prediction, the next
  match (or the base) is the alternate;
* 3-bit signed counters, 2-bit useful counters, periodic useful decay;
* ``use_alt_on_newly_allocated`` heuristic (4-bit);
* on misprediction, allocate into a longer component whose entry has
  ``u == 0``, else decrement ``u`` along the way.

Global history is updated speculatively at predict time and repaired on a
squash via the snapshot carried in the prediction.

Tagged components are stored as parallel integer arrays (``tag_table``
/ ``ctr_table`` / ``useful_table``, one flat list per component) rather
than entry objects: plain-list state makes :meth:`TagePredictor.clone`
a handful of C-speed list copies, which the sampled-simulation engine
performs once per measurement window.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.branch.base import BranchPredictor, Prediction


def _fold(value: int, length: int, bits: int) -> int:
    """XOR-fold the low ``length`` bits of ``value`` down to ``bits`` bits."""
    value &= (1 << length) - 1
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class TagePredictor(BranchPredictor):
    """Bimodal base + 7 tagged geometric-history components."""

    name = "tage"

    def __init__(
        self,
        num_tagged: int = 7,
        min_history: int = 5,
        max_history: int = 256,
        table_bits: int = 12,
        tag_bits: int = 10,
        base_bits: int = 13,
        useful_reset_period: int = 256 * 1024,
    ) -> None:
        super().__init__()
        self.num_tagged = num_tagged
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.base_size = 1 << base_bits
        self.base_mask = self.base_size - 1

        # Geometric history lengths between min_history and max_history.
        ratio = (max_history / min_history) ** (1.0 / max(1, num_tagged - 1))
        self.history_lengths: List[int] = []
        length = float(min_history)
        for _ in range(num_tagged):
            rounded = int(round(length))
            while self.history_lengths and rounded <= self.history_lengths[-1]:
                rounded += 1
            self.history_lengths.append(rounded)
            length *= ratio
        self.max_history = self.history_lengths[-1]
        self.history_mask = (1 << self.max_history) - 1

        self.base = [2] * self.base_size  # 2-bit, weakly taken
        # Per-component parallel arrays (tag, signed -4..3 counter with
        # >= 0 predicting taken, 0..3 useful counter).
        self.tag_table: List[List[int]] = [
            [0] * self.table_size for _ in range(num_tagged)]
        self.ctr_table: List[List[int]] = [
            [0] * self.table_size for _ in range(num_tagged)]
        self.useful_table: List[List[int]] = [
            [0] * self.table_size for _ in range(num_tagged)]
        self.ghr = 0
        self.use_alt = 8       # 0..15; >= 8 -> trust alt for weak new entries
        self._branch_count = 0
        self._useful_reset_period = useful_reset_period

    # ------------------------------------------------------------------ #

    def _index(self, pc: int, comp: int, history: int) -> int:
        length = self.history_lengths[comp]
        folded = _fold(history, length, self.table_bits)
        return (pc ^ (pc >> (comp + 1)) ^ folded) & (self.table_size - 1)

    def _tag(self, pc: int, comp: int, history: int) -> int:
        length = self.history_lengths[comp]
        folded = _fold(history, length, self.tag_bits)
        folded2 = _fold(history, length, self.tag_bits - 1) << 1
        return (pc ^ folded ^ folded2) & self.tag_mask

    def _base_predict(self, pc: int) -> bool:
        return self.base[pc & self.base_mask] >= 2

    def _base_update(self, pc: int, taken: bool) -> None:
        index = pc & self.base_mask
        counter = self.base[index]
        if taken:
            if counter < 3:
                self.base[index] = counter + 1
        elif counter > 0:
            self.base[index] = counter - 1

    # ------------------------------------------------------------------ #

    def predict(self, pc: int) -> Prediction:
        history = self.ghr
        provider: Optional[int] = None
        alt: Optional[int] = None
        indices = [0] * self.num_tagged
        tags = [0] * self.num_tagged
        for comp in range(self.num_tagged - 1, -1, -1):
            indices[comp] = self._index(pc, comp, history)
            tags[comp] = self._tag(pc, comp, history)
        for comp in range(self.num_tagged - 1, -1, -1):
            if self.tag_table[comp][indices[comp]] == tags[comp]:
                if provider is None:
                    provider = comp
                else:
                    alt = comp
                    break

        base_pred = self._base_predict(pc)
        if provider is not None:
            index = indices[provider]
            ctr = self.ctr_table[provider][index]
            provider_pred = ctr >= 0
            alt_pred = (self.ctr_table[alt][indices[alt]] >= 0
                        if alt is not None else base_pred)
            weak_new = (self.useful_table[provider][index] == 0
                        and ctr in (-1, 0))
            taken = alt_pred if (weak_new and self.use_alt >= 8) \
                else provider_pred
        else:
            provider_pred = base_pred
            alt_pred = base_pred
            taken = base_pred

        self.ghr = ((history << 1)
                    | (1 if taken else 0)) & self.history_mask
        meta = (history, provider, alt, tuple(indices), tuple(tags),
                provider_pred, alt_pred)
        return Prediction(pc, taken, meta=meta)

    # ------------------------------------------------------------------ #

    def update(self, prediction: Prediction, taken: bool) -> None:
        self.record_outcome(prediction, taken)
        (history, provider, alt, indices, tags,
         provider_pred, alt_pred) = prediction.meta
        mispredicted = prediction.taken != taken

        self._branch_count += 1
        if self._branch_count % self._useful_reset_period == 0:
            self._decay_useful()

        if provider is not None:
            index = indices[provider]
            ctrs = self.ctr_table[provider]
            useful = self.useful_table[provider]
            # use_alt heuristic training on weak new entries.
            weak_new = useful[index] == 0 and ctrs[index] in (-1, 0)
            if weak_new and provider_pred != alt_pred:
                if alt_pred == taken:
                    if self.use_alt < 15:
                        self.use_alt += 1
                elif self.use_alt > 0:
                    self.use_alt -= 1
            # Update provider counter.
            if taken:
                if ctrs[index] < 3:
                    ctrs[index] += 1
            elif ctrs[index] > -4:
                ctrs[index] -= 1
            # Useful counter: provider differed from alternate.
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    if useful[index] < 3:
                        useful[index] += 1
                elif useful[index] > 0:
                    useful[index] -= 1
            if alt is None and provider_pred != taken:
                self._base_update(prediction.pc, taken)
        else:
            self._base_update(prediction.pc, taken)

        if mispredicted:
            self._allocate(provider, indices, tags, taken)

    def _allocate(self, provider: Optional[int],
                  indices: Tuple[int, ...], tags: Tuple[int, ...],
                  taken: bool) -> None:
        start = 0 if provider is None else provider + 1
        for comp in range(start, self.num_tagged):
            index = indices[comp]
            if self.useful_table[comp][index] == 0:
                self.tag_table[comp][index] = tags[comp]
                self.ctr_table[comp][index] = 0 if taken else -1
                return
        for comp in range(start, self.num_tagged):
            index = indices[comp]
            if self.useful_table[comp][index] > 0:
                self.useful_table[comp][index] -= 1

    def _decay_useful(self) -> None:
        for table in self.useful_table:
            for index, value in enumerate(table):
                if value > 0:
                    table[index] = value - 1

    def clone(self) -> "TagePredictor":
        """Fast deep copy: shared immutable configuration, private
        counter arrays (a few C-speed list copies — the sampled engine
        clones the warm predictor once per measurement window)."""
        new = self.__class__.__new__(self.__class__)
        new.__dict__.update(self.__dict__)
        new.base = self.base[:]
        new.tag_table = [table[:] for table in self.tag_table]
        new.ctr_table = [table[:] for table in self.ctr_table]
        new.useful_table = [table[:] for table in self.useful_table]
        return new

    def restore(self, prediction: Prediction) -> None:
        history = prediction.meta[0]
        self.ghr = ((history << 1)
                    | (1 if prediction.taken else 0)) & self.history_mask

    def get_history(self) -> int:
        return self.ghr

    def set_history(self, snapshot: int) -> None:
        self.ghr = snapshot & self.history_mask

    def set_history_appended(self, snapshot: int, taken: bool) -> None:
        self.ghr = ((snapshot << 1) | (1 if taken else 0)) \
            & self.history_mask
