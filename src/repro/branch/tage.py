"""TAGE direction predictor (Seznec & Michaud, "A case for (partially)
tagged geometric history length branch prediction").

The paper's "very aggressive" predictor: Table I specifies a TAGE with
8 components, which we realise as a bimodal base predictor plus 7
partially-tagged components with geometric history lengths.

This is a faithful, if compact, TAGE:

* longest-matching tagged component provides the prediction, the next
  match (or the base) is the alternate;
* 3-bit signed counters, 2-bit useful counters, periodic useful decay;
* ``use_alt_on_newly_allocated`` heuristic (4-bit);
* on misprediction, allocate into a longer component whose entry has
  ``u == 0``, else decrement ``u`` along the way.

Global history is updated speculatively at predict time and repaired on a
squash via the snapshot carried in the prediction.

Tagged components are stored as parallel integer arrays (``tag_table``
/ ``ctr_table`` / ``useful_table``, one flat list per component) rather
than entry objects: plain-list state makes :meth:`TagePredictor.clone`
a handful of C-speed list copies, which the sampled-simulation engine
performs once per measurement window.

Folding is *incremental* (Seznec's circular shifted registers): instead
of re-folding up to ``max_history`` bits of global history on every
prediction, each tagged component maintains one index register and two
tag registers, updated in O(1) per branch — rotate within the fold
width, XOR in the new outcome bit, XOR out the bit that just aged past
the component's history length.  The seven registers of each fold
width are packed side by side into a single integer (one padding bit
between fields so the rotate's carry can be masked off), so one shift
of history costs three wide rotates plus a handful of per-component
evict XORs rather than 21 separate register updates.  ``_fold`` (and
the ``_index`` / ``_tag`` methods that recompute from an explicit
history) remain as the reference implementation the property tests
check the packed registers against.  :meth:`train` is the lean
fast-forward path: one fused predict+update with no
``Prediction``/meta allocation, used by the sampled engine's warm-up
where every branch resolves immediately.
"""

from __future__ import annotations

from types import FunctionType, MethodType
from typing import Dict, List, Optional, Sequence, Tuple

from repro.branch.base import BranchPredictor, Prediction


def _fold(value: int, length: int, bits: int) -> int:
    """XOR-fold the low ``length`` bits of ``value`` down to ``bits`` bits."""
    value &= (1 << length) - 1
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


# --------------------------------------------------------------------- #
# Specialised train() codegen.
#
# The warm-up stream calls train() once per branch — at fast-forward
# rates that is the single hottest function in the whole simulator.  A
# generic implementation spends most of its time on Python loop
# machinery: tuple unpacking per component, attribute reloads across
# the predict/update/shift helper calls, scratch-list stores on the
# 85%+ of branches that never allocate.  Since the table geometry is
# fixed per predictor configuration, we instead generate one flat
# function per geometry with every mask/shift/stride baked in as a
# literal and the seven components unrolled.  ``train_reference`` (the
# generic predict/update/restore composition) and the folded-register
# property tests pin the generated code to the reference semantics bit
# for bit.
# --------------------------------------------------------------------- #

_TRAIN_CACHE: Dict[tuple, object] = {}
_PREDICT_CACHE: Dict[tuple, object] = {}


class _FoldLayout:
    """The packed fold-register layout for one table geometry — the
    single source of truth consumed both by the predictor's live
    geometry (``_init_fold_geometry``) and by the train codegen
    (``_build_train_source``), so the two can never drift apart.

    Groups 0/1 (index fold of width ``table_bits``, first tag fold of
    width ``tag_bits``) put component c's register at bit ``stride*c``;
    group 2 (the second tag fold, width ``tag_bits - 1``, only ever
    consumed as ``f2 << 1``) stores it pre-shifted at ``stride*c + 1``
    with bit ``stride*c`` held zero, so the match extraction reads
    ``f2 << 1`` directly with no per-component shift.  One spare bit
    per field absorbs the rotate's carry until the group mask clears
    it.
    """

    __slots__ = ("widths", "offsets", "strides", "group", "top",
                 "insert", "evict")

    def __init__(self, num_tagged: int, table_bits: int, tag_bits: int,
                 history_lengths: Sequence[int]) -> None:
        self.widths = (table_bits, tag_bits, tag_bits - 1)
        self.offsets = (0, 0, 1)
        self.strides = tuple(width + 1 + offset for width, offset
                             in zip(self.widths, self.offsets))
        group = [0, 0, 0]
        top = [0, 0, 0]
        insert = [0, 0, 0]
        for g in range(3):
            for comp in range(num_tagged):
                base_bit = self.strides[g] * comp + self.offsets[g]
                group[g] |= ((1 << self.widths[g]) - 1) << base_bit
                top[g] |= 1 << (base_bit + self.widths[g] - 1)
                insert[g] |= 1 << base_bit
        self.group = tuple(group)
        self.top = tuple(top)
        self.insert = tuple(insert)
        #: Per component: (ghr bit position of the aged-out history
        #: bit, XOR mask for each of the three group registers).
        self.evict = tuple(
            (hist_len - 1,
             tuple(1 << (self.strides[g] * comp + self.offsets[g]
                         + hist_len % self.widths[g])
                   for g in range(3)))
            for comp, hist_len in enumerate(history_lengths))


def _build_train_source(num_tagged: int, table_bits: int, tag_bits: int,
                        history_lengths: Sequence[int], base_mask: int,
                        history_mask: int, useful_reset_period: int) -> str:
    idx_mask = (1 << table_bits) - 1
    tag_mask = (1 << tag_bits) - 1
    layout = _FoldLayout(num_tagged, table_bits, tag_bits,
                         history_lengths)
    strides = layout.strides
    widths = layout.widths
    group = layout.group
    top = layout.top
    insert = layout.insert

    lines: List[str] = []
    emit = lines.append
    # The trailing parameters are never passed at call sites: they are
    # *defaults* rebound per instance (``_bind_train``), which loads
    # the table objects from the code object's constants instead of
    # per-call attribute lookups.
    emit("def _train(self, pc, taken, tag_table=None, ctr_table=None,"
         " useful_table=None, base=None, idxs=None, tags=None):")
    emit("    p_idx = self._p_idx")
    emit("    p_tag1 = self._p_tag1")
    emit("    p_tag2 = self._p_tag2")
    emit("    provider = alt = -1")
    emit("    p_index = a_index = 0")
    # Match scan, longest component first (provider = first match,
    # alt = second).
    for comp in range(num_tagged - 1, -1, -1):
        o_idx = strides[0] * comp
        o_tag1 = strides[1] * comp
        o_tag2 = strides[2] * comp
        fi = f"(p_idx >> {o_idx})" if o_idx else "p_idx"
        f1 = f"(p_tag1 >> {o_tag1})" if o_tag1 else "p_tag1"
        f2 = f"(p_tag2 >> {o_tag2})" if o_tag2 else "p_tag2"
        emit(f"    i{comp} = (pc ^ (pc >> {comp + 1}) ^ {fi}) & {idx_mask}")
        emit(f"    t{comp} = (pc ^ {f1} ^ {f2}) & {tag_mask}")
        emit(f"    if tag_table[{comp}][i{comp}] == t{comp}:")
        emit("        if provider < 0:")
        emit(f"            provider = {comp}")
        emit(f"            p_index = i{comp}")
        emit("        elif alt < 0:")
        emit(f"            alt = {comp}")
        emit(f"            a_index = i{comp}")
    # Prediction (mirrors predict(); the bimodal base is only read on
    # the paths that actually consult it).
    emit("    if provider >= 0:")
    emit("        ctrs = ctr_table[provider]")
    emit("        ctr = ctrs[p_index]")
    emit("        provider_pred = ctr >= 0")
    emit("        useful = useful_table[provider]")
    emit("        u = useful[p_index]")
    emit("        weak_new = u == 0 and -1 <= ctr <= 0")
    emit("        if alt >= 0:")
    emit("            alt_pred = ctr_table[alt][a_index] >= 0")
    emit("        else:")
    emit(f"            alt_pred = base[pc & {base_mask}] >= 2")
    emit("        chosen = (alt_pred if weak_new and self.use_alt >= 8"
         " else provider_pred)")
    emit("    else:")
    emit(f"        provider_pred = alt_pred = chosen = "
         f"base[pc & {base_mask}] >= 2")
    emit("    correct = chosen == taken")
    # Resolution-time training (mirrors _train_tables()).  The branch
    # counter driving useful-decay IS the predictions counter: both
    # increment exactly once per resolved branch on every path.
    emit("    bc = self.predictions + 1")
    emit("    self.predictions = bc")
    if useful_reset_period & (useful_reset_period - 1) == 0:
        emit(f"    if bc & {useful_reset_period - 1} == 0:")
    else:
        emit(f"    if bc % {useful_reset_period} == 0:")
    emit("        self._decay_useful()")
    emit("        if provider >= 0:")
    emit("            u = useful[p_index]")
    emit("            weak_new = u == 0 and -1 <= ctr <= 0")
    base_update = [
        f"base_index = pc & {base_mask}",
        "base_ctr = base[base_index]",
        "if taken:",
        "    if base_ctr < 3:",
        "        base[base_index] = base_ctr + 1",
        "elif base_ctr > 0:",
        "    base[base_index] = base_ctr - 1",
    ]
    emit("    if provider >= 0:")
    emit("        if weak_new and provider_pred != alt_pred:")
    emit("            use_alt = self.use_alt")
    emit("            if alt_pred == taken:")
    emit("                if use_alt < 15:")
    emit("                    self.use_alt = use_alt + 1")
    emit("            elif use_alt > 0:")
    emit("                self.use_alt = use_alt - 1")
    emit("        if taken:")
    emit("            if ctr < 3:")
    emit("                ctrs[p_index] = ctr + 1")
    emit("        elif ctr > -4:")
    emit("            ctrs[p_index] = ctr - 1")
    emit("        if provider_pred != alt_pred:")
    emit("            if provider_pred == taken:")
    emit("                if u < 3:")
    emit("                    useful[p_index] = u + 1")
    emit("            elif u > 0:")
    emit("                useful[p_index] = u - 1")
    emit("        if alt < 0 and provider_pred != taken:")
    for line in base_update:
        emit("            " + line)
    emit("    else:")
    for line in base_update:
        emit("        " + line)
    # Allocation on misprediction (rare: fill the scratch arrays only
    # here).
    emit("    if not correct:")
    emit("        self.mispredictions += 1")
    for comp in range(num_tagged):
        emit(f"        idxs[{comp}] = i{comp}")
        emit(f"        tags[{comp}] = t{comp}")
    emit("        self._allocate(provider if provider >= 0 else None,"
         " idxs, tags, taken)")
    # History shift (mirrors _shift_history()).  self.ghr is stored
    # unmasked and re-masked every 64 branches: high stray bits are
    # invisible to the fold/evict arithmetic (which only reads bits
    # below max_history), and get_history() masks on read.
    emit("    ghr = self.ghr")
    emit(f"    p_idx = ((p_idx << 1) | ((p_idx & {top[0]})"
         f" >> {widths[0] - 1})) & {group[0]}")
    emit(f"    p_tag1 = ((p_tag1 << 1) | ((p_tag1 & {top[1]})"
         f" >> {widths[1] - 1})) & {group[1]}")
    emit(f"    p_tag2 = ((p_tag2 << 1) | ((p_tag2 & {top[2]})"
         f" >> {widths[2] - 1})) & {group[2]}")
    emit("    if taken:")
    emit(f"        p_idx ^= {insert[0]}")
    emit(f"        p_tag1 ^= {insert[1]}")
    emit(f"        p_tag2 ^= {insert[2]}")
    emit("        new_ghr = (ghr << 1) | 1")
    emit("    else:")
    emit("        new_ghr = ghr << 1")
    emit("    if bc & 63 == 0:")
    emit(f"        new_ghr &= {history_mask}")
    emit("    self.ghr = new_ghr")
    max_pos = max(pos for pos, _masks in layout.evict)
    for pos, masks in layout.evict:
        # Test the evicted bit in whichever form keeps the intermediate
        # small: AND against a one-hot mask scans min(len(ghr),
        # len(mask)) digits, a shift allocates len(ghr) - pos digits —
        # pick per position.
        if pos <= max_pos - pos:
            emit(f"    if ghr & {1 << pos}:")
        else:
            emit(f"    if (ghr >> {pos}) & 1:")
        emit(f"        p_idx ^= {masks[0]}")
        emit(f"        p_tag1 ^= {masks[1]}")
        emit(f"        p_tag2 ^= {masks[2]}")
    emit("    self._p_idx = p_idx")
    emit("    self._p_tag1 = p_tag1")
    emit("    self._p_tag2 = p_tag2")
    emit("    return correct")
    return "\n".join(lines)


def _specialized_train(predictor: "TagePredictor"):
    """The geometry-specialised train function for ``predictor``
    (exec'd once per distinct geometry, then cached)."""
    key = (predictor.num_tagged, predictor.table_bits, predictor.tag_bits,
           tuple(predictor.history_lengths), predictor.base_mask,
           predictor.history_mask, predictor._useful_reset_period)
    impl = _TRAIN_CACHE.get(key)
    if impl is None:
        source = _build_train_source(*key)
        namespace: dict = {}
        exec(compile(source, "<tage-specialized-train>", "exec"), namespace)
        impl = namespace["_train"]
        impl.__doc__ = ("Geometry-specialised TAGE train "
                        "(generated by _build_train_source):\n\n" + source)
        _TRAIN_CACHE[key] = impl
    return impl


def _bind_train(predictor: "TagePredictor") -> MethodType:
    """Bind the cached specialised function to ``predictor``, baking
    its table objects in as argument defaults (they are mutated in
    place, never reassigned, so the binding stays valid; clone() and
    __setstate__ re-bind because they create fresh lists)."""
    impl = _specialized_train(predictor)
    bound = FunctionType(
        impl.__code__, impl.__globals__, impl.__name__,
        (predictor.tag_table, predictor.ctr_table,
         predictor.useful_table, predictor.base,
         predictor._scratch_idx, predictor._scratch_tag))
    return MethodType(bound, predictor)


def _build_predict_source(num_tagged: int, table_bits: int, tag_bits: int,
                          history_lengths: Sequence[int], base_mask: int,
                          history_mask: int) -> str:
    """Geometry-specialised ``predict`` source: the match scan unrolled
    with the fold offsets baked in and :meth:`_shift_history` inlined.
    Must stay bit-identical to the class-level reference ``predict``
    (same taken bit, same meta tuple, same fold/ghr side effects) —
    the parity property test pins it."""
    idx_mask = (1 << table_bits) - 1
    tag_mask = (1 << tag_bits) - 1
    layout = _FoldLayout(num_tagged, table_bits, tag_bits,
                         history_lengths)
    strides = layout.strides
    widths = layout.widths
    group = layout.group
    top = layout.top
    insert = layout.insert

    lines: List[str] = []
    emit = lines.append
    emit("def _predict(self, pc, tag_table=None, ctr_table=None,"
         " useful_table=None, base=None, Prediction=None):")
    emit("    p_idx = self._p_idx")
    emit("    p_tag1 = self._p_tag1")
    emit("    p_tag2 = self._p_tag2")
    emit("    provider = alt = -1")
    emit("    p_index = a_index = 0")
    for comp in range(num_tagged - 1, -1, -1):
        o_idx = strides[0] * comp
        o_tag1 = strides[1] * comp
        o_tag2 = strides[2] * comp
        fi = f"(p_idx >> {o_idx})" if o_idx else "p_idx"
        f1 = f"(p_tag1 >> {o_tag1})" if o_tag1 else "p_tag1"
        f2 = f"(p_tag2 >> {o_tag2})" if o_tag2 else "p_tag2"
        emit(f"    i{comp} = (pc ^ (pc >> {comp + 1}) ^ {fi}) & {idx_mask}")
        emit(f"    t{comp} = (pc ^ {f1} ^ {f2}) & {tag_mask}")
        emit(f"    if tag_table[{comp}][i{comp}] == t{comp}:")
        emit("        if provider < 0:")
        emit(f"            provider = {comp}")
        emit(f"            p_index = i{comp}")
        emit("        elif alt < 0:")
        emit(f"            alt = {comp}")
        emit(f"            a_index = i{comp}")
    emit("    if provider >= 0:")
    emit("        ctr = ctr_table[provider][p_index]")
    emit("        provider_pred = ctr >= 0")
    emit("        if alt >= 0:")
    emit("            alt_pred = ctr_table[alt][a_index] >= 0")
    emit("            meta_alt = alt")
    emit("        else:")
    emit(f"            alt_pred = base[pc & {base_mask}] >= 2")
    emit("            meta_alt = None")
    emit("        if (useful_table[provider][p_index] == 0"
         " and -1 <= ctr <= 0 and self.use_alt >= 8):")
    emit("            taken = alt_pred")
    emit("        else:")
    emit("            taken = provider_pred")
    emit("        meta_provider = provider")
    emit("    else:")
    emit(f"        provider_pred = alt_pred = taken ="
         f" base[pc & {base_mask}] >= 2")
    emit("        meta_provider = meta_alt = None")
    # Snapshot before the shift, exactly like the reference predict.
    emit("    ghr = self.ghr")
    emit("    snapshot = (ghr, p_idx, p_tag1, p_tag2)")
    # _shift_history inlined (masked every shift, like the reference —
    # the train fast path's deferred re-mask trick is train-only).
    emit(f"    p_idx = ((p_idx << 1) | ((p_idx & {top[0]})"
         f" >> {widths[0] - 1})) & {group[0]}")
    emit(f"    p_tag1 = ((p_tag1 << 1) | ((p_tag1 & {top[1]})"
         f" >> {widths[1] - 1})) & {group[1]}")
    emit(f"    p_tag2 = ((p_tag2 << 1) | ((p_tag2 & {top[2]})"
         f" >> {widths[2] - 1})) & {group[2]}")
    emit("    if taken:")
    emit(f"        p_idx ^= {insert[0]}")
    emit(f"        p_tag1 ^= {insert[1]}")
    emit(f"        p_tag2 ^= {insert[2]}")
    emit(f"        self.ghr = ((ghr << 1) | 1) & {history_mask}")
    emit("    else:")
    emit(f"        self.ghr = (ghr << 1) & {history_mask}")
    max_pos = max(pos for pos, _masks in layout.evict)
    for pos, masks in layout.evict:
        if pos <= max_pos - pos:
            emit(f"    if ghr & {1 << pos}:")
        else:
            emit(f"    if (ghr >> {pos}) & 1:")
        emit(f"        p_idx ^= {masks[0]}")
        emit(f"        p_tag1 ^= {masks[1]}")
        emit(f"        p_tag2 ^= {masks[2]}")
    emit("    self._p_idx = p_idx")
    emit("    self._p_tag1 = p_tag1")
    emit("    self._p_tag2 = p_tag2")
    indices = ", ".join(f"i{comp}" for comp in range(num_tagged))
    tags = ", ".join(f"t{comp}" for comp in range(num_tagged))
    emit("    return Prediction(pc, taken,"
         " (snapshot, meta_provider, meta_alt,"
         f" [{indices}], [{tags}], provider_pred, alt_pred))")
    return "\n".join(lines)


def _specialized_predict(predictor: "TagePredictor"):
    key = (predictor.num_tagged, predictor.table_bits, predictor.tag_bits,
           tuple(predictor.history_lengths), predictor.base_mask,
           predictor.history_mask)
    impl = _PREDICT_CACHE.get(key)
    if impl is None:
        source = _build_predict_source(*key)
        namespace: dict = {}
        exec(compile(source, "<tage-specialized-predict>", "exec"),
             namespace)
        impl = namespace["_predict"]
        impl.__doc__ = ("Geometry-specialised TAGE predict "
                        "(generated by _build_predict_source):\n\n"
                        + source)
        _PREDICT_CACHE[key] = impl
    return impl


def _bind_predict(predictor: "TagePredictor") -> MethodType:
    """Like :func:`_bind_train`, for the detailed core's predict path."""
    impl = _specialized_predict(predictor)
    bound = FunctionType(
        impl.__code__, impl.__globals__, impl.__name__,
        (predictor.tag_table, predictor.ctr_table,
         predictor.useful_table, predictor.base, Prediction))
    return MethodType(bound, predictor)


class TagePredictor(BranchPredictor):
    """Bimodal base + 7 tagged geometric-history components."""

    name = "tage"

    def __init__(
        self,
        num_tagged: int = 7,
        min_history: int = 5,
        max_history: int = 256,
        table_bits: int = 12,
        tag_bits: int = 10,
        base_bits: int = 13,
        useful_reset_period: int = 256 * 1024,
    ) -> None:
        super().__init__()
        self.num_tagged = num_tagged
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.base_size = 1 << base_bits
        self.base_mask = self.base_size - 1

        # Geometric history lengths between min_history and max_history.
        ratio = (max_history / min_history) ** (1.0 / max(1, num_tagged - 1))
        self.history_lengths: List[int] = []
        length = float(min_history)
        for _ in range(num_tagged):
            rounded = int(round(length))
            while self.history_lengths and rounded <= self.history_lengths[-1]:
                rounded += 1
            self.history_lengths.append(rounded)
            length *= ratio
        self.max_history = self.history_lengths[-1]
        self.history_mask = (1 << self.max_history) - 1

        self.base = [2] * self.base_size  # 2-bit, weakly taken
        # Per-component parallel arrays (tag, signed -4..3 counter with
        # >= 0 predicting taken, 0..3 useful counter).
        self.tag_table: List[List[int]] = [
            [0] * self.table_size for _ in range(num_tagged)]
        self.ctr_table: List[List[int]] = [
            [0] * self.table_size for _ in range(num_tagged)]
        self.useful_table: List[List[int]] = [
            [0] * self.table_size for _ in range(num_tagged)]
        self.ghr = 0
        self.use_alt = 8       # 0..15; >= 8 -> trust alt for weak new entries
        self._useful_reset_period = useful_reset_period

        self._init_fold_geometry()
        # The packed fold registers: component ``c``'s register lives at
        # bit offset ``stride * c`` of its group integer, maintained
        # equal to ``_fold(ghr, history_lengths[c], width)``.
        self._p_idx = 0
        self._p_tag1 = 0
        self._p_tag2 = 0
        # Scratch index/tag arrays reused by train() (no per-branch
        # allocation on the fast-forward path).
        self._scratch_idx: List[int] = [0] * num_tagged
        self._scratch_tag: List[int] = [0] * num_tagged
        # Bind the geometry-specialised train and predict (shadowing
        # the class-level methods; rebound by clone()/__setstate__).
        self.train = _bind_train(self)
        self.predict = _bind_predict(self)

    def _init_fold_geometry(self) -> None:
        """Adopt the shared packed-register layout (see
        :class:`_FoldLayout` — the same instance of truth the train
        codegen consumes) in the access patterns the generic methods
        use."""
        layout = _FoldLayout(self.num_tagged, self.table_bits,
                             self.tag_bits, self.history_lengths)
        strides = layout.strides
        self._strides = strides
        self._group_masks = layout.group
        self._top_masks = layout.top
        self._insert_masks = layout.insert
        # Per-component eviction data: (ghr bit position of the
        # aged-out history bit, XOR mask per group register).
        self._evict_geom: List[Tuple[int, int, int, int]] = [
            (pos, masks[0], masks[1], masks[2])
            for pos, masks in layout.evict]
        # Match-loop geometry, longest component first:
        # (comp, pc shift, field offset per group).
        self._match_geom: List[Tuple[int, int, int, int, int]] = [
            (comp, comp + 1, strides[0] * comp, strides[1] * comp,
             strides[2] * comp)
            for comp in range(self.num_tagged - 1, -1, -1)]

    # ------------------------------------------------------------------ #
    # Reference folding (property-test oracle; not on the hot path).
    # ------------------------------------------------------------------ #

    def _index(self, pc: int, comp: int, history: int) -> int:
        length = self.history_lengths[comp]
        folded = _fold(history, length, self.table_bits)
        return (pc ^ (pc >> (comp + 1)) ^ folded) & (self.table_size - 1)

    def _tag(self, pc: int, comp: int, history: int) -> int:
        length = self.history_lengths[comp]
        folded = _fold(history, length, self.tag_bits)
        folded2 = _fold(history, length, self.tag_bits - 1) << 1
        return (pc ^ folded ^ folded2) & self.tag_mask

    def _folded(self, comp: int) -> Tuple[int, int, int]:
        """The component's three live fold-register values (tests)."""
        s_idx, s_tag1, s_tag2 = self._strides
        return ((self._p_idx >> (s_idx * comp)) & (self.table_size - 1),
                (self._p_tag1 >> (s_tag1 * comp)) & self.tag_mask,
                (self._p_tag2 >> (s_tag2 * comp + 1))
                & ((1 << (self.tag_bits - 1)) - 1))

    # ------------------------------------------------------------------ #
    # Incremental folded-history maintenance.
    # ------------------------------------------------------------------ #

    def _shift_history(self, bit: int) -> None:
        """Append one outcome bit: rotate all three register groups,
        XOR the new bit into every field's bit 0 and XOR out each
        component's aged-out history bit — O(1) per branch instead of
        re-folding the whole history."""
        ghr = self.ghr
        width_idx = self.table_bits
        width_tag1 = self.tag_bits
        width_tag2 = width_tag1 - 1
        group_idx, group_tag1, group_tag2 = self._group_masks
        top_idx, top_tag1, top_tag2 = self._top_masks

        p = self._p_idx
        p_idx = ((p << 1) | ((p & top_idx) >> (width_idx - 1))) & group_idx
        p = self._p_tag1
        p_tag1 = ((p << 1) | ((p & top_tag1) >> (width_tag1 - 1))) \
            & group_tag1
        p = self._p_tag2
        p_tag2 = ((p << 1) | ((p & top_tag2) >> (width_tag2 - 1))) \
            & group_tag2
        if bit:
            ins = self._insert_masks
            p_idx ^= ins[0]
            p_tag1 ^= ins[1]
            p_tag2 ^= ins[2]
        for evict_shift, e_idx, e_tag1, e_tag2 in self._evict_geom:
            if (ghr >> evict_shift) & 1:
                p_idx ^= e_idx
                p_tag1 ^= e_tag1
                p_tag2 ^= e_tag2
        self._p_idx = p_idx
        self._p_tag1 = p_tag1
        self._p_tag2 = p_tag2
        self.ghr = ((ghr << 1) | bit) & self.history_mask

    def _rebuild_folds(self) -> None:
        """Recompute the packed registers from ``self.ghr`` — only on
        the rare re-anchoring paths (:meth:`set_history` after a
        recovery, checkpoint rollback), never per prediction."""
        ghr = self.ghr
        s_idx, s_tag1, s_tag2 = self._strides
        p_idx = p_tag1 = p_tag2 = 0
        for comp, length in enumerate(self.history_lengths):
            p_idx |= _fold(ghr, length, self.table_bits) << (s_idx * comp)
            p_tag1 |= _fold(ghr, length, self.tag_bits) << (s_tag1 * comp)
            p_tag2 |= _fold(ghr, length, self.tag_bits - 1) \
                << (s_tag2 * comp + 1)
        self._p_idx = p_idx
        self._p_tag1 = p_tag1
        self._p_tag2 = p_tag2

    # ------------------------------------------------------------------ #

    def _base_predict(self, pc: int) -> bool:
        return self.base[pc & self.base_mask] >= 2

    def _base_update(self, pc: int, taken: bool) -> None:
        index = pc & self.base_mask
        counter = self.base[index]
        if taken:
            if counter < 3:
                self.base[index] = counter + 1
        elif counter > 0:
            self.base[index] = counter - 1

    # ------------------------------------------------------------------ #

    def _match(self, pc: int, indices: List[int], tags: List[int]):
        """Fill ``indices``/``tags`` from the fold registers and return
        (provider, alt): the longest and second-longest matching
        components (None where absent)."""
        p_idx = self._p_idx
        p_tag1 = self._p_tag1
        p_tag2 = self._p_tag2
        idx_mask = self.table_size - 1
        tag_mask = self.tag_mask
        tag_table = self.tag_table
        provider: Optional[int] = None
        alt: Optional[int] = None
        for comp, pc_shift, o_idx, o_tag1, o_tag2 in self._match_geom:
            index = (pc ^ (pc >> pc_shift)
                     ^ (p_idx >> o_idx)) & idx_mask
            # Stray bits of neighbouring fields all sit above tag_mask
            # after the shifts, so one final mask suffices; the second
            # tag group is stored pre-shifted (already ``f2 << 1``).
            tag = (pc ^ (p_tag1 >> o_tag1)
                   ^ (p_tag2 >> o_tag2)) & tag_mask
            indices[comp] = index
            tags[comp] = tag
            if tag_table[comp][index] == tag:
                if provider is None:
                    provider = comp
                elif alt is None:
                    alt = comp
        return provider, alt

    def predict(self, pc: int) -> Prediction:
        # ``_match`` fused inline (it remains the oracle for the
        # fold-consistency tests); the meta carries the fresh index/tag
        # lists directly — they are never mutated after this point, so
        # copying them into tuples bought nothing.
        num_tagged = self.num_tagged
        indices = [0] * num_tagged
        tags = [0] * num_tagged
        p_idx = self._p_idx
        p_tag1 = self._p_tag1
        p_tag2 = self._p_tag2
        idx_mask = self.table_size - 1
        tag_mask = self.tag_mask
        tag_table = self.tag_table
        provider: Optional[int] = None
        alt: Optional[int] = None
        for comp, pc_shift, o_idx, o_tag1, o_tag2 in self._match_geom:
            index = (pc ^ (pc >> pc_shift)
                     ^ (p_idx >> o_idx)) & idx_mask
            tag = (pc ^ (p_tag1 >> o_tag1)
                   ^ (p_tag2 >> o_tag2)) & tag_mask
            indices[comp] = index
            tags[comp] = tag
            if tag_table[comp][index] == tag:
                if provider is None:
                    provider = comp
                elif alt is None:
                    alt = comp

        base_pred = self.base[pc & self.base_mask] >= 2
        if provider is not None:
            index = indices[provider]
            ctr = self.ctr_table[provider][index]
            provider_pred = ctr >= 0
            alt_pred = (self.ctr_table[alt][indices[alt]] >= 0
                        if alt is not None else base_pred)
            weak_new = (self.useful_table[provider][index] == 0
                        and ctr in (-1, 0))
            taken = alt_pred if (weak_new and self.use_alt >= 8) \
                else provider_pred
        else:
            provider_pred = base_pred
            alt_pred = base_pred
            taken = base_pred

        snapshot = (self.ghr, p_idx, p_tag1, p_tag2)
        self._shift_history(1 if taken else 0)
        meta = (snapshot, provider, alt, indices, tags,
                provider_pred, alt_pred)
        return Prediction(pc, taken, meta=meta)

    # ------------------------------------------------------------------ #

    def _train_tables(self, pc: int, taken: bool, chosen: bool,
                      provider: Optional[int], alt: Optional[int],
                      indices: Sequence[int], tags: Sequence[int],
                      provider_pred: bool, alt_pred: bool) -> None:
        """Resolution-time table training shared by :meth:`update` and
        :meth:`train` (``chosen`` is the direction actually predicted)."""
        # ``predictions`` (already incremented by record_outcome /
        # train) is the per-resolved-branch counter driving decay.
        if self.predictions % self._useful_reset_period == 0:
            self._decay_useful()

        if provider is not None:
            index = indices[provider]
            ctrs = self.ctr_table[provider]
            useful = self.useful_table[provider]
            # use_alt heuristic training on weak new entries.
            weak_new = useful[index] == 0 and ctrs[index] in (-1, 0)
            if weak_new and provider_pred != alt_pred:
                if alt_pred == taken:
                    if self.use_alt < 15:
                        self.use_alt += 1
                elif self.use_alt > 0:
                    self.use_alt -= 1
            # Update provider counter.
            if taken:
                if ctrs[index] < 3:
                    ctrs[index] += 1
            elif ctrs[index] > -4:
                ctrs[index] -= 1
            # Useful counter: provider differed from alternate.
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    if useful[index] < 3:
                        useful[index] += 1
                elif useful[index] > 0:
                    useful[index] -= 1
            if alt is None and provider_pred != taken:
                self._base_update(pc, taken)
        else:
            self._base_update(pc, taken)

        if chosen != taken:
            self._allocate(provider, indices, tags, taken)

    def update(self, prediction: Prediction, taken: bool) -> None:
        self.record_outcome(prediction, taken)
        (_snapshot, provider, alt, indices, tags,
         provider_pred, alt_pred) = prediction.meta
        self._train_tables(prediction.pc, taken, prediction.taken,
                           provider, alt, indices, tags,
                           provider_pred, alt_pred)

    def train(self, pc: int, taken: bool) -> bool:
        """Fused predict+update for the functional warm-up stream.

        Equivalent, bit for bit, to ``predict`` / ``update`` /
        ``restore``-on-mispredict (the discipline the warm-up observer
        follows), but with no ``Prediction`` object, no meta tuple and
        no fold snapshot: the outcome is known immediately, so the
        actual bit goes straight into the history.  Returns True when
        the prediction was correct.

        ``__init__`` shadows this with the geometry-specialised
        implementation (see :func:`_specialized_train`); this class
        method only runs for instances that lost the binding (e.g.
        restored from an old pickle) and simply re-establishes it.
        """
        bound = _bind_train(self)
        self.train = bound
        return bound(pc, taken)

    def train_reference(self, pc: int, taken: bool) -> bool:
        """Reference composition of the public predictor protocol —
        exactly the generic :meth:`BranchPredictor.train` (which the
        bound specialised ``train`` shadows on instances, hence the
        explicit base-class call). Exercised by the property tests as
        the oracle the generated fast path must match bit for bit."""
        return BranchPredictor.train(self, pc, taken)

    def _allocate(self, provider: Optional[int],
                  indices: Sequence[int], tags: Sequence[int],
                  taken: bool) -> None:
        start = 0 if provider is None else provider + 1
        for comp in range(start, self.num_tagged):
            index = indices[comp]
            if self.useful_table[comp][index] == 0:
                self.tag_table[comp][index] = tags[comp]
                self.ctr_table[comp][index] = 0 if taken else -1
                return
        for comp in range(start, self.num_tagged):
            index = indices[comp]
            if self.useful_table[comp][index] > 0:
                self.useful_table[comp][index] -= 1

    def _decay_useful(self) -> None:
        # Columnar: one C-speed sweep per component, skipping components
        # with no live useful counters (the common case early on),
        # instead of a Python-level scan of all 7 x 4096 entries.
        for table in self.useful_table:
            if any(table):
                table[:] = [value and value - 1 for value in table]

    def clone(self) -> "TagePredictor":
        """Fast deep copy: shared immutable configuration, private
        counter arrays (a few C-speed list copies — the sampled engine
        clones the warm predictor once per measurement window). The
        packed fold registers are plain ints, so ``__dict__`` copying
        already detaches them."""
        new = self.__class__.__new__(self.__class__)
        new.__dict__.update(self.__dict__)
        new.base = self.base[:]
        new.tag_table = [table[:] for table in self.tag_table]
        new.ctr_table = [table[:] for table in self.ctr_table]
        new.useful_table = [table[:] for table in self.useful_table]
        new._scratch_idx = [0] * self.num_tagged
        new._scratch_tag = [0] * self.num_tagged
        # The copied bound methods still target *self* and the old
        # table objects; rebind against the fresh copies.
        new.train = _bind_train(new)
        new.predict = _bind_predict(new)
        return new

    def restore(self, prediction: Prediction) -> None:
        snapshot = prediction.meta[0]
        self.ghr = snapshot[0]
        self._p_idx = snapshot[1]
        self._p_tag1 = snapshot[2]
        self._p_tag2 = snapshot[3]
        self._shift_history(1 if prediction.taken else 0)

    def __getstate__(self):
        # The bound specialised train/predict don't pickle (exec'd
        # functions); __setstate__ re-establishes them.
        state = self.__dict__.copy()
        state.pop("train", None)
        state.pop("predict", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.train = _bind_train(self)
        self.predict = _bind_predict(self)

    def get_history(self) -> int:
        # The specialised train() stores ghr unmasked between its
        # periodic re-masks; normalise on exposure.
        return self.ghr & self.history_mask

    def set_history(self, snapshot: int) -> None:
        self.ghr = snapshot & self.history_mask
        self._rebuild_folds()

    def set_history_appended(self, snapshot: int, taken: bool) -> None:
        self.ghr = ((snapshot << 1) | (1 if taken else 0)) \
            & self.history_mask
        self._rebuild_folds()
