"""Branch target buffer.

Direction predictors only give taken/not-taken; the front end also needs
targets. Direct branches/jumps carry their target in the instruction, so
the BTB is only consulted for indirect jumps (``JR``), where it predicts
the last observed target per PC (set-associative, LRU).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class BranchTargetBuffer:
    """Set-associative last-target predictor for indirect jumps."""

    def __init__(self, sets: int = 512, ways: int = 4) -> None:
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self.mask = sets - 1
        self._tag_shift = sets.bit_length() - 1
        # One LRU-ordered dict of {tag: target} per set.
        self._table = [OrderedDict() for _ in range(sets)]
        self.lookups = 0
        self.hits = 0
        self.mispredicted_targets = 0

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for the indirect jump at ``pc`` (None on miss)."""
        self.lookups += 1
        entry_set = self._table[pc & self.mask]
        tag = pc >> self._tag_shift
        target = entry_set.get(tag)
        if target is not None:
            entry_set.move_to_end(tag)
            self.hits += 1
        return target

    def update(self, pc: int, target: int, correct: bool) -> None:
        """Record the resolved target of the indirect jump at ``pc``."""
        if not correct:
            self.mispredicted_targets += 1
        entry_set = self._table[pc & self.mask]
        tag = pc >> self._tag_shift
        entry_set[tag] = target
        entry_set.move_to_end(tag)
        while len(entry_set) > self.ways:
            entry_set.popitem(last=False)
