"""gshare direction predictor (McFarling).

The paper's "fast and simple" predictor: a 64K-entry pattern history table
of 2-bit saturating counters indexed by PC XOR global history (Table I:
"PHT size: 64k").
"""

from __future__ import annotations

from repro.branch.base import BranchPredictor, Prediction


class GsharePredictor(BranchPredictor):
    """Global-history XOR-indexed PHT of 2-bit counters."""

    name = "gshare"

    def __init__(self, pht_entries: int = 64 * 1024,
                 history_bits: int = 16) -> None:
        super().__init__()
        if pht_entries & (pht_entries - 1):
            raise ValueError("pht_entries must be a power of two")
        self.pht_entries = pht_entries
        self.index_mask = pht_entries - 1
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.pht = [2] * pht_entries  # weakly taken
        self.ghr = 0

    def _index(self, pc: int, history: int) -> int:
        return (pc ^ history) & self.index_mask

    def predict(self, pc: int) -> Prediction:
        history = self.ghr
        index = self._index(pc, history)
        taken = self.pht[index] >= 2
        # Speculative history update; snapshot lets restore() undo it.
        self.ghr = ((history << 1) | (1 if taken else 0)) & self.history_mask
        return Prediction(pc, taken, meta=(history, index))

    def update(self, prediction: Prediction, taken: bool) -> None:
        self.record_outcome(prediction, taken)
        _, index = prediction.meta
        counter = self.pht[index]
        if taken:
            if counter < 3:
                self.pht[index] = counter + 1
        else:
            if counter > 0:
                self.pht[index] = counter - 1

    def restore(self, prediction: Prediction) -> None:
        history, _ = prediction.meta
        self.ghr = ((history << 1)
                    | (1 if prediction.taken else 0)) & self.history_mask

    def get_history(self) -> int:
        return self.ghr

    def set_history(self, snapshot: int) -> None:
        self.ghr = snapshot & self.history_mask

    def set_history_appended(self, snapshot: int, taken: bool) -> None:
        self.ghr = ((snapshot << 1) | (1 if taken else 0)) \
            & self.history_mask
