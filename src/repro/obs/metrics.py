"""Interval time-series metrics (per-N-instruction IPC, MPKI, ...).

:class:`IntervalRecorder` is the hook object a detailed core arms via
``core.attach_metrics``; ``commit_one`` samples it every ``interval``
committed instructions through a ``None``-checked slot, so a disabled
recorder costs one attribute test per commit and the fused baseline
loop (no hooks) falls back to the generic engine only when armed.

Both detailed-core schedulers produce identical series: commits happen
only on simulated cycles, and the event scheduler's idle skip is
accounting-exact, so ``stats.cycles`` at each sampling point matches
the scan oracle's.

For sampled simulation the natural interval is the measurement window
itself — :func:`window_row` builds one row per detail window from the
stitch delta plus cache/confidence counters snapshotted around the
measured segment (:func:`window_counters`).

Rows share one schema either way::

    {"pos": ..., "instructions": ..., "cycles": ..., "ipc": ...,
     "branch_mpki": ..., "dcache_mpki": ..., "icache_mpki": ...,
     "occupancy": ...[, "low_confidence": ...][, "represents": ...]}

``pos`` is the committed-instruction position where the interval
starts, ``occupancy`` is the in-flight window population sampled at
the interval boundary, and ``low_confidence`` appears only on machines
with a confidence estimator (CPR).  The finished series is attached to
``SimStats`` as a *dynamic* attribute (``stats.interval_metrics``) —
``to_dict`` iterates ``vars()`` so it serializes (and survives the
campaign result store) automatically, while telemetry-off runs stay
bit-identical to the pre-telemetry stats dicts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def default_metrics_interval(budget: int) -> int:
    """Interval for a full-detail run: ~50 points across the budget,
    never finer than 50 instructions."""
    return max(50, budget // 50)


def _row(pos: int, instructions: int, cycles: int, mispredictions: int,
         dcache_misses: int, icache_misses: int, occupancy: int,
         low_confidence: Optional[int]) -> dict:
    row = {
        "pos": pos,
        "instructions": instructions,
        "cycles": cycles,
        "ipc": instructions / cycles if cycles else 0.0,
        "branch_mpki": 1000.0 * mispredictions / instructions,
        "dcache_mpki": 1000.0 * dcache_misses / instructions,
        "icache_mpki": 1000.0 * icache_misses / instructions,
        "occupancy": occupancy,
    }
    if low_confidence is not None:
        row["low_confidence"] = low_confidence
    return row


def _counters(core) -> Tuple:
    """Cumulative counter snapshot used to difference intervals."""
    stats = core.stats
    hierarchy = core.hierarchy
    confidence = getattr(core, "confidence", None)
    return (stats.committed, stats.cycles, stats.branch_mispredictions,
            hierarchy.dcache.misses, hierarchy.icache.misses,
            len(core.in_flight),
            confidence.low_confidence if confidence is not None else None)


class IntervalRecorder:
    """Per-``interval``-committed-instruction time series for one core."""

    __slots__ = ("interval", "_snaps")

    def __init__(self, interval: int) -> None:
        interval = int(interval)
        if interval <= 0:
            raise ValueError(f"metrics interval must be positive, "
                             f"got {interval}")
        self.interval = interval
        self._snaps: List[Tuple] = []

    def bind(self, core) -> None:
        """Take the baseline snapshot (``attach_metrics`` calls this)."""
        self._snaps = [_counters(core)]

    def sample(self, core) -> None:
        """Called by ``commit_one`` at each interval boundary."""
        self._snaps.append(_counters(core))

    def rows(self, core=None) -> List[dict]:
        """Difference consecutive snapshots into metric rows.  Passing
        the core appends a trailing partial-interval sample first."""
        snaps = self._snaps
        if core is not None:
            tail = _counters(core)
            if snaps and tail[0] > snaps[-1][0]:
                snaps = snaps + [tail]
        out = []
        for before, after in zip(snaps, snaps[1:]):
            instructions = after[0] - before[0]
            if instructions <= 0:
                continue
            low = None
            if after[6] is not None and before[6] is not None:
                low = after[6] - before[6]
            out.append(_row(before[0], instructions, after[1] - before[1],
                            after[2] - before[2], after[3] - before[3],
                            after[4] - before[4], after[5], low))
        return out


def window_counters(core) -> Tuple:
    """Snapshot the counters :func:`window_row` differences that are
    *not* part of the per-window stats delta (cache and confidence
    state persists across windows via the warm hierarchy)."""
    hierarchy = core.hierarchy
    confidence = getattr(core, "confidence", None)
    return (hierarchy.dcache.misses, hierarchy.icache.misses,
            confidence.low_confidence if confidence is not None else None)


def window_row(stats, before: Tuple, core) -> Optional[dict]:
    """One metric row for a sampled measurement window. ``stats`` is
    the window's stitch delta, ``before`` a :func:`window_counters`
    snapshot taken just before the measured segment.  The caller fills
    in ``pos`` / ``represents``."""
    if stats.committed <= 0:
        return None
    d1, i1, c1 = window_counters(core)
    low = c1 - before[2] if c1 is not None and before[2] is not None else None
    return _row(0, stats.committed, stats.cycles,
                stats.branch_mispredictions, d1 - before[0], i1 - before[1],
                len(core.in_flight), low)
