"""Leveled stderr logging (``REPRO_LOG=quiet|warn|debug``).

Replaces the raw ``print(..., file=sys.stderr)`` calls that had
accumulated across the CLI and the artifact store with one helper, so
diagnostic chatter can be silenced (``quiet``) or widened (``debug``)
uniformly.  At the default level (``warn``) the output is bit-identical
to what the scattered prints produced, so nothing that greps stderr
(CI smoke steps, shell pipelines) changes behaviour.
"""

from __future__ import annotations

import os
import sys

#: Verbosity levels the env knob may select.
_LEVELS = {"quiet": 0, "warn": 1, "debug": 2}

#: Message severities: ``error`` always prints (even at ``quiet`` —
#: suppressing failure diagnostics would just hide exit-code causes),
#: ``warn`` prints at the default level, ``debug`` only on request.
_SEVERITY = {"error": 0, "warn": 1, "debug": 2}


def log_level() -> str:
    """Current verbosity from ``REPRO_LOG`` (malformed values fall back
    to the default rather than erroring: logging must never turn a
    good run into a failed one)."""
    raw = os.environ.get("REPRO_LOG", "warn").strip().lower()
    return raw if raw in _LEVELS else "warn"


def log(message: str, level: str = "warn") -> None:
    """Print ``message`` to stderr if ``level`` clears ``REPRO_LOG``."""
    if _SEVERITY[level] <= _LEVELS[log_level()]:
        print(message, file=sys.stderr)


def human_bytes(n: int) -> str:
    """``1536`` -> ``'1.5 KiB'`` (binary units, one decimal)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")
