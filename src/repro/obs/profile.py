"""Phase profiling: structured span timing across the sim layers.

:class:`PhaseProfile` accumulates wall-clock seconds (and span counts)
per named phase — ``ff`` / ``bbv-profile`` / ``warmup`` / ``detail`` /
``replay`` / ``store-read`` / ``store-write`` / ``queue-wait`` — so a
campaign or bench run can attribute its time to the layer that spent
it.  Instrumentation sites use :func:`span`::

    with span(profile, "ff"):
        emulator.run_fast(...)

which returns a shared no-op context when ``profile`` is None — the
disabled path allocates nothing and takes no timestamps.  Spans are
coarse (one per fast-forward leg, per detail window, per store access),
so the armed path's ``perf_counter`` pairs are noise next to the work
they bracket.

Campaign workers serialize their profile with :meth:`to_dict` and the
parent merges the payloads into ``CampaignReport.phase``; merged
profiles persist as ``profile.json`` next to the campaign result cache
for ``campaign status --profile``.  ``REPRO_PROFILE=1`` arms campaign
profiling without touching call sites.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from time import perf_counter
from typing import Dict, Optional

#: Shared reusable no-op context for disabled profiles.
_NULL = nullcontext()


def profile_enabled() -> bool:
    """Default campaign-profiling switch (``REPRO_PROFILE`` truthy)."""
    return os.environ.get("REPRO_PROFILE", "").strip().lower() \
        not in ("", "0", "off", "no", "false")


class _Span:
    """Times one ``with`` block into its profile."""

    __slots__ = ("_profile", "_phase", "_t0")

    def __init__(self, profile: "PhaseProfile", phase: str) -> None:
        self._profile = profile
        self._phase = phase

    def __enter__(self) -> None:
        self._t0 = perf_counter()

    def __exit__(self, *exc) -> None:
        self._profile.add(self._phase, perf_counter() - self._t0)


def span(profile: Optional["PhaseProfile"], phase: str):
    """Context manager timing ``phase`` into ``profile``; a shared
    no-op when ``profile`` is None (the zero-overhead-off gate)."""
    return _NULL if profile is None else _Span(profile, phase)


class PhaseProfile:
    """Accumulated seconds and span counts per phase name."""

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, phase: str, elapsed: float, count: int = 1) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed
        self.counts[phase] = self.counts.get(phase, 0) + count

    def span(self, phase: str) -> _Span:
        return _Span(self, phase)

    def total(self) -> float:
        return sum(self.seconds.values())

    def merge(self, other) -> None:
        """Fold in another profile (or a :meth:`to_dict` payload)."""
        if isinstance(other, PhaseProfile):
            seconds, counts = other.seconds, other.counts
        else:
            seconds = other.get("seconds", {})
            counts = other.get("counts", {})
        for phase, value in seconds.items():
            self.add(phase, value, counts.get(phase, 0))

    def to_dict(self) -> dict:
        return {"seconds": dict(self.seconds), "counts": dict(self.counts)}

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseProfile":
        profile = cls()
        profile.merge(data)
        return profile

    def format(self, indent: str = "") -> str:
        """Multi-line table, largest phase first."""
        total = self.total()
        lines = []
        for phase in sorted(self.seconds, key=self.seconds.get,
                            reverse=True):
            seconds = self.seconds[phase]
            share = 100.0 * seconds / total if total else 0.0
            count = self.counts.get(phase, 0)
            lines.append(f"{indent}{phase:<12} {seconds:9.3f}s "
                         f"{share:5.1f}%  ({count} spans)")
        return "\n".join(lines)
