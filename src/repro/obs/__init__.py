"""Observability: pipeline tracing, interval metrics, phase profiling.

Three pillars, all strictly zero-overhead when disabled:

* :mod:`repro.obs.trace` — per-DynInst lifecycle events from both
  detailed-core schedulers, serialized to the Kanata pipeline-viewer
  text format (``repro trace``).  Scan-vs-event stream equality doubles
  as a correctness oracle.
* :mod:`repro.obs.metrics` — per-N-instruction IPC / MPKI / occupancy
  time series threaded through ``runner.simulate`` and the sampling
  engine (``repro run --metrics out.jsonl``).
* :mod:`repro.obs.profile` — structured span timing (ff / bbv-profile /
  warmup / detail / replay / store-read / store-write / queue-wait)
  aggregated into campaign reports and the bench table.

The gating idiom everywhere is a ``None``-check on a pre-bound hook
slot (``core.tracer``, ``core._metrics``, a ``profile`` argument) —
the same pattern as ``run_fast``'s observer fallback — so a disabled
telemetry path costs one attribute test on cold paths and nothing at
all on the fused hot loops (which fall back to the generic engine only
when a hook is armed).  SimStats stays bit-identical with telemetry
off: telemetry attaches its output as *dynamic* stats attributes only
when enabled.
"""

from repro.obs.log import human_bytes, log, log_level
from repro.obs.metrics import (IntervalRecorder, default_metrics_interval,
                               window_counters, window_row)
from repro.obs.profile import PhaseProfile, profile_enabled, span
from repro.obs.trace import (KANATA_HEADER, PipelineTracer, to_kanata,
                             trace_limit)

__all__ = [
    "IntervalRecorder",
    "KANATA_HEADER",
    "PhaseProfile",
    "PipelineTracer",
    "default_metrics_interval",
    "human_bytes",
    "log",
    "log_level",
    "profile_enabled",
    "span",
    "to_kanata",
    "trace_limit",
    "window_counters",
    "window_row",
]
