"""Pipeline lifecycle tracing in the Kanata/Onikiri viewer format.

:class:`PipelineTracer` is the hook object the detailed cores arm via
``core.attach_tracer``.  Every emission site in the core is guarded by
``if self.tracer is not None`` on a slot pre-bound to ``None`` in
``__init__`` — with tracing off the cost is one attribute test per
site, and the fused baseline loop (which has no hooks at all) falls
back to the generic engine only when a tracer is armed.

Scheduler equality
------------------

The event scheduler skips provably idle cycles in bulk while the scan
oracle simulates every one of them, so a naive per-cycle stall event
would make the two streams diverge.  The tracer therefore dedups
*consecutive identical* ``(head_seq, reason)`` dispatch-stall events:
during a quiet stretch the machine state is frozen, so the scan loop
re-emits the exact same stall every cycle (suppressed) and the event
scheduler emits nothing (it never runs those cycles) — both streams
keep exactly the first occurrence.  Every other event happens only on
a simulated, state-changing cycle, which both schedulers execute with
identical cycle numbers (the idle skip is accounting-exact), so the
serialized streams are byte-identical.  ``tests/obs`` enforces this as
a correctness oracle across the quick SPECint grid.

Kanata text format (as understood by the Konata viewer):

==========================  ========================================
``Kanata\\t0004``            header
``C=\\t<cycle>``             set absolute current cycle
``C\\t<delta>``              advance current cycle
``I\\t<id>\\t<inst>\\t<tid>``  introduce instruction
``L\\t<id>\\t<type>\\t<txt>``  label (0 = left pane, 1 = hover text)
``S\\t<id>\\t<lane>\\t<st>``   stage start
``E\\t<id>\\t<lane>\\t<st>``   stage end
``R\\t<id>\\t<rid>\\t<type>``  retire (0 = commit, 1 = flush)
==========================  ========================================
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.defaults import env_int

KANATA_HEADER = "Kanata\t0004"

#: Default cap on recorded events; ~2M events is roughly a 50k-commit
#: gzip run and keeps worst-case memory for a forgotten knob bounded.
DEFAULT_TRACE_LIMIT = 2_000_000

#: Pipeline stage names as shown in the viewer, per lifecycle event.
STAGE_FETCH = "F"
STAGE_DISPATCH = "Ds"
STAGE_ISSUE = "Is"
STAGE_WRITEBACK = "Wb"


def trace_limit() -> int:
    """Event cap from ``REPRO_TRACE_LIMIT`` (default 2M)."""
    value = env_int("REPRO_TRACE_LIMIT", DEFAULT_TRACE_LIMIT)
    if value <= 0:
        from repro.defaults import EnvConfigError
        raise EnvConfigError(
            f"REPRO_TRACE_LIMIT must be positive, got {value}")
    return value


class PipelineTracer:
    """Records per-DynInst lifecycle events keyed by fetch ``seq``.

    Events are appended in simulation order, so the list is naturally
    sorted by cycle; :func:`to_kanata` serializes it in one pass.
    """

    __slots__ = ("events", "limit", "dropped", "_last_stall")

    def __init__(self, limit: Optional[int] = None) -> None:
        #: Event tuples ``(kind, cycle, seq, ...)``; kinds are
        #: F(etch), D(ispatch), T(stall), I(ssue), W(riteback),
        #: C(ommit), Q(squash).
        self.events: List[Tuple] = []
        self.limit = trace_limit() if limit is None else limit
        #: Events discarded after :attr:`limit` was reached.
        self.dropped = 0
        self._last_stall: Optional[Tuple[int, str]] = None

    # -- emission hooks (called from the core hot paths) --------------- #

    def _add(self, event: Tuple) -> None:
        if len(self.events) < self.limit:
            self.events.append(event)
        else:
            self.dropped += 1

    def fetch(self, seq: int, pc: int, inst, now: int) -> None:
        self._add(("F", now, seq, pc, repr(inst)))

    def dispatch(self, seq: int, now: int) -> None:
        self._add(("D", now, seq))

    def stall(self, seq: int, now: int, reason: str) -> None:
        """Dispatch stalled this cycle with ``seq`` at the head.  Dedup
        consecutive identical stalls (see module docstring)."""
        key = (seq, reason)
        if key == self._last_stall:
            return
        self._last_stall = key
        self._add(("T", now, seq, reason))

    def issue(self, seq: int, now: int) -> None:
        self._add(("I", now, seq))

    def writeback(self, seq: int, now: int) -> None:
        self._add(("W", now, seq))

    def commit(self, seq: int, now: int, ordinal: int) -> None:
        self._add(("C", now, seq, ordinal))

    def squash(self, seq: int, now: int) -> None:
        self._add(("Q", now, seq))


def to_kanata(events: List[Tuple]) -> str:
    """Serialize a tracer's event list to Kanata text."""
    out = [KANATA_HEADER]
    append = out.append
    current: Optional[int] = None
    #: seq -> currently open stage name (closed on transition/retire).
    stage = {}
    for event in events:
        kind = event[0]
        cycle = event[1]
        seq = event[2]
        if cycle != current:
            if current is None:
                append(f"C=\t{cycle}")
            else:
                append(f"C\t{cycle - current}")
            current = cycle
        if kind == "F":
            text = event[4].replace("\t", " ")
            append(f"I\t{seq}\t{seq}\t0")
            append(f"L\t{seq}\t0\t{event[3]}: {text}")
            append(f"S\t{seq}\t0\t{STAGE_FETCH}")
            stage[seq] = STAGE_FETCH
        elif kind == "D":
            _transition(append, stage, seq, STAGE_DISPATCH)
        elif kind == "I":
            _transition(append, stage, seq, STAGE_ISSUE)
        elif kind == "W":
            _transition(append, stage, seq, STAGE_WRITEBACK)
        elif kind == "T":
            append(f"L\t{seq}\t1\tstall: {event[3]}")
        elif kind == "C":
            _close(append, stage, seq)
            append(f"R\t{seq}\t{event[3]}\t0")
        elif kind == "Q":
            _close(append, stage, seq)
            append(f"R\t{seq}\t{seq}\t1")
        else:
            raise AssertionError(f"unknown trace event kind {kind!r}")
    append("")
    return "\n".join(out)


def _transition(append, stage, seq: int, name: str) -> None:
    previous = stage.get(seq)
    if previous is not None:
        append(f"E\t{seq}\t0\t{previous}")
    append(f"S\t{seq}\t0\t{name}")
    stage[seq] = name


def _close(append, stage, seq: int) -> None:
    previous = stage.pop(seq, None)
    if previous is not None:
        append(f"E\t{seq}\t0\t{previous}")
