"""repro: reproduction of the Multi-State Processor (MICRO 2008).

"A Distributed Processor State Management Architecture for Large-Window
Processors" — González, Galluzzi, Veidenbaum, Ramírez, Cristal, Valero.

Quick start::

    from repro.sim import SimConfig, simulate

    stats = simulate("bzip2", SimConfig.msp(bank_size=16,
                                            predictor="tage"),
                     max_instructions=10_000)
    print(stats.ipc)

Packages:

* :mod:`repro.isa` — the simulator's RISC ISA, programs, emulator
* :mod:`repro.workloads` — synthetic SPEC CPU2000-like kernels
* :mod:`repro.branch` — gshare, TAGE, BTB, JRS confidence
* :mod:`repro.memory`, :mod:`repro.storequeue` — caches, store queues
* :mod:`repro.pipeline` — the shared out-of-order engine
* :mod:`repro.baseline`, :mod:`repro.cpr`, :mod:`repro.core` — the
  three machines (core = the MSP, the paper's contribution)
* :mod:`repro.power` — register-file power/area/timing models (Sec. 5)
* :mod:`repro.sim` — configs, runner, per-figure experiments
"""

__version__ = "1.0.0"
