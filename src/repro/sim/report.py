"""Result export: CSV and Markdown writers for experiment grids.

Downstream users typically want the figure data as files, not stdout;
these helpers serialise an :class:`~repro.sim.experiments.ExperimentResult`
(or any benchmark -> machine -> value grid) for plotting elsewhere.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Mapping, Sequence

from repro.sim.experiments import ExperimentResult


def result_to_rows(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """Flatten an experiment grid into {benchmark: {machine: ipc}}."""
    return {benchmark: {machine: cells[machine].ipc
                        for machine in result.machines}
            for benchmark, cells in result.stats.items()}


def grid_to_csv(rows: Mapping[str, Mapping[str, float]],
                machines: Sequence[str],
                value_format: str = "{:.4f}") -> str:
    """Render a benchmark x machine grid as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", *machines])
    for benchmark, cells in rows.items():
        writer.writerow([benchmark] + [value_format.format(cells[m])
                                       for m in machines])
    return buffer.getvalue()


def grid_to_markdown(rows: Mapping[str, Mapping[str, float]],
                     machines: Sequence[str],
                     value_format: str = "{:.3f}") -> str:
    """Render a benchmark x machine grid as a Markdown table."""
    lines = ["| benchmark | " + " | ".join(machines) + " |",
             "|---" * (len(machines) + 1) + "|"]
    for benchmark, cells in rows.items():
        values = " | ".join(value_format.format(cells[m])
                            for m in machines)
        lines.append(f"| {benchmark} | {values} |")
    return "\n".join(lines)


def write_result(result: ExperimentResult, path: str,
                 fmt: str = "csv") -> None:
    """Write an experiment grid to ``path`` as ``csv`` or ``md``."""
    rows = result_to_rows(result)
    if fmt == "csv":
        text = grid_to_csv(rows, result.machines)
    elif fmt == "md":
        text = grid_to_markdown(rows, result.machines)
    else:
        raise ValueError(f"unknown format {fmt!r}; use 'csv' or 'md'")
    with open(path, "w") as handle:
        handle.write(text)
