"""Simulation configuration: Table I of the paper, as a dataclass.

Four machine presets mirror the paper's four columns:

* :meth:`SimConfig.baseline` — standard OoO superscalar: ROB 128, IQ 48,
  96+96 registers, single-level store queue.
* :meth:`SimConfig.cpr` — ROB-free checkpointing machine: 8 checkpoints,
  confidence-guided placement, 192+192 registers with reference-count
  release, hierarchical store queue, no arbitration stage.
* :meth:`SimConfig.msp` — the n-SP: n physical registers per logical
  register bank, banked 1R/1W register file with an arbitration stage,
  1-cycle LCS propagation, hierarchical store queue.
* :meth:`SimConfig.msp_ideal` — MSP with unbounded banks/store queue,
  full porting (no arbitration) and 0-cycle LCS.

Everything is a plain field so ablation benches can tweak single knobs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, FrozenSet, Optional


@dataclass
class SimConfig:
    """Complete machine + memory configuration for one simulation."""

    arch: str = "baseline"                 # baseline | cpr | msp

    # Widths (Table I: Fetch | Rename | Issue | Retire = 3 | 3 | 5 | 3).
    fetch_width: int = 3
    rename_width: int = 3
    issue_width: int = 5
    retire_width: int = 3                  # baseline only; others bulk-commit

    # Window structures.
    iq_size: int = 48
    rob_size: int = 128                    # baseline only
    load_buffer: int = 48
    sq_l1: Optional[int] = 24              # None = unbounded (ideal MSP)
    sq_l2: int = 0
    l2_forward_penalty: int = 8

    # Execution resources.
    int_units: int = 4
    fp_units: int = 4
    ldst_units: int = 2
    max_issue_scan: int = 32

    # Backend scheduler implementation. "event" (default) drives issue/
    # wakeup from a sorted ready window with purged waiter/completion
    # maps and skips provably idle cycles in bulk; "scan" is the
    # original per-cycle heap-scan loop, kept as the bit-exact reference
    # oracle (tests/pipeline/test_event_scheduler.py pins SimStats
    # equality between the two).
    scheduler: str = "event"

    # Per-static-instruction execution codegen (decode-time closures
    # replacing the generic kind ladder in the issue path). Bit-exact
    # with the generic ladder by contract — the differential suite and
    # the scan-scheduler oracle pin that — so this is a pure speed
    # toggle, excluded from :meth:`cache_key` like ``label_override``.
    codegen: bool = True

    # Registers. Baseline/CPR: flat file per class. MSP: per-logical bank.
    phys_int: int = 96
    phys_fp: int = 96
    bank_size: Optional[int] = None        # MSP: n; None = unbounded (ideal)

    # Branch prediction.
    predictor: str = "gshare"
    predictor_kwargs: Dict = field(default_factory=dict)

    # CPR checkpointing. The confidence threshold is calibrated so the
    # estimator flags the genuinely unpredictable minority of branches
    # (8 checkpoints must ration a large window); see EXPERIMENTS.md.
    checkpoints: int = 8
    checkpoint_max_interval: int = 256
    confidence_threshold: int = 3
    l2sq_squash_penalty: int = 4           # extra redirect delay on rollback
                                           # while the L2 SQ holds squashed
                                           # entries (the 2nd-level scan)

    # MSP state management.
    arbitration: bool = True               # 1R/1W banks + extra pipe stage
    lcs_delay: int = 1                     # LCS propagation (Table I)
    max_renames_per_cycle: int = 4         # Sec. 3.3
    max_same_reg_renames: int = 2          # Sec. 3.3

    # Memory hierarchy (Table I).
    icache_size: int = 64 * 1024
    dcache_size: int = 64 * 1024
    l2_size: int = 1024 * 1024
    icache_assoc: int = 4
    dcache_assoc: int = 4
    l2_assoc: int = 8
    line_bytes: int = 64
    dcache_hit: int = 4
    l2_hit: int = 16
    memory_latency: int = 380

    # Exception injection: architectural commit ordinals that raise once.
    exception_ordinals: FrozenSet[int] = frozenset()

    # Debug/verification: record the PC of every committed instruction so
    # tests can compare against the architectural emulator.
    record_commits: bool = False

    # Pre-warm caches to emulate a long-running SimPoint's state (the
    # paper fast-forwards into 300M-instruction regions).
    warm_caches: bool = True

    # Sampled simulation (repro.sim.sampling). ``sample_mode`` selects
    # full-detail ("full"), SMARTS-style periodic windows ("periodic":
    # a `sample_interval`-instruction detailed window at the end of
    # every `sample_period` committed instructions), a single
    # fixed-offset window ("offset": fast-forward `sample_ff`, measure
    # `sample_interval`) or SimPoint phase clustering ("simpoint":
    # periodic intervals BBV-profiled during fast-forward and k-medoids
    # clustered into `sample_clusters` phases — only each cluster's
    # representative interval is measured, weighted by the cluster's
    # span; `sample_bbv_dim` is the BBV random-projection dimension).
    # ``sample_warmup`` trains predictor/BTB/caches from the functional
    # stream during fast-forward (replacing the all-lines
    # ``warm_caches`` approximation). ``sample_detail_warmup``
    # cycle-simulates (but does not measure) that many instructions at
    # each window's head, so pipeline / store queue / CPR-checkpoint
    # state reaches steady state first. All eight are ordinary
    # dataclass fields, so they perturb :meth:`cache_key` — sampled,
    # simpoint and full-detail results can never collide in the
    # campaign result cache.
    sample_mode: str = "full"
    sample_ff: int = 0
    sample_interval: int = 1000
    sample_period: int = 10_000
    sample_warmup: bool = True
    sample_detail_warmup: int = 500
    sample_clusters: int = 4
    sample_bbv_dim: int = 32

    # ------------------------------------------------------------------ #

    def with_(self, **kwargs) -> "SimConfig":
        """Copy with overrides (ablation helper)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Serialization and identity. ``cache_key`` is the stable content
    # hash the campaign result cache keys on: any field change must
    # perturb it, and two equal configs must collide.
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        """Canonical JSON-serializable form (frozensets become sorted
        lists so the representation is order-independent)."""
        out = asdict(self)
        out["exception_ordinals"] = sorted(self.exception_ordinals)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SimConfig":
        """Inverse of :meth:`to_dict`; ignores unknown keys so caches
        written by newer versions still load."""
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        payload["exception_ordinals"] = frozenset(
            payload.get("exception_ordinals", ()))
        return cls(**payload)

    def cache_key(self) -> str:
        """Stable content hash of the configuration. ``label_override``
        is presentation-only and ``codegen`` is a bit-identical
        implementation toggle, so both are excluded: the same machine
        run under different display labels or exec backends shares
        cache entries. Every other field participates — including the
        ``sample_*`` schedule, so sampled and full-detail results can
        never collide."""
        payload = self.to_dict()
        payload.pop("label_override", None)
        # Bit-identical-by-contract implementation toggle: the same
        # machine with codegen on or off must share cache entries.
        payload.pop("codegen", None)
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"), default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @classmethod
    def baseline(cls, predictor: str = "gshare", **kwargs) -> "SimConfig":
        return cls(arch="baseline", predictor=predictor, iq_size=48,
                   rob_size=128, phys_int=96, phys_fp=96,
                   sq_l1=24, sq_l2=0, **kwargs)

    @classmethod
    def cpr(cls, predictor: str = "gshare", registers: int = 192,
            **kwargs) -> "SimConfig":
        return cls(arch="cpr", predictor=predictor, iq_size=128,
                   phys_int=registers, phys_fp=registers,
                   sq_l1=48, sq_l2=256, **kwargs)

    @classmethod
    def msp(cls, bank_size: int = 16, predictor: str = "gshare",
            arbitration: bool = True, **kwargs) -> "SimConfig":
        return cls(arch="msp", predictor=predictor, iq_size=128,
                   bank_size=bank_size, arbitration=arbitration,
                   lcs_delay=kwargs.pop("lcs_delay", 1),
                   sq_l1=48, sq_l2=256, **kwargs)

    @classmethod
    def msp_ideal(cls, predictor: str = "gshare", **kwargs) -> "SimConfig":
        return cls(arch="msp", predictor=predictor, iq_size=128,
                   bank_size=None, arbitration=False, lcs_delay=0,
                   sq_l1=None, sq_l2=0, **kwargs)

    @classmethod
    def from_token(cls, token: str,
                   predictor: str = "tage") -> "SimConfig":
        """Parse a machine token (the ``--machines`` / service-payload
        grammar): ``baseline`` | ``cpr`` | ``cpr:<registers>`` |
        ``msp:<banks>`` | ``ideal``.  Raises ``ValueError`` naming the
        grammar on anything else, so the CLI and the service API report
        the same one-line error."""
        try:
            if token == "baseline":
                return cls.baseline(predictor=predictor)
            if token == "cpr":
                return cls.cpr(predictor=predictor)
            if token.startswith("cpr:"):
                return cls.cpr(predictor=predictor,
                               registers=int(token[4:]))
            if token == "ideal":
                return cls.msp_ideal(predictor=predictor)
            if token.startswith("msp:"):
                return cls.msp(int(token[4:]), predictor=predictor)
        except ValueError:
            pass
        raise ValueError(
            f"unknown machine {token!r}; choose from "
            f"baseline cpr cpr:<registers> msp:<banks> ideal")

    # Optional explicit label (ablation grids with same arch).
    label_override: Optional[str] = None

    @property
    def label(self) -> str:
        """Short machine label used in experiment reports."""
        if self.label_override:
            return self.label_override
        if self.arch == "baseline":
            return "Baseline"
        if self.arch == "cpr":
            return f"CPR-{self.phys_int}"
        if self.bank_size is None:
            return "ideal-MSP"
        suffix = "+Arb" if self.arbitration else ""
        return f"{self.bank_size}-SP{suffix}"
