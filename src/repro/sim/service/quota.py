"""Per-client admission quotas (token buckets over job submissions).

"Heavy traffic from many users degrades gracefully" means no single
client may monopolize the workers: each client (the ``X-Repro-Client``
header, ``anon`` by default) owns a token bucket holding at most
``REPRO_SERVICE_TOKENS`` tokens that refills at
``REPRO_SERVICE_REFILL`` tokens/second.  Submitting a campaign costs
one token per cell that actually needs executing — cells already in
the result store are free, so repeat queries are always served
instantly regardless of quota state.

A denied submission is not an error, it is backpressure: the API maps
it to HTTP 429 with a ``Retry-After`` computed from the refill rate,
so a well-behaved client can simply wait and resubmit (idempotent
campaign ids make the retry safe).  A grid larger than the whole burst
can never be admitted and is rejected outright (413) rather than
stringing the client along.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Tuple

from repro.defaults import env_float, env_int


def default_quota_burst() -> int:
    """Token-bucket capacity per client (``REPRO_SERVICE_TOKENS``,
    default 64 — one token per job cell)."""
    return max(1, env_int("REPRO_SERVICE_TOKENS", 64))


def default_quota_refill() -> float:
    """Tokens refilled per second per client
    (``REPRO_SERVICE_REFILL``, default 1.0)."""
    return max(0.001, env_float("REPRO_SERVICE_REFILL", 1.0))


class QuotaTable:
    """Lazy token buckets: state is (tokens, last-refill) per client,
    refilled on access — no background thread."""

    def __init__(self, burst: int = None, refill: float = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.burst = burst if burst is not None else default_quota_burst()
        self.refill = (refill if refill is not None
                       else default_quota_refill())
        self.clock = clock
        self._buckets: Dict[str, Tuple[float, float]] = {}

    def tokens(self, client: str) -> float:
        """Current token balance (after lazy refill)."""
        tokens, stamp = self._buckets.get(client, (float(self.burst),
                                                   self.clock()))
        now = self.clock()
        tokens = min(float(self.burst),
                     tokens + (now - stamp) * self.refill)
        self._buckets[client] = (tokens, now)
        return tokens

    def admit(self, client: str, cost: int) -> Tuple[bool, float]:
        """Try to spend ``cost`` tokens; returns ``(admitted,
        retry_after_seconds)``.  ``cost`` larger than the burst returns
        ``(False, inf)`` — it can *never* be admitted (the caller
        rejects permanently instead of telling the client to wait).
        ``cost <= 0`` is always admitted (nothing to execute)."""
        if cost <= 0:
            return True, 0.0
        if cost > self.burst:
            return False, math.inf
        tokens = self.tokens(client)
        if tokens >= cost:
            self._buckets[client] = (tokens - cost, self.clock())
            return True, 0.0
        return False, (cost - tokens) / self.refill


__all__ = ["QuotaTable", "default_quota_burst", "default_quota_refill"]
