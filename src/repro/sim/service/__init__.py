"""Long-running campaign service (``repro serve``).

The daemon face of the campaign layer: a stdlib-only HTTP JSON API in
front of the same content-addressed result store that ``campaign run``
uses.  Submissions are durable before they are acknowledged (crash-safe
spool, :mod:`~repro.sim.service.queue`), execution is covered by worker
leases with heartbeats (:mod:`~repro.sim.service.lease`), and admission
is bounded by per-client token quotas plus a queue cap
(:mod:`~repro.sim.service.quota`) — heavy traffic degrades to HTTP 429
backpressure, never to lost or duplicated work.  The headline
invariant: ``kill -9`` the daemon mid-campaign, restart it on the same
cache dir, and every campaign completes bit-identical to a serial
``campaign run`` of the same grid.
"""

from repro.sim.service.api import (ApiError, CampaignService,
                                   default_service_host,
                                   default_service_port, make_server)
from repro.sim.service.lease import Lease, LeaseTable, default_lease_ttl
from repro.sim.service.queue import (QueueFull, SPOOL_OUTCOMES,
                                     SpoolQueue, default_queue_cap)
from repro.sim.service.quota import (QuotaTable, default_quota_burst,
                                     default_quota_refill)

__all__ = [
    "ApiError",
    "CampaignService",
    "Lease",
    "LeaseTable",
    "QueueFull",
    "QuotaTable",
    "SPOOL_OUTCOMES",
    "SpoolQueue",
    "default_lease_ttl",
    "default_queue_cap",
    "default_quota_burst",
    "default_quota_refill",
    "default_service_host",
    "default_service_port",
    "make_server",
]
