"""Crash-safe on-disk campaign queue (the service spool).

The daemon must never lose accepted work: a submission is acknowledged
only after its jobs are durable in ``<cache-dir>/service/spool.jsonl``,
an append-only JSON-lines file written with the result-store idiom —
``flock``-guarded appends, temp-file + atomic-rename compaction,
torn-tail-tolerant reads.  ``kill -9`` the daemon at any instant and a
restart replays the spool: every accepted-but-undone job is pending
again, every ``done`` event still counts, and at most the half-written
tail line (work that was never acknowledged) is lost.

Event grammar (one JSON object per line)::

    {"event": "job",  "key": K, "job": {...}}         # durable payload
    {"event": "campaign", "id": C, "name": ..., "client": ...,
     "keys": [...], "cells": {bench: {machine: K}}, ...}
    {"event": "done", "key": K, "outcome": "ok|retried|quarantined|cached",
     "attempts": N}

``job`` lines are written *before* their ``campaign`` line, so a crash
mid-submit leaves orphan jobs referenced by no campaign — replay drops
them (the client never got an acknowledgement, so nothing was
promised).  Lease state is deliberately **not** persisted: leases are
daemon-memory, void on crash, and every undone job simply re-dispatches
on restart — sound because jobs are content-hashed and their results
idempotent by key.

Admission control lives at the mouth: the queue holds at most ``cap``
(``REPRO_QUEUE_CAP``) undone jobs; a submission that would overflow
raises :class:`QueueFull` carrying a ``retry_after`` hint, which the
API layer maps to HTTP 429 + ``Retry-After``.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:                       # non-Unix: best-effort, no lock
    fcntl = None

from contextlib import contextmanager

from repro.defaults import env_int
from repro.sim import faults

#: Spool outcomes a job key can settle with.  ``cached`` marks a cell
#: that was served from the result store at submit (or recovery) time
#: and therefore never executed under this daemon.
SPOOL_OUTCOMES = ("ok", "retried", "quarantined", "cached")


def default_queue_cap() -> int:
    """Max undone jobs the daemon will hold (``REPRO_QUEUE_CAP``,
    default 256).  Beyond it, submissions get backpressure (429)."""
    return max(1, env_int("REPRO_QUEUE_CAP", 256))


class QueueFull(RuntimeError):
    """The spool is at capacity; carries a ``retry_after`` hint."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SpoolQueue:
    """Durable FIFO of content-hashed jobs plus the campaign registry.

    In-memory view (rebuilt from the spool on open): ``pending`` keys
    in submission order, ``claimed`` keys handed to the dispatcher but
    not settled, ``done`` outcomes per key, and one record per
    campaign.  Only submission and settlement are durable events;
    claims are daemon-memory (a crash un-claims everything, which is
    exactly the re-dispatch-on-restart invariant).
    """

    #: Compact once this many dead lines (settled jobs' payloads,
    #: superseded events) accumulate beyond the live records.
    _COMPACT_SLACK = 256

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 cap: Optional[int] = None) -> None:
        from repro.sim.campaign.store import default_cache_dir
        self.cache_dir = (Path(cache_dir).expanduser() if cache_dir
                          else default_cache_dir())
        self.dir = self.cache_dir / "service"
        self.path = self.dir / "spool.jsonl"
        self.cap = cap if cap is not None else default_queue_cap()
        self._campaigns: Dict[str, dict] = {}
        self._jobs: Dict[str, dict] = {}        # undone key -> payload
        self._done: Dict[str, dict] = {}        # key -> done event
        self._pending: deque = deque()          # undone, unclaimed keys
        self._claimed: set = set()
        self._replay()

    # ------------------------------------------------------------------ #
    # Durability.
    # ------------------------------------------------------------------ #

    @contextmanager
    def _locked(self):
        """Exclusive inter-process lock on the spool."""
        if fcntl is None:
            yield
            return
        self.dir.mkdir(parents=True, exist_ok=True)
        with (self.dir / ".lock").open("w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def _append(self, records: List[dict]) -> None:
        """Durably append event lines (raises ``OSError`` on disk
        faults — the caller decides whether that rejects a submission
        or degrades; the ``enqueue`` fault point lives at the submit
        call, not here, so settlement events stay best-effort)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        with self._locked():
            with self.path.open("a", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")

    def _events(self) -> Tuple[List[dict], int]:
        events: List[dict] = []
        lines = 0
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    lines += 1
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue              # torn tail write: skip
        except OSError:
            pass
        return events, lines

    def _replay(self) -> None:
        """Rebuild the in-memory view from the spool."""
        events, _ = self._events()
        order: List[str] = []
        for event in events:
            kind = event.get("event")
            if kind == "job" and "key" in event:
                if event["key"] not in self._jobs:
                    order.append(event["key"])
                self._jobs[event["key"]] = event.get("job", {})
            elif kind == "campaign" and "id" in event:
                self._campaigns[event["id"]] = event
            elif kind == "done" and "key" in event:
                self._done[event["key"]] = event
        referenced = set()
        for campaign in self._campaigns.values():
            referenced.update(campaign.get("keys", ()))
        for key in order:
            if key in self._done or key not in referenced:
                # Settled, or an orphan from a torn submit (its
                # campaign line never made it: nothing was promised).
                self._jobs.pop(key, None)
                continue
            self._pending.append(key)

    # ------------------------------------------------------------------ #
    # Admission (the durable mouth of the service).
    # ------------------------------------------------------------------ #

    def depth(self) -> int:
        """Undone jobs the daemon is responsible for (pending plus
        claimed/in-flight) — the backpressure signal."""
        return len(self._pending) + len(self._claimed)

    def submit(self, campaign: dict,
               jobs: List[Tuple[str, dict]]) -> None:
        """Durably accept one campaign and enqueue its uncached cells.

        ``campaign`` must carry ``id`` and ``keys``; ``jobs`` is the
        ``(key, payload)`` list to actually enqueue (the caller already
        settled cached cells).  Raises :class:`QueueFull` over
        capacity and ``OSError`` if the spool cannot be written (the
        ``enqueue`` fault point) — in both cases nothing was accepted.
        """
        fresh = [(key, payload) for key, payload in jobs
                 if key not in self._done and key not in self._jobs]
        if self.depth() + len(fresh) > self.cap:
            raise QueueFull(
                f"queue at capacity ({self.depth()}/{self.cap} undone "
                f"job(s); {len(fresh)} more would overflow)",
                retry_after=5.0)
        faults.fire("enqueue")
        records = [{"event": "job", "key": key, "job": payload}
                   for key, payload in fresh]
        records.append(dict(campaign, event="campaign"))
        self._append(records)
        for key, payload in fresh:
            self._jobs[key] = payload
            self._pending.append(key)
        self._campaigns[campaign["id"]] = dict(campaign,
                                               event="campaign")

    # ------------------------------------------------------------------ #
    # Dispatch bookkeeping (in-memory; durable only at settlement).
    # ------------------------------------------------------------------ #

    def claim(self) -> Optional[Tuple[str, dict]]:
        """Pop the next pending job for dispatch, or None."""
        while self._pending:
            key = self._pending.popleft()
            if key in self._done:
                continue
            self._claimed.add(key)
            return key, self._jobs[key]
        return None

    def requeue(self, key: str) -> None:
        """Return a claimed job to the *front* of the queue (a
        lease-expired job should not wait behind the whole backlog)."""
        if key in self._claimed:
            self._claimed.discard(key)
            self._pending.appendleft(key)

    def mark_done(self, key: str, outcome: str,
                  attempts: int = 1) -> None:
        """Settle a job durably (best-effort: a spool that cannot be
        appended degrades to memory — on restart the job re-dispatches
        and its idempotent re-execution converges)."""
        if outcome not in SPOOL_OUTCOMES:
            raise ValueError(f"unknown spool outcome {outcome!r}")
        if key in self._done:
            return                          # zombie's late duplicate
        event = {"event": "done", "key": key, "outcome": outcome,
                 "attempts": attempts}
        self._done[key] = event
        self._claimed.discard(key)
        self._jobs.pop(key, None)
        try:
            self._append([event])
        except OSError:
            return
        self._maybe_compact()

    def outcome(self, key: str) -> Optional[str]:
        event = self._done.get(key)
        return event.get("outcome") if event else None

    def attempts(self, key: str) -> int:
        event = self._done.get(key)
        return int(event.get("attempts", 0)) if event else 0

    # ------------------------------------------------------------------ #
    # Campaign registry.
    # ------------------------------------------------------------------ #

    def campaign(self, campaign_id: str) -> Optional[dict]:
        return self._campaigns.get(campaign_id)

    def campaigns(self) -> Dict[str, dict]:
        return dict(self._campaigns)

    # ------------------------------------------------------------------ #
    # Compaction.
    # ------------------------------------------------------------------ #

    def _maybe_compact(self) -> None:
        try:
            events, lines = self._events()
        except OSError:
            return
        live = (len(self._campaigns) + len(self._jobs)
                + len(self._done))
        if lines - live >= self._COMPACT_SLACK:
            self.compact()

    def compact(self) -> int:
        """Rewrite the spool keeping campaigns, undone job payloads
        and the latest ``done`` event per key; returns dropped lines.
        Temp-file + atomic rename under the lock, so concurrent
        readers never see a torn spool."""
        try:
            with self._locked():
                _, lines = self._events()
                records = ([dict(c) for c in self._campaigns.values()]
                           + [{"event": "job", "key": key, "job": payload}
                              for key, payload in self._jobs.items()]
                           + list(self._done.values()))
                dropped = lines - len(records)
                if dropped <= 0:
                    return 0
                tmp = self.path.with_suffix(".jsonl.tmp")
                with tmp.open("w", encoding="utf-8") as fh:
                    for record in records:
                        fh.write(json.dumps(record, sort_keys=True)
                                 + "\n")
                tmp.replace(self.path)
                return dropped
        except OSError:
            return 0

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass
        self._campaigns.clear()
        self._jobs.clear()
        self._done.clear()
        self._pending.clear()
        self._claimed.clear()


__all__ = ["QueueFull", "SPOOL_OUTCOMES", "SpoolQueue",
           "default_queue_cap"]
