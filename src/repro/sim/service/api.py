"""The campaign daemon: API → durable queue → leased workers → receipts.

:class:`CampaignService` composes the PR-8 fault-tolerance primitives
into a long-running service (the SNIPPETS Snippet-3 shape):

* **Submit** (``POST /campaigns``) — a JSON campaign spec (workloads ×
  machine tokens × budget) is admitted through the per-client token
  quota (429 + ``Retry-After`` when exhausted) and the bounded spool
  (429 when full), its cells content-hashed into jobs; cells already
  in the result store settle instantly as ``cached``.  Campaign ids
  are content-derived, so resubmitting the same spec is idempotent —
  the client can crash and retry forever without duplicating work.
* **Dispatch** — a dispatcher thread leases pending jobs to worker
  processes under :class:`~repro.sim.service.lease.LeaseTable`
  coverage.  Workers heartbeat while busy; a worker that stops
  heartbeating past ``REPRO_LEASE_TTL`` has its lease expired and the
  job re-queued (a transient failure under the usual
  ``REPRO_RETRIES`` policy).  The zombie is left alone: results are
  idempotent by cache key, so its late ``store.put`` is a no-op
  duplicate and its late completion event is ignored.
* **Settle** — every executed job ends durably ``done`` in the spool
  and as a typed :class:`~repro.sim.campaign.journal.JobReceipt` in
  the campaign journal (outcome ``ok``/``retried``/``quarantined``),
  the same provenance records ``campaign status`` reads.
* **Recover** — the daemon holds no state that matters outside
  ``<cache-dir>``: ``kill -9`` it, restart it, and the spool replays
  accepted-but-undone jobs, cells finished before (or *during*, by an
  orphaned worker) the crash are recognized in the result store, and
  the campaign completes bit-identical to a serial oracle run.

The HTTP layer (``repro serve``) is a stdlib ``ThreadingHTTPServer``;
``/healthz`` answers liveness, ``/readyz`` readiness (queue depth
under cap + live workers) with the machine-readable
:func:`~repro.sim.campaign.status.status_snapshot` attached.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue as queue_mod
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import multiprocessing
import sys

from repro.defaults import (default_instructions,
                            default_sample_instructions, env_int)
from repro.obs import log
from repro.pipeline.stats import SimStats
from repro.sim import faults
from repro.sim.campaign.executor import (_execute_job, _format_error,
                                         classify_error, default_retries,
                                         default_workers)
from repro.sim.campaign.job import Job
from repro.sim.campaign.journal import CampaignJournal, JobReceipt
from repro.sim.campaign.spec import CampaignSpec
from repro.sim.campaign.status import status_snapshot
from repro.sim.campaign.store import ResultStore
from repro.sim.config import SimConfig
from repro.sim.service.lease import LeaseTable, default_lease_ttl
from repro.sim.service.queue import QueueFull, SpoolQueue
from repro.sim.service.quota import QuotaTable
from repro.workloads import DEFAULT_SEED, all_workloads


def default_service_host() -> str:
    return os.environ.get("REPRO_SERVICE_HOST", "127.0.0.1")


def default_service_port() -> int:
    return env_int("REPRO_SERVICE_PORT", 8023)


class ApiError(Exception):
    """A client-visible request failure with an HTTP status."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


# --------------------------------------------------------------------- #
# Worker process body.
# --------------------------------------------------------------------- #

def _worker_main(worker_id: str, tasks, events, cache_dir: str,
                 checkpoints: bool, timeout: Optional[float],
                 beat_interval: float, parent_pid: int) -> None:
    """Service worker: execute leased jobs, heartbeat while busy, put
    results into the shared store, report completion events.

    The worker re-arms the environment fault plan with its *own*
    firing state (``heartbeat`` and ``put`` sites fire worker-side);
    job faults still ride in the task payload, consumed daemon-side at
    dispatch ordinals exactly like the pool executor.

    An orphan check on the task-queue idle path makes a SIGKILLed
    daemon's workers exit on their own: they finish their current job
    (its ``store.put`` survives the crash and is recognized on
    restart) and notice the reparenting within a second.
    """
    try:
        faults._PLAN = faults.FaultPlan.from_env()
    except Exception:                       # noqa: BLE001 — never wedge
        faults._PLAN = None
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        if hasattr(signal, "SIGTERM"):
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    store = ResultStore(cache_dir)
    busy = threading.Event()

    def _beats() -> None:
        while True:
            time.sleep(beat_interval)
            if not busy.is_set():
                continue                    # idle: liveness via is_alive
            try:
                faults.fire("heartbeat")
                events.put(("beat", worker_id, None, None))
            except OSError:
                pass                        # suppressed beat: stay silent

    threading.Thread(target=_beats, daemon=True).start()

    while True:
        try:
            task = tasks.get(timeout=1.0)
        except queue_mod.Empty:
            if os.getppid() != parent_pid:
                return                      # daemon died: drain out
            continue
        if task is None:
            return
        key, job_dict, inject = task
        busy.set()
        try:
            job = Job.from_dict(job_dict)
            stats_dict, _ = _execute_job(job, timeout, cache_dir,
                                         checkpoints, False, inject)
        except Exception as exc:            # noqa: BLE001
            busy.clear()
            events.put(("fail", worker_id, key, {
                "error_class": type(exc).__name__,
                "message": _format_error(exc),
                "transient": classify_error(exc) == "transient"}))
            continue
        busy.clear()
        store_error = None
        try:
            store.put(key, SimStats.from_dict(stats_dict),
                      meta=job.to_dict())
        except OSError as exc:
            store_error = str(exc)
        events.put(("done", worker_id, key,
                    {"stats": stats_dict, "store_error": store_error}))


class _WorkerHandle:
    """Daemon-side view of one worker process."""

    def __init__(self, worker_id: str, process, tasks) -> None:
        self.id = worker_id
        self.process = process
        self.tasks = tasks
        self.busy: Optional[str] = None     # key in flight, if any
        self.last_beat: float = 0.0

    def send(self, task) -> None:
        self.tasks.put(task)

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        try:
            self.tasks.put(None)
        except (OSError, ValueError):
            pass

    def join(self, timeout: float) -> None:
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()


@dataclass
class _JobState:
    """Daemon-side attempt bookkeeping for one undone job."""

    label: str = ""
    attempts: int = 0
    errors: List[str] = field(default_factory=list)
    error_class: Optional[str] = None
    started: float = 0.0
    wall: float = 0.0


# --------------------------------------------------------------------- #
# The daemon.
# --------------------------------------------------------------------- #

class CampaignService:
    """Queue/worker campaign daemon over one cache directory."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 workers: Optional[int] = None,
                 lease_ttl: Optional[float] = None,
                 queue_cap: Optional[int] = None,
                 quota_burst: Optional[int] = None,
                 quota_refill: Optional[float] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 checkpoints: Optional[bool] = None,
                 clock=time.monotonic) -> None:
        from repro.sim.artifacts import checkpoints_enabled
        self.store = ResultStore(cache_dir)
        self.cache_dir = self.store.cache_dir
        self.queue = SpoolQueue(self.cache_dir, cap=queue_cap)
        self.leases = LeaseTable(lease_ttl, clock=clock)
        self.quota = QuotaTable(quota_burst, quota_refill, clock=clock)
        self.journal = CampaignJournal(self.cache_dir)
        self.workers_wanted = (workers if workers is not None
                               else default_workers())
        self.retries = (retries if retries is not None
                        else default_retries())
        self.timeout = timeout
        self.checkpoints = (checkpoints if checkpoints is not None
                            else checkpoints_enabled())
        self.clock = clock
        self.respawns = 0
        self.plan = faults.FaultPlan.from_env()
        self._dispatches = 0
        self._states: Dict[str, _JobState] = {}
        self._results: Dict[str, dict] = {}  # stats seen this process
        self._workers: Dict[str, _WorkerHandle] = {}
        self._worker_seq = 0
        self._events = None                 # created at start()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = clock()
        # Dispatcher cadence: several ticks per lease TTL so expiry is
        # detected promptly, floored so tiny test TTLs cannot busy-spin.
        self.tick_interval = min(0.25, max(0.01, self.leases.ttl / 8))
        self.beat_interval = max(0.01, self.leases.ttl / 4)

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    def start(self, dispatch_thread: bool = True) -> None:
        """Arm faults, recover the spool, spawn workers and (unless a
        test drives :meth:`_tick` by hand) the dispatcher thread."""
        faults._PLAN = self.plan
        context = (multiprocessing.get_context("fork")
                   if sys.platform == "linux"
                   else multiprocessing.get_context())
        self._context = context
        if self._events is None:
            self._events = context.Queue()
        self._recover()
        for _ in range(max(1, self.workers_wanted)):
            self._spawn_worker()
        if dispatch_thread:
            self._thread = threading.Thread(target=self._loop,
                                            name="repro-dispatch",
                                            daemon=True)
            self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        for worker in self._workers.values():
            worker.stop()
        for worker in self._workers.values():
            worker.join(timeout=2.0)
        faults._PLAN = None

    def _recover(self) -> None:
        """Replay recovery: settle every spooled-but-undone job whose
        result already sits in the store (finished before — or by an
        orphaned worker during — the previous daemon's death)."""
        recovered = 0
        while True:
            item = self.queue.claim()
            if item is None:
                break
            key, _payload = item
            if self.store.get(key) is not None:
                self.queue.mark_done(key, "cached", attempts=0)
                recovered += 1
            else:
                self.queue.requeue(key)
                break                   # claim() cycles; stop at first miss
        # One claim/requeue pass is not a full scan (requeue fronts the
        # queue); walk the remaining pending keys explicitly.
        undone = [key for key, _ in self._drain_claims()]
        for key in undone:
            if self.store.get(key) is not None:
                self.queue.mark_done(key, "cached", attempts=0)
                recovered += 1
            else:
                self.queue.requeue(key)
        if recovered:
            log(f"repro: serve: recovery settled {recovered} job(s) "
                f"already in the result store")
        depth = self.queue.depth()
        if depth:
            log(f"repro: serve: {depth} job(s) pending from the spool "
                f"will be re-dispatched")

    def _drain_claims(self) -> List[Tuple[str, dict]]:
        out = []
        while True:
            item = self.queue.claim()
            if item is None:
                return out
            out.append(item)

    def _spawn_worker(self) -> _WorkerHandle:
        self._worker_seq += 1
        worker_id = f"w{self._worker_seq}"
        tasks = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, tasks, self._events, str(self.cache_dir),
                  self.checkpoints, self.timeout, self.beat_interval,
                  os.getpid()),
            daemon=True)
        process.start()
        handle = _WorkerHandle(worker_id, process, tasks)
        handle.last_beat = self.clock()
        self._workers[worker_id] = handle
        return handle

    # ------------------------------------------------------------------ #
    # Dispatcher.
    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception as exc:        # noqa: BLE001 — keep serving
                log(f"repro: serve: dispatcher error: "
                    f"{type(exc).__name__}: {exc}", "error")
            self._stop.wait(self.tick_interval)

    def _tick(self) -> None:
        """One dispatcher round: drain worker events, expire leases,
        replace dead workers, dispatch pending jobs to idle workers."""
        with self._lock:
            self._drain_events()
            self._expire_leases()
            self._reap_workers()
            self._dispatch()

    def _drain_events(self) -> None:
        while True:
            try:
                kind, worker_id, key, payload = self._events.get_nowait()
            except queue_mod.Empty:
                return
            worker = self._workers.get(worker_id)
            if kind == "beat":
                if worker is not None:
                    worker.last_beat = self.clock()
                self.leases.renew(worker_id)
            elif kind == "done":
                if worker is not None and worker.busy == key:
                    worker.busy = None
                self._job_done(key, payload)
            elif kind == "fail":
                if worker is not None and worker.busy == key:
                    worker.busy = None
                self._job_failed(key, payload)

    def _job_done(self, key: str, payload: dict) -> None:
        if self.queue.outcome(key) is not None:
            # A zombie finished after its lease expired and the job was
            # settled by the re-dispatch: idempotent by key, ignore.
            log(f"repro: serve: late result for settled job "
                f"{key[:12]} ignored (idempotent duplicate)", "debug")
            return
        state = self._states.setdefault(key, _JobState())
        if state.started:
            state.wall += self.clock() - state.started
            state.started = 0.0
        self._results[key] = payload.get("stats", {})
        if payload.get("store_error"):
            log(f"repro: serve: result store write failed for "
                f"{state.label or key[:12]} "
                f"({payload['store_error']}); result held in daemon "
                f"memory only", "warn")
        self.leases.release(key)
        outcome = "retried" if state.attempts > 1 else "ok"
        self.queue.mark_done(key, outcome, attempts=state.attempts)
        self.journal.record(JobReceipt(
            key=key, label=state.label, outcome=outcome,
            attempts=state.attempts, error_class=state.error_class,
            errors=list(state.errors), wall_seconds=state.wall))

    def _job_failed(self, key: str, payload: dict) -> None:
        if self.queue.outcome(key) is not None:
            return                          # late failure of a zombie
        state = self._states.setdefault(key, _JobState())
        if state.started:
            state.wall += self.clock() - state.started
            state.started = 0.0
        state.errors.append(payload.get("message", "unknown failure"))
        state.error_class = payload.get("error_class", "Exception")
        self.leases.release(key)
        if payload.get("transient") and state.attempts <= self.retries:
            log(f"repro: serve: retrying {state.label or key[:12]} "
                f"(attempt {state.attempts} failed: "
                f"{state.error_class})", "warn")
            self.queue.requeue(key)
        else:
            self._quarantine(key, state)

    def _quarantine(self, key: str, state: _JobState) -> None:
        self.queue.mark_done(key, "quarantined",
                             attempts=state.attempts)
        self.journal.record(JobReceipt(
            key=key, label=state.label, outcome="quarantined",
            attempts=state.attempts, error_class=state.error_class,
            errors=list(state.errors), wall_seconds=state.wall))
        log(f"repro: serve: quarantined {state.label or key[:12]} "
            f"after {state.attempts} attempt(s): "
            f"{state.errors[-1] if state.errors else '?'}", "warn")

    def _expire_leases(self) -> None:
        for lease in self.leases.expired():
            state = self._states.setdefault(lease.key, _JobState())
            if state.started:
                state.wall += self.clock() - state.started
                state.started = 0.0
            state.errors.append(
                f"LeaseExpired: no heartbeat from {lease.worker} for "
                f"{self.leases.ttl:g}s ({lease.renewals} renewal(s))")
            state.error_class = "LeaseExpired"
            # The zombie worker keeps its busy slot until its own late
            # event arrives; the JOB is re-dispatchable immediately.
            if state.attempts <= self.retries:
                log(f"repro: serve: lease expired for "
                    f"{state.label or lease.key[:12]} (worker "
                    f"{lease.worker}); re-dispatching", "warn")
                self.queue.requeue(lease.key)
            else:
                self._quarantine(lease.key, state)

    def _reap_workers(self) -> None:
        for worker_id, worker in list(self._workers.items()):
            if worker.alive():
                continue
            del self._workers[worker_id]
            worker.busy = None
            for lease in self.leases.expire_worker(worker_id):
                state = self._states.setdefault(lease.key, _JobState())
                if state.started:
                    state.wall += self.clock() - state.started
                    state.started = 0.0
                state.errors.append(
                    f"WorkerLost: {worker_id} died with job in flight")
                state.error_class = "WorkerLost"
                if state.attempts <= self.retries:
                    self.queue.requeue(lease.key)
                else:
                    self._quarantine(lease.key, state)
            self.respawns += 1
            log(f"repro: serve: worker {worker_id} died; respawning "
                f"(respawn {self.respawns})", "warn")
            self._spawn_worker()

    def _dispatch(self) -> None:
        for worker in self._workers.values():
            if worker.busy is not None or not worker.alive():
                continue
            while True:
                item = self.queue.claim()
                if item is None:
                    return
                key, payload = item
                # Idempotence check at dispatch: the result may have
                # landed since enqueue (recovery race, a zombie, or a
                # plain `campaign run` sharing this cache dir).
                if key in self._results \
                        or ResultStore(self.cache_dir).get(key) \
                        is not None:
                    self.queue.mark_done(
                        key, "cached",
                        attempts=self._states.get(
                            key, _JobState()).attempts)
                    continue
                state = self._states.setdefault(key, _JobState())
                if not state.label:
                    try:
                        state.label = Job.from_dict(payload).label
                    except Exception:       # noqa: BLE001
                        state.label = key[:12]
                self._dispatches += 1
                state.attempts += 1
                state.started = self.clock()
                inject = (self.plan.job_fault(self._dispatches)
                          if self.plan else None)
                self.leases.grant(key, worker.id)
                worker.busy = key
                worker.send((key, payload, inject))
                break

    # ------------------------------------------------------------------ #
    # API surface (shared by the HTTP layer and in-process callers).
    # ------------------------------------------------------------------ #

    def submit(self, payload: dict, client: str = "anon") -> dict:
        """Admit one campaign spec; returns the acknowledgement dict.
        Raises :class:`ApiError` on malformed specs (400), quota or
        queue backpressure (429 + retry-after), grids that can never
        fit the quota burst (413), or a spool that cannot be written
        (503 — unpersistable work is unacceptable work)."""
        spec, cells = self._parse_spec(payload)
        keys = sorted({key for row in cells.values()
                       for key in row.values()})
        digest = hashlib.sha256(json.dumps(
            [client, spec.name, keys], sort_keys=True,
            separators=(",", ":")).encode("utf-8")).hexdigest()[:12]
        campaign_id = f"c{digest}"
        with self._lock:
            existing = self.queue.campaign(campaign_id)
            if existing is not None:
                ack = self._ack(existing)
                ack["resubmitted"] = True
                return ack
            jobs = {job.cache_key(): job for job in spec.jobs()}
            cached = [key for key in keys
                      if self.store.get(key) is not None]
            fresh = [key for key in keys if key not in cached
                     and self.queue.outcome(key) is None]
            admitted, retry_after = self.quota.admit(client,
                                                     cost=len(fresh))
            if not admitted:
                if retry_after == float("inf"):
                    raise ApiError(
                        413, f"campaign needs {len(fresh)} job tokens "
                        f"but the per-client burst is "
                        f"{self.quota.burst}; split the grid")
                raise ApiError(
                    429, f"quota exhausted for client {client!r} "
                    f"({len(fresh)} job(s) requested)",
                    retry_after=retry_after)
            record = {
                "id": campaign_id, "name": spec.name, "client": client,
                "benchmarks": list(spec.benchmarks),
                "machines": [c.label for c in spec.configs],
                "instructions": spec.instructions,
                "keys": keys, "cells": cells,
            }
            try:
                self.queue.submit(
                    record,
                    [(key, jobs[key].to_dict()) for key in fresh])
            except QueueFull as exc:
                raise ApiError(429, str(exc),
                               retry_after=exc.retry_after)
            except OSError as exc:
                raise ApiError(503, f"spool write failed: {exc}")
            for key in cached:
                self.queue.mark_done(key, "cached", attempts=0)
            return self._ack(record)

    def _ack(self, record: dict) -> dict:
        keys = record.get("keys", [])
        settled = sum(1 for key in keys
                      if self.queue.outcome(key) is not None)
        return {"campaign": record["id"],
                "location": f"/campaigns/{record['id']}",
                "jobs": len(keys),
                "settled": settled,
                "cached": sum(1 for key in keys
                              if self.queue.outcome(key) == "cached")}

    def _parse_spec(self, payload: dict
                    ) -> Tuple[CampaignSpec, Dict[str, Dict[str, str]]]:
        if not isinstance(payload, dict):
            raise ApiError(400, "campaign spec must be a JSON object")
        workloads = payload.get("workloads")
        if isinstance(workloads, str):
            workloads = [w for w in workloads.split(",") if w]
        if not workloads or not isinstance(workloads, list):
            raise ApiError(400, "spec needs a non-empty 'workloads' "
                                "list")
        known = set(all_workloads())
        for name in workloads:
            if name not in known:
                raise ApiError(400, f"unknown workload {name!r}")
        machines = payload.get("machines")
        if isinstance(machines, str):
            machines = [m for m in machines.split(",") if m]
        if not machines or not isinstance(machines, list):
            raise ApiError(400, "spec needs a non-empty 'machines' "
                                "list (tokens like baseline, cpr, "
                                "msp:16, or config dicts)")
        predictor = payload.get("predictor", "tage")
        configs = []
        for token in machines:
            try:
                if isinstance(token, dict):
                    configs.append(SimConfig.from_dict(token))
                else:
                    configs.append(SimConfig.from_token(
                        str(token), predictor=predictor))
            except (ValueError, KeyError, TypeError) as exc:
                raise ApiError(400, f"bad machine {token!r}: {exc}")
        sampling = payload.get("sampling")
        params = None
        if sampling:
            from repro.sim.sampling import SamplingError, SamplingParams
            try:
                params = SamplingParams.coerce(sampling)
            except (SamplingError, ValueError, TypeError) as exc:
                raise ApiError(400, f"bad sampling spec: {exc}")
            configs = [params.apply(config) for config in configs]
        instructions = payload.get("instructions")
        if instructions is None:
            instructions = (default_sample_instructions() if params
                            else default_instructions())
        try:
            instructions = int(instructions)
        except (TypeError, ValueError):
            raise ApiError(400, f"bad instruction budget "
                                f"{instructions!r}")
        if instructions <= 0:
            raise ApiError(400, "instruction budget must be positive")
        seed = payload.get("seed", DEFAULT_SEED)
        name = str(payload.get("name") or "campaign")
        spec = CampaignSpec(name, workloads, configs, instructions,
                            seed=seed)
        labels = [config.label for config in configs]
        if len(set(labels)) != len(labels):
            raise ApiError(400, f"duplicate machine labels {labels}")
        cells = {bench: {config.label: spec.cell_key(bench, config)
                         for config in configs}
                 for bench in workloads}
        return spec, cells

    def campaign_status(self, campaign_id: str) -> dict:
        with self._lock:
            record = self.queue.campaign(campaign_id)
            if record is None:
                raise ApiError(404, f"unknown campaign {campaign_id!r}")
            keys = record.get("keys", [])
            outcomes = {key: self.queue.outcome(key) for key in keys}
            done = sum(1 for o in outcomes.values()
                       if o in ("ok", "retried", "cached"))
            quarantined = sum(1 for o in outcomes.values()
                              if o == "quarantined")
            leased = sum(1 for key in keys
                         if self.leases.holder(key) is not None)
            pending = len(keys) - done - quarantined
            if quarantined and pending == 0:
                state = "partial"
            elif done == len(keys):
                state = "done"
            elif leased or pending < len(keys):
                state = "running"
            else:
                state = "queued"
            return {"campaign": campaign_id,
                    "name": record.get("name"),
                    "client": record.get("client"),
                    "state": state,
                    "jobs": len(keys), "done": done,
                    "pending": pending, "leased": leased,
                    "quarantined": quarantined,
                    "retried": sum(1 for o in outcomes.values()
                                   if o == "retried"),
                    "attempts": {key[:12]: self.queue.attempts(key)
                                 for key in keys
                                 if self.queue.attempts(key) > 1}}

    def campaign_results(self, campaign_id: str) -> dict:
        from repro.sim.experiments import ExperimentResult
        with self._lock:
            status = self.campaign_status(campaign_id)
            record = self.queue.campaign(campaign_id)
            if status["state"] in ("queued", "running"):
                raise ApiError(
                    409, f"campaign {campaign_id} is {status['state']} "
                    f"({status['done']}/{status['jobs']} done); poll "
                    f"/campaigns/{campaign_id} until it settles")
            store = ResultStore(self.cache_dir)   # fresh: see worker puts
            grid: Dict[str, Dict[str, SimStats]] = {}
            missing = []
            for bench, row in record.get("cells", {}).items():
                grid[bench] = {}
                for label, key in row.items():
                    stats = store.get(key)
                    if stats is None and key in self._results:
                        stats = SimStats.from_dict(self._results[key])
                    if stats is None:
                        missing.append(f"{bench}/{label}")
                    else:
                        grid[bench][label] = stats
            body = dict(status)
            body["cells"] = {
                bench: {label: stats.to_dict()
                        for label, stats in row.items()}
                for bench, row in grid.items()}
            if missing:
                body["missing"] = missing
            else:
                result = ExperimentResult(
                    record.get("name", campaign_id),
                    record.get("machines", []))
                result.stats = grid
                body["table"] = result.to_table()
            return body

    def campaign_list(self) -> dict:
        with self._lock:
            return {"campaigns": [
                self.campaign_status(campaign_id)
                for campaign_id in sorted(self.queue.campaigns())]}

    def healthz(self) -> dict:
        with self._lock:
            return {"ok": True,
                    "uptime_seconds": round(
                        self.clock() - self._started_at, 3),
                    "workers": {"configured": self.workers_wanted,
                                "alive": sum(
                                    1 for w in self._workers.values()
                                    if w.alive()),
                                "respawns": self.respawns},
                    "dispatches": self._dispatches}

    def readyz(self) -> Tuple[bool, dict]:
        with self._lock:
            depth = self.queue.depth()
            alive = sum(1 for w in self._workers.values() if w.alive())
            ready = alive > 0 and depth < self.queue.cap
            body = {"ready": ready,
                    "queue": {"depth": depth, "cap": self.queue.cap,
                              "leased": len(self.leases)},
                    "workers": {"configured": self.workers_wanted,
                                "alive": alive},
                    "lease_ttl": self.leases.ttl,
                    "status": status_snapshot(self.cache_dir)}
            return ready, body


# --------------------------------------------------------------------- #
# HTTP layer.
# --------------------------------------------------------------------- #

class _ServiceHandler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`CampaignService`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service           # type: ignore[attr-defined]

    def log_message(self, fmt, *args) -> None:
        log(f"repro: serve: {self.address_string()} "
            f"{fmt % args}", "debug")

    def _reply(self, status: int, body: dict,
               retry_after: Optional[float] = None) -> None:
        blob = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        if retry_after is not None and retry_after != float("inf"):
            self.send_header("Retry-After",
                             str(max(1, int(retry_after + 0.999))))
        self.end_headers()
        self.wfile.write(blob)

    def _guard(self, fn) -> None:
        try:
            fn()
        except ApiError as exc:
            self._reply(exc.status, {"error": str(exc)},
                        retry_after=exc.retry_after)
        except Exception as exc:            # noqa: BLE001
            log(f"repro: serve: internal error: "
                f"{type(exc).__name__}: {exc}", "error")
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:               # noqa: N802 (stdlib API)
        def handle() -> None:
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                self._reply(200, self.service.healthz())
            elif path == "/readyz":
                ready, body = self.service.readyz()
                self._reply(200 if ready else 503, body)
            elif path == "/campaigns":
                self._reply(200, self.service.campaign_list())
            elif path.startswith("/campaigns/"):
                rest = path[len("/campaigns/"):]
                if rest.endswith("/results"):
                    self._reply(200, self.service.campaign_results(
                        rest[:-len("/results")]))
                else:
                    self._reply(200,
                                self.service.campaign_status(rest))
            else:
                raise ApiError(404, f"no route for {self.path!r}")
        self._guard(handle)

    def do_POST(self) -> None:              # noqa: N802 (stdlib API)
        def handle() -> None:
            if self.path.rstrip("/") != "/campaigns":
                raise ApiError(404, f"no route for {self.path!r}")
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
            except (ValueError, UnicodeDecodeError) as exc:
                raise ApiError(400, f"request body is not JSON: {exc}")
            client = self.headers.get("X-Repro-Client", "anon")
            self._reply(200, self.service.submit(payload,
                                                 client=client))
        self._guard(handle)


def make_server(service: CampaignService,
                host: Optional[str] = None,
                port: Optional[int] = None) -> ThreadingHTTPServer:
    """Bind the JSON API for an (already started) service.  ``port=0``
    picks an ephemeral port — read it back from
    ``server.server_address``."""
    host = host if host is not None else default_service_host()
    port = port if port is not None else default_service_port()
    server = ThreadingHTTPServer((host, port), _ServiceHandler)
    server.service = service                # type: ignore[attr-defined]
    return server


__all__ = ["ApiError", "CampaignService", "default_service_host",
           "default_service_port", "make_server"]
