"""Worker leases with heartbeats (the at-least-once dispatch contract).

Every dispatched job is covered by a :class:`Lease`: worker id, grant
time, and a deadline ``REPRO_LEASE_TTL`` seconds out.  A working
worker's heartbeat thread beats several times per TTL; each beat
renews every lease the worker holds.  A worker that stops heartbeating
— killed, wedged, or with its beats suppressed by the ``heartbeat``
fault site — ages past its deadline and :meth:`LeaseTable.expired`
hands the lease back to the dispatcher, which re-queues the job.

Expiry is deliberately *not* worker murder: a zombie worker that lost
its lease but eventually finishes is harmless, because results are
idempotent by content-hash key — its ``store.put`` is a no-op
duplicate and its late completion event is ignored.  The lease bounds
how long a job's *progress* can stall, not how long a worker may live.

Renewals pass through the ``lease-renew`` fault point
(:mod:`repro.sim.faults`): a faulted renewal is skipped, so lease
expiry is deterministically testable from the daemon process alone
even while real heartbeats keep arriving.

The table is daemon-memory only.  Leases are void on daemon crash by
design: the spool still lists every undone job, so a restarted daemon
re-dispatches them all — the crash-recovery invariant needs no
persistent lease state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.defaults import env_float
from repro.obs import log
from repro.sim import faults


def default_lease_ttl() -> float:
    """Seconds without a heartbeat before a worker's leases expire
    (``REPRO_LEASE_TTL``, default 30).  Calibrate it well above the
    per-job wall-time tail — see EXPERIMENTS.md, "Lease-TTL
    calibration"."""
    return max(0.05, env_float("REPRO_LEASE_TTL", 30.0))


@dataclass
class Lease:
    """One job's coverage by one worker."""

    key: str
    worker: str
    granted: float
    deadline: float
    renewals: int = 0


class LeaseTable:
    """Active leases, keyed by job key (at most one lease per job)."""

    def __init__(self, ttl: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.ttl = ttl if ttl is not None else default_lease_ttl()
        self.clock = clock
        self._leases: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def grant(self, key: str, worker: str) -> Lease:
        if key in self._leases:
            raise ValueError(f"job {key} already leased to "
                             f"{self._leases[key].worker}")
        now = self.clock()
        lease = Lease(key=key, worker=worker, granted=now,
                      deadline=now + self.ttl)
        self._leases[key] = lease
        return lease

    def renew(self, worker: str) -> int:
        """A heartbeat from ``worker`` arrived: push the deadline of
        every lease it holds out by one TTL.  Each renewal passes the
        ``lease-renew`` fault point; a faulted renewal is skipped (the
        lease keeps aging), which is how lease expiry is tested
        without killing anything."""
        renewed = 0
        for lease in self._leases.values():
            if lease.worker != worker:
                continue
            try:
                faults.fire("lease-renew")
            except OSError as exc:
                log(f"repro: serve: lease renewal for {lease.key[:12]} "
                    f"skipped ({exc})", "debug")
                continue
            lease.deadline = self.clock() + self.ttl
            lease.renewals += 1
            renewed += 1
        return renewed

    def expired(self) -> List[Lease]:
        """Pop and return every lease past its deadline."""
        now = self.clock()
        out = [lease for lease in self._leases.values()
               if lease.deadline <= now]
        for lease in out:
            del self._leases[lease.key]
        return out

    def expire_worker(self, worker: str) -> List[Lease]:
        """Pop every lease held by ``worker`` (its process died — no
        point waiting for the deadline)."""
        out = [lease for lease in self._leases.values()
               if lease.worker == worker]
        for lease in out:
            del self._leases[lease.key]
        return out

    def release(self, key: str) -> Optional[Lease]:
        """Drop the lease for a settled job (normal completion)."""
        return self._leases.pop(key, None)

    def holder(self, key: str) -> Optional[str]:
        lease = self._leases.get(key)
        return lease.worker if lease else None

    def held(self) -> List[str]:
        return list(self._leases)


__all__ = ["Lease", "LeaseTable", "default_lease_ttl"]
