"""Simulation entry points: build a core for a config and run it."""

from __future__ import annotations

from typing import Optional, Union

from repro.baseline import BaselineProcessor
from repro.core import MSPProcessor
from repro.cpr import CPRProcessor
from repro.isa.program import Program
from repro.pipeline.core_base import OutOfOrderCore
from repro.pipeline.stats import SimStats
from repro.sim.config import SimConfig

_CORES = {
    "baseline": BaselineProcessor,
    "cpr": CPRProcessor,
    "msp": MSPProcessor,
}


def build_core(program: Program, config: SimConfig) -> OutOfOrderCore:
    """Instantiate the processor model named by ``config.arch``."""
    if config.arch not in _CORES:
        raise ValueError(f"unknown architecture {config.arch!r}; "
                         f"choose from {sorted(_CORES)}")
    return _CORES[config.arch](program, config)


def simulate(program: Union[Program, str], config: SimConfig,
             max_instructions: int = 50_000,
             max_cycles: Optional[int] = None) -> SimStats:
    """Run ``program`` (a Program or a registered workload name) on the
    machine described by ``config`` and return its statistics."""
    if isinstance(program, str):
        from repro.workloads import get_program
        program = get_program(program)
    core = build_core(program, config)
    return core.run(max_instructions=max_instructions,
                    max_cycles=max_cycles)
