"""Simulation entry points: build a core for a config and run it.

``simulate`` is the one function everything above the core layer calls
(CLI, campaign executor, tests). It routes to full-detail or sampled
simulation: a config whose ``sample_mode`` is not ``"full"`` — or an
explicit ``sampling=`` argument (``True`` for periodic windows,
``"simpoint"`` for BBV phase clustering, ``"offset"``, a dict, or a
:class:`~repro.sim.sampling.SamplingParams`) — dispatches to
:func:`repro.sim.sampling.simulate_sampled`.

The default instruction budget comes from
:func:`repro.defaults.default_instructions` (``REPRO_INSTRUCTIONS``,
default 3000) — the same source of truth the experiment harnesses use —
and from :func:`repro.defaults.default_sample_instructions` for sampled
runs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.baseline import BaselineProcessor
from repro.core import MSPProcessor
from repro.cpr import CPRProcessor
from repro.defaults import default_instructions, \
    default_sample_instructions
from repro.isa.program import Program
from repro.pipeline.core_base import OutOfOrderCore
from repro.pipeline.stats import SimStats
from repro.sim.config import SimConfig

_CORES = {
    "baseline": BaselineProcessor,
    "cpr": CPRProcessor,
    "msp": MSPProcessor,
}


def build_core(program: Program, config: SimConfig) -> OutOfOrderCore:
    """Instantiate the processor model named by ``config.arch``."""
    if config.arch not in _CORES:
        raise ValueError(f"unknown architecture {config.arch!r}; "
                         f"choose from {sorted(_CORES)}")
    return _CORES[config.arch](program, config)


def simulate(program: Union[Program, str], config: SimConfig,
             max_instructions: Optional[int] = None,
             max_cycles: Optional[int] = None,
             sampling=None, artifacts=None,
             metrics=None, profile=None) -> SimStats:
    """Run ``program`` (a Program or a registered workload name) on the
    machine described by ``config`` and return its statistics.

    ``sampling`` accepts anything
    :meth:`~repro.sim.sampling.SamplingParams.coerce` does (True, a
    mode string, a dict, or a ``SamplingParams``) and overrides the
    config's recorded ``sample_*`` schedule; ``None`` defers to the
    config. ``max_instructions=None`` uses the shared defaults.

    ``artifacts`` controls the sampled engine's checkpoint store
    (:func:`repro.sim.artifacts.resolve_store`: ``None`` defers to
    ``REPRO_CHECKPOINTS``, ``False`` disables, or pass a store).
    Full-detail runs have no functional phase to amortize and ignore
    it.

    ``metrics`` arms the interval time-series recorder
    (:mod:`repro.obs.metrics`): ``True`` picks a default interval,
    an int sets it; the series lands on the returned stats as a
    dynamic ``interval_metrics`` attribute (sampled runs emit one row
    per measurement window). ``profile`` is an optional
    :class:`repro.obs.PhaseProfile` that accumulates ff / warmup /
    detail / store span timings.  Both default to off and leave the
    stats bit-identical when off.
    """
    from repro.sim.sampling import SamplingError, SamplingParams, \
        simulate_sampled
    if isinstance(program, str):
        from repro.workloads import get_program
        program = get_program(program)
    params = (SamplingParams.coerce(sampling) if sampling is not None
              else SamplingParams.from_config(config))
    if params is not None:
        if max_cycles is not None:
            raise SamplingError(
                "max_cycles is not supported with sampled simulation "
                "(windows bound cycles per-interval internally)")
        config = params.apply(config)
        budget = (max_instructions if max_instructions is not None
                  else default_sample_instructions())
        return simulate_sampled(program, config, budget, params=params,
                                artifacts=artifacts, metrics=metrics,
                                profile=profile)
    budget = (max_instructions if max_instructions is not None
              else default_instructions())
    core = build_core(program, config)
    recorder = None
    if metrics:
        from repro.obs import IntervalRecorder, default_metrics_interval
        interval = (default_metrics_interval(budget) if metrics is True
                    else int(metrics))
        recorder = IntervalRecorder(interval)
        core.attach_metrics(recorder)
    if profile is not None:
        from repro.obs import span
        with span(profile, "detail"):
            stats = core.run(max_instructions=budget,
                             max_cycles=max_cycles)
    else:
        stats = core.run(max_instructions=budget, max_cycles=max_cycles)
    if recorder is not None:
        stats.interval_metrics = recorder.rows(core)
    return stats
