"""Simulation layer: configuration, runner, statistics, experiments,
report writers."""

from repro.pipeline.stats import SimStats
from repro.sim.config import SimConfig
from repro.sim.runner import build_core, simulate

__all__ = ["SimConfig", "SimStats", "build_core", "simulate"]
