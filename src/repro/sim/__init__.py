"""Simulation layer: configuration, runner, statistics, experiments,
campaign engine, sampled-simulation engine, report writers."""

from repro.pipeline.stats import SimStats
from repro.sim.campaign import (
    CampaignSpec,
    Job,
    ResultStore,
    run_jobs,
)
from repro.sim.config import SimConfig
from repro.sim.runner import build_core, simulate
from repro.sim.sampling import SamplingParams, simulate_sampled

__all__ = ["CampaignSpec", "Job", "ResultStore", "SamplingParams",
           "SimConfig", "SimStats", "build_core", "run_jobs",
           "simulate", "simulate_sampled"]
