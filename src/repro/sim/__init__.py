"""Simulation layer: configuration, runner, statistics, experiments,
campaign engine, report writers."""

from repro.pipeline.stats import SimStats
from repro.sim.campaign import (
    CampaignSpec,
    Job,
    ResultStore,
    run_jobs,
)
from repro.sim.config import SimConfig
from repro.sim.runner import build_core, simulate

__all__ = ["CampaignSpec", "Job", "ResultStore", "SimConfig",
           "SimStats", "build_core", "run_jobs", "simulate"]
