"""Parallel simulation campaigns with a persistent result cache.

A *campaign* is a batch of independent simulations (a figure's
workload x machine grid, an ablation sweep, a fuzz batch). This
subsystem gives every experiment harness three things:

* a :class:`~repro.sim.campaign.job.Job` model — one deterministic
  ``(workload, SimConfig, budget)`` cell with a stable content-hash key;
* a :class:`~repro.sim.campaign.store.ResultStore` — statistics
  persisted on disk by job key, so reruns skip already-simulated cells;
* an executor — :func:`~repro.sim.campaign.executor.run_jobs` shards
  pending jobs across a process pool (``REPRO_JOBS`` / ``--jobs``).

Grids are expressed declaratively with
:class:`~repro.sim.campaign.spec.CampaignSpec`.
"""

from repro.sim.campaign.executor import (
    CampaignError,
    CampaignInterrupted,
    CampaignReport,
    WorkerLost,
    classify_error,
    default_retries,
    default_workers,
    profile_path,
    run_jobs,
)
from repro.sim.campaign.job import CACHE_VERSION, Job
from repro.sim.campaign.journal import CampaignJournal, JobReceipt
from repro.sim.campaign.spec import CampaignSpec
from repro.sim.campaign.status import status_snapshot
from repro.sim.campaign.store import ResultStore, default_cache_dir

__all__ = [
    "CACHE_VERSION",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignJournal",
    "CampaignReport",
    "CampaignSpec",
    "Job",
    "JobReceipt",
    "ResultStore",
    "WorkerLost",
    "classify_error",
    "default_cache_dir",
    "default_retries",
    "default_workers",
    "profile_path",
    "run_jobs",
    "status_snapshot",
]
