"""The campaign job model.

A :class:`Job` is one simulation cell: a workload name, a complete
:class:`~repro.sim.config.SimConfig`, a committed-instruction budget and
the workload build seed. Simulations are deterministic functions of
exactly these four values, so their content hash is a sound cache key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import repro
from repro.sim.config import SimConfig
from repro.workloads import DEFAULT_SEED

#: Bump to invalidate every cached result manually; the package version
#: and a fingerprint of the simulator source participate in the key
#: too, so code changes invalidate stale results automatically.
CACHE_VERSION = 1


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash of every .py file in the ``repro`` package, so a
    simulator edit can never serve stale cached figures."""
    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass
class Job:
    """One deterministic simulation: ``workload`` on ``config`` for
    ``instructions`` committed instructions."""

    workload: str
    config: SimConfig
    instructions: int
    seed: int = DEFAULT_SEED

    def cache_key(self) -> str:
        """Stable content hash over everything the result depends on.
        Delegates the config part to ``SimConfig.cache_key`` so its
        exclusions (presentation-only fields) apply here too."""
        payload = {
            "version": (f"{repro.__version__}/{CACHE_VERSION}/"
                        f"{code_fingerprint()}"),
            "workload": self.workload,
            "seed": self.seed,
            "instructions": self.instructions,
            "config": self.config.cache_key(),
        }
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"), default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Human-readable cell name for progress lines and errors."""
        return f"{self.workload}/{self.config.label}@{self.instructions}"

    def to_dict(self) -> dict:
        return {"workload": self.workload, "seed": self.seed,
                "instructions": self.instructions,
                "config": self.config.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(workload=data["workload"],
                   config=SimConfig.from_dict(data["config"]),
                   instructions=data["instructions"],
                   seed=data.get("seed", DEFAULT_SEED))
