"""Machine-readable campaign status (one snapshot dict per cache dir).

``campaign status --json`` and the service ``/readyz`` handler both
need the same facts — result-cache size, artifact-store counters,
journal receipt outcomes, quarantined cells, the accumulated phase
profile — so they share this one builder instead of one of them
scraping the other's human-formatted table.  Everything in the
snapshot is JSON-serializable as returned.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.sim.campaign.journal import CampaignJournal
from repro.sim.campaign.store import ResultStore


def status_snapshot(cache_dir: Optional[os.PathLike] = None) -> dict:
    """Everything ``campaign status`` knows, as one plain dict.

    Keys: ``cache`` (path/entries/bytes), ``artifacts`` (path/blobs/
    bytes/hits/misses/kinds), ``journal`` (path/receipts/outcomes/
    quarantined details), and ``phases`` (the merged ``profile.json``
    contents, or ``None`` when no profile was ever recorded).
    """
    from repro.sim.artifacts import ArtifactStore
    from repro.sim.campaign.executor import profile_path

    store = ResultStore(cache_dir)
    journal = CampaignJournal(cache_dir)
    receipts = journal.receipts()
    quarantined = [receipt.to_dict() for receipt in receipts.values()
                   if receipt.outcome == "quarantined"]
    phases = None
    try:
        phases = json.loads(profile_path(cache_dir).read_text())
    except (OSError, ValueError):
        pass
    return {
        "cache": store.status(),
        "artifacts": ArtifactStore(cache_dir).status(),
        "journal": {
            "path": str(journal.path),
            "receipts": len(receipts),
            "outcomes": journal.summary(),
            "quarantined": quarantined,
        },
        "phases": phases,
    }


__all__ = ["status_snapshot"]
