"""Persistent result store: job key -> serialized SimStats.

The store is a JSON-lines file (one ``{"key": ..., "stats": ...,
"meta": ...}`` record per line) under ``~/.cache/repro`` by default,
overridable with ``REPRO_CACHE_DIR`` or a ``--cache-dir`` flag. JSONL is
append-only — a crashed campaign loses at most its in-flight record —
and needs no schema migration; rewrites happen only on :meth:`compact`.

Records are loaded lazily on first access. Later records for the same
key win, so re-putting a key supersedes without rewriting the file.
Writes (append, compact, clear) take an exclusive ``flock`` on a
sidecar lock file so concurrent campaigns sharing one cache directory
cannot lose each other's results; compact re-reads the file under the
lock rather than trusting its in-memory snapshot.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Optional, Tuple

try:
    import fcntl
except ImportError:                       # non-Unix: best-effort, no lock
    fcntl = None

from repro.pipeline.stats import SimStats
from repro.sim import faults


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultStore:
    """Disk-backed map from job cache key to :class:`SimStats`."""

    #: Auto-compact when at least this many dead lines (superseded
    #: duplicates, torn writes) accumulate beyond the live records.
    _COMPACT_SLACK = 64

    def __init__(self, cache_dir: Optional[os.PathLike] = None) -> None:
        self.cache_dir = (Path(cache_dir).expanduser() if cache_dir
                          else default_cache_dir())
        self.path = self.cache_dir / "results.jsonl"
        self._records: Optional[Dict[str, dict]] = None

    # ------------------------------------------------------------------ #

    @contextmanager
    def _locked(self):
        """Exclusive inter-process lock for writes to the store."""
        if fcntl is None:
            yield
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        with (self.cache_dir / ".lock").open("w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def _parse_file(self) -> Tuple[Dict[str, dict], int]:
        """Parse the JSONL file: {key: record} plus raw line count."""
        records: Dict[str, dict] = {}
        lines = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    lines += 1
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue              # torn tail write: skip
                    records[record["key"]] = record
        return records, lines

    def _load(self) -> Dict[str, dict]:
        if self._records is None:
            self._records, lines = self._parse_file()
            dead = lines - len(self._records)
            if dead >= self._COMPACT_SLACK and dead > len(self._records):
                self.compact()
        return self._records

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    def get(self, key: str) -> Optional[SimStats]:
        record = self._load().get(key)
        if record is None:
            return None
        return SimStats.from_dict(record["stats"])

    def put(self, key: str, stats: SimStats,
            meta: Optional[dict] = None) -> None:
        """Append one record.  Raises ``OSError`` on disk faults —
        callers that must survive them (the campaign executor) degrade
        to in-memory operation; see the ``put`` fault point in
        :mod:`repro.sim.faults`."""
        faults.fire("put")
        record = {"key": key, "stats": stats.to_dict(),
                  "meta": meta or {}}
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        with self._locked():
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._load()[key] = record

    # ------------------------------------------------------------------ #

    def clear(self) -> int:
        """Delete every cached result; returns how many were dropped."""
        count = len(self)
        with self._locked():
            if self.path.exists():
                self.path.unlink()
        self._records = {}
        return count

    def compact(self) -> None:
        """Rewrite the file with one record per key. Runs automatically
        from :meth:`_load` once enough dead lines (superseded puts, torn
        writes) accumulate. Re-reads the file under the write lock so
        records appended by concurrent campaigns are preserved."""
        with self._locked():
            records, _ = self._parse_file()
            if not self.path.exists():
                return
            tmp = self.path.with_suffix(".jsonl.tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for record in records.values():
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
            tmp.replace(self.path)
        self._records = records

    def status(self) -> dict:
        """Summary for ``campaign status``: path, entries, bytes."""
        size = self.path.stat().st_size if self.path.exists() else 0
        return {"path": str(self.path), "entries": len(self),
                "bytes": size}
