"""Campaign executor: run jobs across a process pool, memoized on disk.

``run_jobs`` is the single entry point every harness routes through:

1. look each job up in the :class:`ResultStore` (cache hit = no sim);
2. shard the misses across ``workers`` processes (``REPRO_JOBS`` env,
   ``--jobs`` flag; 1 = serial in-process, which parallel runs must
   match bit-for-bit because every simulation is deterministic);
3. persist each fresh result before reporting it.

Workers transport statistics as ``SimStats.to_dict()`` payloads, the
same representation the store persists. A per-job timeout (SIGALRM in
the worker, so a wedged simulation cannot hang the campaign) marks the
job failed instead of killing the whole run.
"""

from __future__ import annotations

import json
import math
import os
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import multiprocessing

from repro.obs import PhaseProfile, profile_enabled
from repro.pipeline.stats import SimStats
from repro.sim.campaign.job import Job
from repro.sim.campaign.store import ResultStore


def default_workers() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def cache_enabled_by_default() -> bool:
    """The result cache is on unless ``REPRO_NO_CACHE`` is truthy
    (any value except the usual falsy spellings disables it)."""
    return os.environ.get("REPRO_NO_CACHE", "").lower() in (
        "", "0", "false", "no", "off")


class CampaignError(RuntimeError):
    """At least one job failed (or timed out)."""


class JobTimeout(Exception):
    """Raised inside a worker when the per-job SIGALRM fires."""


@dataclass
class CampaignReport:
    """Outcome of one ``run_jobs`` call."""

    results: Dict[str, SimStats] = field(default_factory=dict)
    hits: int = 0                      # cells served from the store
    simulated: int = 0                 # cells actually simulated
    failures: Dict[str, str] = field(default_factory=dict)
    # Checkpoint-store provenance, aggregated over the *fresh* cells
    # (result-cache hits never touched the simulator this run).
    checkpoint_hits: int = 0           # windows replayed from storage
    ff_executed: int = 0               # functional instructions run
    ff_skipped: int = 0                # functional instructions replayed
    #: Merged phase profile over the fresh cells (``repro.obs``), or
    #: None when profiling was off for this run.
    phase: Optional[PhaseProfile] = None

    def stats_for(self, job: Job) -> SimStats:
        key = job.cache_key()
        if key not in self.results:
            raise CampaignError(
                f"no result for {job.label}: "
                f"{self.failures.get(job.label, 'job was not run')}")
        return self.results[key]


def _alarm_usable() -> bool:
    """SIGALRM timeouts need a Unix main thread (always true in the
    pool's worker processes; best-effort on the serial in-process path)."""
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def _execute_job(job: Job, timeout: Optional[float],
                 cache_dir: Optional[os.PathLike] = None,
                 checkpoints: Optional[bool] = None,
                 profile: bool = False) -> Tuple[dict, Optional[dict]]:
    """Worker body: simulate one job, return
    ``(serialized statistics, serialized phase profile or None)``.

    Routed through :func:`repro.sim.runner.simulate` so configs with a
    recorded sampling schedule (``sample_mode != "full"``) run sampled
    in the worker — sampled cells shard across processes and cache
    exactly like full-detail ones (their cache keys differ because the
    sampling fields perturb ``SimConfig.cache_key``).

    ``checkpoints`` threads the campaign's checkpoint-store decision
    into the sampled engine: every worker opens the store rooted at the
    run's ``cache_dir`` (so the grid's cells share one functional
    execution), ``False`` forces the store-free oracle path.
    """
    from repro.sim.artifacts import ArtifactStore
    from repro.sim.runner import simulate
    from repro.workloads import get_program

    artifacts = ArtifactStore(cache_dir) if checkpoints else False
    prof = PhaseProfile() if profile else None
    t0 = time.monotonic() if profile else 0.0

    use_alarm = bool(timeout) and _alarm_usable()
    previous = None
    handler_swapped = False
    try:
        if use_alarm:
            armed = max(1, math.ceil(timeout))

            def _on_alarm(signum, frame):
                raise JobTimeout(f"{job.label} exceeded {armed}s")
            previous = signal.signal(signal.SIGALRM, _on_alarm)
            handler_swapped = True
            signal.alarm(armed)
        stats = simulate(get_program(job.workload, job.seed), job.config,
                         max_instructions=job.instructions,
                         artifacts=artifacts, profile=prof)
        if prof is not None:
            # Total wall clock per job; the parent derives queue-wait
            # (pool latency + result transport) from it.
            prof.add("job", time.monotonic() - t0)
            return stats.to_dict(), prof.to_dict()
        return stats.to_dict(), None
    finally:
        # Pool workers are reused across jobs: the alarm MUST be
        # cancelled on every exit (success, timeout or crash) or a fast
        # follow-up job would inherit the previous job's pending alarm
        # and be killed mid-flight.  Cancel strictly *before* restoring
        # the previous handler — the other order leaves a window where
        # a pending alarm fires into SIG_DFL and kills the worker.
        # (``handler_swapped`` is an explicit flag because ``previous``
        # is legitimately None when the prior handler was installed
        # from C.)
        if handler_swapped:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


def _worker(payload: Tuple[Job, Optional[float], Optional[os.PathLike],
                           bool, bool]) -> Tuple[str, dict, Optional[dict]]:
    job, timeout, cache_dir, checkpoints, profile = payload
    stats_dict, prof_dict = _execute_job(job, timeout, cache_dir,
                                         checkpoints, profile)
    return job.cache_key(), stats_dict, prof_dict


def run_jobs(jobs: Sequence[Job], *,
             workers: Optional[int] = None,
             use_cache: Optional[bool] = None,
             cache_dir: Optional[os.PathLike] = None,
             timeout: Optional[float] = None,
             progress: Optional[Callable[[str], None]] = None,
             raise_on_error: bool = True,
             checkpoints: Optional[bool] = None,
             profile: Optional[bool] = None) -> CampaignReport:
    """Run ``jobs``, sharded across processes, memoized on disk.

    ``workers=None`` reads ``REPRO_JOBS``; ``use_cache=None`` reads
    ``REPRO_NO_CACHE``; ``checkpoints=None`` reads
    ``REPRO_CHECKPOINTS`` (the sampled cells' checkpoint store, shared
    by all workers under ``cache_dir`` so an N-config grid pays
    functional execution once). Returns a :class:`CampaignReport`
    whose ``results`` maps every distinct job cache key to its
    statistics.

    ``profile=None`` reads ``REPRO_PROFILE``; when on, every fresh
    cell times its ff / warmup / detail / store phases
    (:mod:`repro.obs.profile`), the merged breakdown lands on
    ``report.phase`` and is folded into ``profile.json`` next to the
    result cache for ``campaign status --profile``.  Cached cells
    contribute nothing (they ran no simulator).
    """
    from repro.sim.artifacts import checkpoints_enabled
    workers = workers if workers is not None else default_workers()
    if use_cache is None:
        use_cache = cache_enabled_by_default()
    if checkpoints is None:
        checkpoints = checkpoints_enabled()
    if profile is None:
        profile = profile_enabled()
    store = ResultStore(cache_dir)
    report = CampaignReport()
    if profile:
        report.phase = PhaseProfile()

    pending: Dict[str, Job] = {}
    for job in jobs:
        key = job.cache_key()
        if key in report.results or key in pending:
            continue                       # duplicate cell in the grid
        cached = store.get(key) if use_cache else None
        if cached is not None:
            report.results[key] = cached
            report.hits += 1
        else:
            pending[key] = job

    total = len(pending)
    done = 0

    def _finish(key: str, stats_dict: dict,
                prof_dict: Optional[dict] = None) -> None:
        nonlocal done, progress
        job = pending[key]
        stats = SimStats.from_dict(stats_dict)
        report.results[key] = stats
        report.simulated += 1
        report.checkpoint_hits += stats.checkpoint_hits
        report.ff_executed += stats.ff_executed_instructions
        report.ff_skipped += stats.ff_skipped_instructions
        if report.phase is not None and prof_dict:
            report.phase.merge(prof_dict)
        if use_cache:
            store.put(key, stats, meta=job.to_dict())
        done += 1
        if progress is not None:
            try:
                progress(f"[{done}/{total}] {job.label}")
            except BrokenPipeError:
                # The listener hung up (e.g. stderr piped into a pager
                # that exited); a dead progress feed must not be
                # recorded as a job failure.
                progress = None

    if workers <= 1:
        for key, job in pending.items():
            try:
                stats_dict, prof_dict = _execute_job(
                    job, timeout, cache_dir, checkpoints, profile)
                _finish(key, stats_dict, prof_dict)
            except Exception as exc:            # noqa: BLE001
                report.failures[job.label] = repr(exc)
                done += 1
    elif pending:
        # On Linux, fork shares the parent's warm program cache with the
        # workers. Elsewhere use the platform default (spawn): macOS
        # lists fork as available but fork-without-exec is unsafe there.
        context = (multiprocessing.get_context("fork")
                   if sys.platform == "linux"
                   else multiprocessing.get_context())
        submitted = time.monotonic()
        with ProcessPoolExecutor(max_workers=min(workers, total),
                                 mp_context=context) as pool:
            futures = {pool.submit(
                _worker, (job, timeout, cache_dir, checkpoints,
                          profile)): key
                       for key, job in pending.items()}
            for future in as_completed(futures):
                key = futures[future]
                try:
                    result_key, stats_dict, prof_dict = future.result()
                    _finish(result_key, stats_dict, prof_dict)
                except Exception as exc:        # noqa: BLE001
                    report.failures[pending[key].label] = repr(exc)
                    done += 1
        if report.phase is not None:
            # Queue-wait: worker-slot seconds the pool did NOT spend
            # inside job bodies — fork/submit latency, result pickling
            # and load imbalance.  (Per-job idle is not observable from
            # the parent while jobs overlap, so account it in bulk.)
            wall = time.monotonic() - submitted
            busy = report.phase.seconds.get("job", 0.0)
            idle = wall * min(workers, total) - busy
            if idle > 0:
                report.phase.add("queue-wait", idle,
                                 count=len(futures))

    if report.phase is not None and report.phase.seconds:
        _persist_profile(store, report.phase)
    if report.failures and raise_on_error:
        detail = "; ".join(f"{label}: {err}"
                           for label, err in report.failures.items())
        raise CampaignError(f"{len(report.failures)} job(s) failed: "
                            f"{detail}")
    return report


def profile_path(cache_dir: Optional[os.PathLike] = None):
    """Where a campaign's merged phase profile lives (next to the
    result cache, so ``campaign clear`` semantics stay obvious)."""
    return ResultStore(cache_dir).cache_dir / "profile.json"


def _persist_profile(store: ResultStore, phase: PhaseProfile) -> None:
    """Fold this run's merged profile into the store's sidecar
    ``profile.json`` (best effort — profiling must never fail a run)."""
    path = store.cache_dir / "profile.json"
    merged = PhaseProfile()
    try:
        with path.open("r", encoding="utf-8") as fh:
            merged.merge(json.load(fh))
    except (OSError, ValueError):
        pass
    merged.merge(phase)
    try:
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(merged.to_dict(), fh, indent=1, sort_keys=True)
        tmp.replace(path)
    except OSError:
        pass


def run_job(job: Job, **kwargs) -> SimStats:
    """Convenience wrapper: run a single job through the campaign path."""
    return run_jobs([job], **kwargs).stats_for(job)


__all__ = ["CampaignError", "CampaignReport", "JobTimeout",
           "cache_enabled_by_default", "default_workers",
           "profile_path", "run_job", "run_jobs"]
