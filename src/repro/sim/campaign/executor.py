"""Campaign executor: supervised pool, retry/quarantine, memoized on disk.

``run_jobs`` is the single entry point every harness routes through:

1. look each job up in the :class:`ResultStore` (cache hit = no sim);
2. shard the misses across ``workers`` processes (``REPRO_JOBS`` env,
   ``--jobs`` flag; 1 = serial in-process, which parallel runs must
   match bit-for-bit because every simulation is deterministic);
3. persist each fresh result before reporting it.

Fault tolerance (the resilience substrate the queue/worker service
will sit on):

* **Supervised pool** — a killed worker (SIGKILL, SIGSEGV, OOM) breaks
  the whole :class:`ProcessPoolExecutor`; instead of failing every
  in-flight future with one opaque ``BrokenProcessPool``, the executor
  respawns the pool and re-dispatches exactly the jobs whose results
  were lost.
* **Retry + quarantine** — transient failures (``JobTimeout``, lost
  workers, ``OSError``) are retried up to ``retries`` times
  (``REPRO_RETRIES`` / ``--retries``) with deterministic exponential
  backoff; permanent failures (a simulator assertion) and jobs that
  exhaust the budget are *quarantined*: the grid keeps going and the
  job ends in a typed :class:`~repro.sim.campaign.journal.JobReceipt`
  (outcome, attempts, error classes, tracebacks, wall time) on
  ``CampaignReport.receipts`` and in the campaign journal.
* **Resume + graceful drain** — every receipt is journalled next to
  the result store; SIGINT/SIGTERM stop dispatching, let in-flight
  jobs finish, journal what is missing and return a partial report
  (``report.interrupted``), so ``campaign run --resume`` picks up
  exactly the missing cells.
* **Best-effort persistence** — a ``ResultStore.put`` that fails
  (ENOSPC, EROFS) degrades to a logged warning and in-memory
  operation; a campaign whose simulations succeeded never crashes on
  the way to disk.

Deterministic fault injection for all of the above lives in
:mod:`repro.sim.faults` (``REPRO_FAULT_INJECT``); the executor arms
the plan for the duration of the run and consumes job faults at
dispatch time, so a given plan always hits the same cells.

Workers transport statistics as ``SimStats.to_dict()`` payloads, the
same representation the store persists. A per-job timeout (SIGALRM in
the worker, so a wedged simulation cannot hang the campaign) marks the
job failed instead of killing the whole run.
"""

from __future__ import annotations

import errno
import json
import math
import os
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.defaults import env_float, env_int
from repro.obs import PhaseProfile, log, profile_enabled
from repro.pipeline.stats import SimStats
from repro.sim import faults
from repro.sim.campaign.job import Job
from repro.sim.campaign.journal import CampaignJournal, JobReceipt
from repro.sim.campaign.store import ResultStore


def default_workers() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_retries() -> int:
    """Transient-failure retries per job (``REPRO_RETRIES``, default 1
    — one free retry covers the overwhelmingly common lost-worker /
    flaky-disk case without masking persistent breakage)."""
    return max(0, env_int("REPRO_RETRIES", 1))


def default_backoff() -> float:
    """Base seconds of the deterministic exponential retry backoff
    (``REPRO_RETRY_BACKOFF``, default 0.1; attempt ``k`` waits
    ``base * 2**(k-1)`` capped at 5s)."""
    return max(0.0, env_float("REPRO_RETRY_BACKOFF", 0.1))


def _backoff_seconds(attempt: int, base: float) -> float:
    """Deterministic (no jitter: replayability beats thundering-herd
    concerns inside one process) exponential backoff, capped at 5s."""
    if base <= 0.0 or attempt <= 0:
        return 0.0
    return min(5.0, base * (2.0 ** (attempt - 1)))


def cache_enabled_by_default() -> bool:
    """The result cache is on unless ``REPRO_NO_CACHE`` is truthy
    (any value except the usual falsy spellings disables it)."""
    return os.environ.get("REPRO_NO_CACHE", "").lower() in (
        "", "0", "false", "no", "off")


class CampaignError(RuntimeError):
    """At least one job failed (or timed out)."""


class CampaignInterrupted(CampaignError):
    """A SIGINT/SIGTERM drained the campaign before it completed.

    Raised by harnesses that need a *complete* grid
    (:func:`repro.sim.experiments.run_grid`) when the underlying
    ``run_jobs`` returned a partial report; carries the signal name so
    the CLI can exit with the conventional ``128 + signum`` status."""

    def __init__(self, signal_name: str, message: str) -> None:
        super().__init__(message)
        self.signal_name = signal_name


class JobTimeout(Exception):
    """Raised inside a worker when the per-job SIGALRM fires."""


class WorkerLost(Exception):
    """A worker process died (SIGKILL/SIGSEGV/OOM) with this job in
    flight — always transient: the job itself may be innocent."""


#: Exception classes the retry policy treats as transient.  Everything
#: else (simulator assertions, config ``ValueError``\ s) is permanent:
#: deterministic simulations fail deterministically, so re-running a
#: permanent failure can only burn time — quarantine immediately.
TRANSIENT_ERRORS = (JobTimeout, WorkerLost, OSError, BrokenProcessPool)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` (worth retrying) or ``"permanent"``."""
    return ("transient" if isinstance(exc, TRANSIENT_ERRORS)
            else "permanent")


def _format_error(exc: BaseException) -> str:
    """One receipt line per failed attempt: class, message, and the
    tail of the remote traceback when the pool shipped one."""
    text = f"{type(exc).__name__}: {exc}"
    cause = getattr(exc, "__cause__", None)
    remote = getattr(cause, "tb", None) if cause is not None else None
    if isinstance(remote, str) and remote:
        tail = [line for line in remote.strip().splitlines()
                if line.strip()][-3:]
        text += " | " + " / ".join(line.strip() for line in tail)
    return text


@dataclass
class CampaignReport:
    """Outcome of one ``run_jobs`` call."""

    results: Dict[str, SimStats] = field(default_factory=dict)
    hits: int = 0                      # cells served from the store
    simulated: int = 0                 # cells actually simulated
    failures: Dict[str, str] = field(default_factory=dict)
    #: Typed per-job receipts (cache key -> JobReceipt) for every job
    #: that ran this campaign (hits never ran, so carry no receipt).
    receipts: Dict[str, JobReceipt] = field(default_factory=dict)
    retried_attempts: int = 0          # attempts beyond each job's first
    quarantined: int = 0               # jobs that ended quarantined
    store_errors: int = 0              # best-effort persistence failures
    #: Signal name (``"SIGINT"``/``"SIGTERM"``) when the run drained
    #: early instead of completing; None on a full run.
    interrupted: Optional[str] = None
    # Checkpoint-store provenance, aggregated over the *fresh* cells
    # (result-cache hits never touched the simulator this run).
    checkpoint_hits: int = 0           # windows replayed from storage
    ff_executed: int = 0               # functional instructions run
    ff_skipped: int = 0                # functional instructions replayed
    #: Merged phase profile over the fresh cells (``repro.obs``), or
    #: None when profiling was off for this run.
    phase: Optional[PhaseProfile] = None

    def stats_for(self, job: Job) -> SimStats:
        key = job.cache_key()
        if key not in self.results:
            raise CampaignError(
                f"no result for {job.label}: "
                f"{self.failures.get(job.label, 'job was not run')}")
        return self.results[key]


def _alarm_usable() -> bool:
    """SIGALRM timeouts need a Unix main thread (always true in the
    pool's worker processes; best-effort on the serial in-process path)."""
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def _apply_injected_fault(inject: Optional[str], label: str) -> None:
    """Execute a job fault the parent attached at dispatch time
    (:mod:`repro.sim.faults`); runs at the top of the job body."""
    if inject is None:
        return
    if inject == "worker-kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if inject == "timeout":
        raise JobTimeout(f"{label}: injected job timeout")
    if inject == "oserror":
        raise OSError(errno.EIO, f"injected I/O fault in {label}")
    if inject == "assert":
        raise AssertionError(f"injected simulator assertion in {label}")
    raise ValueError(f"unknown injected fault {inject!r}")


def _execute_job(job: Job, timeout: Optional[float],
                 cache_dir: Optional[os.PathLike] = None,
                 checkpoints: Optional[bool] = None,
                 profile: bool = False,
                 inject: Optional[str] = None) -> Tuple[dict, Optional[dict]]:
    """Worker body: simulate one job, return
    ``(serialized statistics, serialized phase profile or None)``.

    Routed through :func:`repro.sim.runner.simulate` so configs with a
    recorded sampling schedule (``sample_mode != "full"``) run sampled
    in the worker — sampled cells shard across processes and cache
    exactly like full-detail ones (their cache keys differ because the
    sampling fields perturb ``SimConfig.cache_key``).

    ``checkpoints`` threads the campaign's checkpoint-store decision
    into the sampled engine: every worker opens the store rooted at the
    run's ``cache_dir`` (so the grid's cells share one functional
    execution), ``False`` forces the store-free oracle path.
    """
    from repro.sim.artifacts import ArtifactStore
    from repro.sim.runner import simulate
    from repro.workloads import get_program

    artifacts = ArtifactStore(cache_dir) if checkpoints else False
    prof = PhaseProfile() if profile else None
    t0 = time.monotonic() if profile else 0.0

    use_alarm = bool(timeout) and _alarm_usable()
    if timeout and not use_alarm:
        # Satellite fix: silently running without the watchdog made a
        # hung job undiagnosable — say so once per job instead.
        log(f"repro: per-job timeout disabled for {job.label}: SIGALRM "
            f"needs a Unix main thread (a wedged simulation will hang "
            f"this campaign)", "warn")
    previous = None
    handler_swapped = False
    try:
        if use_alarm:
            armed = max(1, math.ceil(timeout))

            def _on_alarm(signum, frame):
                raise JobTimeout(f"{job.label} exceeded {armed}s")
            previous = signal.signal(signal.SIGALRM, _on_alarm)
            handler_swapped = True
            signal.alarm(armed)
        _apply_injected_fault(inject, job.label)
        stats = simulate(get_program(job.workload, job.seed), job.config,
                         max_instructions=job.instructions,
                         artifacts=artifacts, profile=prof)
        if prof is not None:
            # Total wall clock per job; the parent derives queue-wait
            # (pool latency + result transport) from it.
            prof.add("job", time.monotonic() - t0)
            return stats.to_dict(), prof.to_dict()
        return stats.to_dict(), None
    finally:
        # Pool workers are reused across jobs: the alarm MUST be
        # cancelled on every exit (success, timeout or crash) or a fast
        # follow-up job would inherit the previous job's pending alarm
        # and be killed mid-flight.  Cancel strictly *before* restoring
        # the previous handler — the other order leaves a window where
        # a pending alarm fires into SIG_DFL and kills the worker.
        # (``handler_swapped`` is an explicit flag because ``previous``
        # is legitimately None when the prior handler was installed
        # from C.)
        if handler_swapped:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


def _worker_init() -> None:
    """Pool-worker startup: shed state a forked worker must not keep.

    * The parent's armed fault registry — all fault decisions are made
      parent-side (deterministic dispatch counting); the job fault
      rides in the payload's ``inject`` field.
    * The parent's drain-guard signal handlers — a worker that swallows
      the SIGTERM the pool uses to terminate it would hang shutdown,
      and Ctrl-C (SIGINT goes to the whole foreground process group)
      must drain via the parent, not kill workers mid-job.
    """
    faults._PLAN = None
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        if hasattr(signal, "SIGTERM"):
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass


def _worker(payload: Tuple[Job, Optional[float], Optional[os.PathLike],
                           bool, bool, Optional[str]]
            ) -> Tuple[str, dict, Optional[dict]]:
    job, timeout, cache_dir, checkpoints, profile, inject = payload
    faults._PLAN = None            # belt-and-suspenders vs fork timing
    stats_dict, prof_dict = _execute_job(job, timeout, cache_dir,
                                         checkpoints, profile, inject)
    return job.cache_key(), stats_dict, prof_dict


@dataclass
class _JobState:
    """Executor-side bookkeeping for one pending job's attempts."""

    attempts: int = 0
    errors: List[str] = field(default_factory=list)
    error_class: Optional[str] = None
    started: float = 0.0
    wall: float = 0.0


class _DrainGuard:
    """SIGINT/SIGTERM -> graceful drain: stop dispatching, finish (or
    cancel unstarted) in-flight work, journal the gap.  Installed only
    on the main thread (signal handlers are illegal elsewhere); a
    second signal restores default handling so a wedged drain can
    still be killed."""

    _SIGNALS = ("SIGINT", "SIGTERM")

    def __init__(self) -> None:
        self.triggered: Optional[str] = None
        self._previous: Dict[int, object] = {}

    def __enter__(self) -> "_DrainGuard":
        if threading.current_thread() is not threading.main_thread():
            return self
        for name in self._SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                self._previous[signum] = signal.signal(
                    signum, self._handle)
            except (ValueError, OSError):
                pass
        return self

    def _handle(self, signum, frame) -> None:
        self.triggered = signal.Signals(signum).name
        log(f"repro: {self.triggered} received: draining in-flight "
            f"jobs (again to abort immediately); resume with "
            f"`campaign run --resume`", "warn")
        try:                    # second signal = give up gracefully
            signal.signal(signum, self._previous.get(
                signum, signal.SIG_DFL))
        except (ValueError, OSError):
            pass

    def __exit__(self, *exc) -> bool:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        return False


def run_jobs(jobs: Sequence[Job], *,
             workers: Optional[int] = None,
             use_cache: Optional[bool] = None,
             cache_dir: Optional[os.PathLike] = None,
             timeout: Optional[float] = None,
             progress: Optional[Callable[[str], None]] = None,
             raise_on_error: bool = True,
             checkpoints: Optional[bool] = None,
             profile: Optional[bool] = None,
             retries: Optional[int] = None,
             resume: bool = False,
             fault_plan: Optional[faults.FaultPlan] = None
             ) -> CampaignReport:
    """Run ``jobs``, sharded across processes, memoized on disk.

    ``workers=None`` reads ``REPRO_JOBS``; ``use_cache=None`` reads
    ``REPRO_NO_CACHE``; ``checkpoints=None`` reads
    ``REPRO_CHECKPOINTS`` (the sampled cells' checkpoint store, shared
    by all workers under ``cache_dir`` so an N-config grid pays
    functional execution once). Returns a :class:`CampaignReport`
    whose ``results`` maps every distinct job cache key to its
    statistics.

    ``retries=None`` reads ``REPRO_RETRIES`` (default 1): transient
    failures — ``JobTimeout``, a lost worker, ``OSError`` — are
    re-dispatched with deterministic backoff up to that many times,
    then quarantined; permanent failures quarantine immediately.
    Every executed job ends in a :class:`JobReceipt` on
    ``report.receipts`` and (when the cache is on) in the campaign
    journal next to the result store.

    ``resume=True`` marks this run as picking up an interrupted
    campaign (requires the cache: completed cells are recognised by
    their stored results) — purely additive: it logs and journals how
    much of the grid is already done before simulating the rest.

    ``fault_plan`` overrides the ``REPRO_FAULT_INJECT`` environment
    plan (:mod:`repro.sim.faults`); pass a plan directly in tests.

    ``profile=None`` reads ``REPRO_PROFILE``; when on, every fresh
    cell times its ff / warmup / detail / store phases
    (:mod:`repro.obs.profile`), the merged breakdown lands on
    ``report.phase`` and is folded into ``profile.json`` next to the
    result cache for ``campaign status --profile``.  Cached cells
    contribute nothing (they ran no simulator).
    """
    from repro.sim.artifacts import checkpoints_enabled
    workers = workers if workers is not None else default_workers()
    if use_cache is None:
        use_cache = cache_enabled_by_default()
    if checkpoints is None:
        checkpoints = checkpoints_enabled()
    if profile is None:
        profile = profile_enabled()
    if retries is None:
        retries = default_retries()
    backoff_base = default_backoff()
    plan = (fault_plan if fault_plan is not None
            else faults.FaultPlan.from_env())
    store = ResultStore(cache_dir)
    journal = CampaignJournal(store.cache_dir) if use_cache else None
    report = CampaignReport()
    if profile:
        report.phase = PhaseProfile()

    pending: Dict[str, Job] = {}
    for job in jobs:
        key = job.cache_key()
        if key in report.results or key in pending:
            continue                       # duplicate cell in the grid
        cached = store.get(key) if use_cache else None
        if cached is not None:
            report.results[key] = cached
            report.hits += 1
        else:
            pending[key] = job

    total = len(pending)
    done = 0
    states: Dict[str, _JobState] = {key: _JobState() for key in pending}
    dispatches = 0                        # fault-plan dispatch ordinal

    if journal is not None and (pending or resume):
        journal.begin(total=len(report.results) + total,
                      pending=total, resume=resume)
    if resume:
        log(f"repro: resume: {report.hits} cell(s) already complete, "
            f"{total} missing")

    def _emit(line: str) -> None:
        nonlocal progress
        if progress is None:
            return
        try:
            progress(line)
        except BrokenPipeError:
            # The listener hung up (e.g. stderr piped into a pager
            # that exited); a dead progress feed must not be
            # recorded as a job failure.
            progress = None

    def _record_receipt(key: str, outcome: str) -> JobReceipt:
        job, state = pending[key], states[key]
        receipt = JobReceipt(
            key=key, label=job.label, outcome=outcome,
            attempts=state.attempts, error_class=state.error_class,
            errors=list(state.errors), wall_seconds=state.wall)
        report.receipts[key] = receipt
        report.retried_attempts += max(0, state.attempts - 1)
        if journal is not None:
            journal.record(receipt)
        return receipt

    def _finish(key: str, stats_dict: dict,
                prof_dict: Optional[dict] = None) -> None:
        nonlocal done
        job, state = pending[key], states[key]
        stats = SimStats.from_dict(stats_dict)
        report.results[key] = stats
        report.simulated += 1
        report.checkpoint_hits += stats.checkpoint_hits
        report.ff_executed += stats.ff_executed_instructions
        report.ff_skipped += stats.ff_skipped_instructions
        if report.phase is not None and prof_dict:
            report.phase.merge(prof_dict)
        if use_cache:
            try:
                store.put(key, stats, meta=job.to_dict())
            except OSError as exc:
                # Satellite fix: a full disk after a successful
                # simulation must not abort the campaign — the result
                # lives on in memory; only persistence is lost.
                report.store_errors += 1
                log(f"repro: result store write failed for "
                    f"{job.label} ({exc}); keeping the result "
                    f"in memory only", "warn")
        _record_receipt(key, "retried" if state.attempts > 1 else "ok")
        done += 1
        _emit(f"[{done}/{total}] {job.label}"
              + (f" (attempt {state.attempts})"
                 if state.attempts > 1 else ""))

    def _quarantine(key: str) -> None:
        nonlocal done
        job, state = pending[key], states[key]
        report.failures[job.label] = state.errors[-1] if state.errors \
            else "unknown failure"
        report.quarantined += 1
        _record_receipt(key, "quarantined")
        done += 1
        log(f"repro: quarantined {job.label} after {state.attempts} "
            f"attempt(s): {state.errors[-1] if state.errors else '?'}",
            "warn")
        _emit(f"[{done}/{total}] {job.label} quarantined "
              f"({state.error_class})")

    def _attempt_failed(key: str, exc: BaseException) -> bool:
        """Record a failed attempt; True if the job should be retried."""
        state = states[key]
        state.errors.append(_format_error(exc))
        state.error_class = type(exc).__name__
        if classify_error(exc) == "transient" \
                and state.attempts <= retries:
            log(f"repro: retrying {pending[key].label} "
                f"(attempt {state.attempts} failed: "
                f"{type(exc).__name__}: {exc})", "debug")
            return True
        _quarantine(key)
        return False

    runnable = deque(pending.items())

    with faults.active(plan), _DrainGuard() as drain:
        if workers <= 1:
            while runnable and not drain.triggered:
                key, job = runnable.popleft()
                state = states[key]
                if state.attempts > 0:
                    time.sleep(_backoff_seconds(state.attempts,
                                                backoff_base))
                dispatches += 1
                state.attempts += 1
                inject = plan.job_fault(dispatches) if plan else None
                t0 = time.monotonic()
                try:
                    if inject == "worker-kill":
                        # Serial has no worker to kill: degrade to the
                        # same transient classification a pool break
                        # gets, so serial plans stay meaningful.
                        raise WorkerLost(
                            f"injected worker-kill for {job.label}")
                    stats_dict, prof_dict = _execute_job(
                        job, timeout, cache_dir, checkpoints, profile,
                        inject)
                except Exception as exc:        # noqa: BLE001
                    state.wall += time.monotonic() - t0
                    if _attempt_failed(key, exc):
                        runnable.append((key, job))
                else:
                    state.wall += time.monotonic() - t0
                    _finish(key, stats_dict, prof_dict)
        elif pending:
            # On Linux, fork shares the parent's warm program cache with
            # the workers. Elsewhere use the platform default (spawn):
            # macOS lists fork as available but fork-without-exec is
            # unsafe there.
            context = (multiprocessing.get_context("fork")
                       if sys.platform == "linux"
                       else multiprocessing.get_context())
            submitted = time.monotonic()
            pool: Optional[ProcessPoolExecutor] = None
            inflight: Dict[object, str] = {}
            respawns = 0
            # Safety valve: enough respawns for every job to exhaust
            # its own retry budget, then stop fighting the machine.
            max_respawns = (retries + 1) * max(1, total)

            def _consume(future, key: str) -> bool:
                """Process one settled future; True if the pool broke."""
                state = states[key]
                if future.cancelled():
                    # Drain cancelled it before it started: the
                    # dispatch never ran, so it was not an attempt.
                    state.attempts -= 1
                    return False
                state.wall += time.monotonic() - state.started
                try:
                    rkey, stats_dict, prof_dict = future.result()
                except BrokenProcessPool:
                    if _attempt_failed(key, WorkerLost(
                            f"worker died with {pending[key].label} "
                            f"in flight")):
                        runnable.append((key, pending[key]))
                    return True
                except Exception as exc:        # noqa: BLE001
                    if _attempt_failed(key, exc):
                        runnable.append((key, pending[key]))
                    return False
                _finish(rkey, stats_dict, prof_dict)
                return False

            try:
                while (runnable or inflight) and not drain.triggered:
                    if pool is None:
                        pool = ProcessPoolExecutor(
                            max_workers=min(workers, total),
                            mp_context=context,
                            initializer=_worker_init)
                    broken = False
                    while runnable and not drain.triggered:
                        key, job = runnable.popleft()
                        state = states[key]
                        if state.attempts > 0:
                            time.sleep(_backoff_seconds(
                                state.attempts, backoff_base))
                        dispatches += 1
                        state.attempts += 1
                        inject = plan.job_fault(dispatches) if plan \
                            else None
                        state.started = time.monotonic()
                        try:
                            future = pool.submit(
                                _worker, (job, timeout, cache_dir,
                                          checkpoints, profile, inject))
                        except BrokenProcessPool as exc:
                            # The pool died while we were dispatching.
                            if _attempt_failed(key, WorkerLost(
                                    f"pool broke dispatching "
                                    f"{job.label}: {exc}")):
                                runnable.append((key, job))
                            broken = True
                            break
                        inflight[future] = key
                    if not broken and inflight:
                        settled, _ = wait(set(inflight), timeout=0.5,
                                          return_when=FIRST_COMPLETED)
                        for future in settled:
                            broken |= _consume(
                                future, inflight.pop(future))
                    if broken:
                        # Every other in-flight future fails with the
                        # same BrokenProcessPool; settle them all and
                        # salvage any result that beat the crash.
                        if inflight:
                            wait(set(inflight))
                            for future in list(inflight):
                                _consume(future, inflight.pop(future))
                        pool.shutdown(wait=False)
                        pool = None
                        respawns += 1
                        if respawns > max_respawns:
                            log(f"repro: worker pool broke "
                                f"{respawns} times; quarantining the "
                                f"{len(runnable)} remaining job(s)",
                                "error")
                            while runnable:
                                key, _job = runnable.popleft()
                                states[key].errors.append(
                                    "WorkerLost: pool respawn budget "
                                    "exhausted")
                                states[key].error_class = "WorkerLost"
                                _quarantine(key)
                            break
                        log(f"repro: worker pool broke (killed "
                            f"worker?); respawning "
                            f"(respawn {respawns}/{max_respawns}) and "
                            f"re-dispatching {len(runnable)} lost "
                            f"job(s)", "warn")
                        time.sleep(_backoff_seconds(respawns,
                                                    backoff_base))
                if drain.triggered and inflight:
                    # Graceful drain: cancel what never started, wait
                    # for the rest to finish, keep their results.
                    for future in inflight:
                        future.cancel()
                    wait(set(inflight))
                    for future in list(inflight):
                        _consume(future, inflight.pop(future))
            finally:
                if pool is not None:
                    pool.shutdown(wait=True)
            if report.phase is not None:
                # Queue-wait: worker-slot seconds the pool did NOT
                # spend inside job bodies — fork/submit latency, result
                # pickling and load imbalance.  (Per-job idle is not
                # observable from the parent while jobs overlap, so
                # account it in bulk.)
                wall = time.monotonic() - submitted
                busy = report.phase.seconds.get("job", 0.0)
                idle = wall * min(workers, total) - busy
                if idle > 0:
                    report.phase.add("queue-wait", idle,
                                     count=dispatches)

        if drain.triggered:
            report.interrupted = drain.triggered
            missing = [job.label for key, job in pending.items()
                       if key not in report.results
                       and key not in report.receipts]
            if journal is not None:
                journal.interrupted(drain.triggered, missing)
            log(f"repro: campaign drained on {drain.triggered}: "
                f"{done}/{total} pending cell(s) finished, "
                f"{len(missing)} missing (rerun with --resume)", "warn")

    if report.phase is not None and report.phase.seconds:
        _persist_profile(store, report.phase)
    if journal is not None and not drain.triggered \
            and not report.failures:
        # Successful completion: superseded begin/receipt pairs (from
        # retries, resumes and earlier campaigns in this cache dir) are
        # dead provenance — compact them away so journal.jsonl stops
        # growing unboundedly.  Interrupted or failing runs keep the
        # full history for post-mortems.
        dropped = journal.compact()
        if dropped:
            log(f"repro: compacted campaign journal "
                f"({dropped} superseded line(s) dropped)", "debug")
    if report.failures and raise_on_error:
        detail = "; ".join(f"{label}: {err}"
                           for label, err in report.failures.items())
        raise CampaignError(f"{len(report.failures)} job(s) failed: "
                            f"{detail}")
    return report


def profile_path(cache_dir: Optional[os.PathLike] = None):
    """Where a campaign's merged phase profile lives (next to the
    result cache, so ``campaign clear`` semantics stay obvious)."""
    return ResultStore(cache_dir).cache_dir / "profile.json"


def _persist_profile(store: ResultStore, phase: PhaseProfile) -> None:
    """Fold this run's merged profile into the store's sidecar
    ``profile.json`` (best effort — profiling must never fail a run)."""
    path = store.cache_dir / "profile.json"
    merged = PhaseProfile()
    try:
        with path.open("r", encoding="utf-8") as fh:
            merged.merge(json.load(fh))
    except (OSError, ValueError):
        pass
    merged.merge(phase)
    try:
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(merged.to_dict(), fh, indent=1, sort_keys=True)
        tmp.replace(path)
    except OSError:
        pass


def run_job(job: Job, **kwargs) -> SimStats:
    """Convenience wrapper: run a single job through the campaign path."""
    return run_jobs([job], **kwargs).stats_for(job)


__all__ = ["CampaignError", "CampaignInterrupted", "CampaignReport",
           "JobReceipt",
           "JobTimeout", "TRANSIENT_ERRORS", "WorkerLost",
           "cache_enabled_by_default", "classify_error",
           "default_backoff", "default_retries", "default_workers",
           "profile_path", "run_job", "run_jobs"]
