"""Campaign journal: typed per-job receipts, persisted next to the
:class:`~repro.sim.campaign.store.ResultStore`.

Every job execution the executor finishes — first-try success, success
after retries, or quarantine after exhausting the retry budget — ends
in a :class:`JobReceipt`, the authoritative provenance record for that
cell (outcome, attempts, error classes, tracebacks, wall time).  The
journal appends receipts as JSON lines to ``journal.jsonl`` in the
cache directory, so:

* ``campaign status`` can show what happened to a crashed or
  interrupted campaign after the fact (quarantined cells and their
  errors survive the process);
* ``campaign run --resume`` can report how much of an interrupted grid
  is already complete before executing exactly the missing cells.

All writes are best-effort: a journal that cannot be written (full or
read-only disk) degrades to a one-line warning — provenance must never
sink a campaign whose simulations are succeeding.  Reads tolerate torn
tail lines the same way the result store does.

The journal grows by one ``begin`` plus one receipt per executed cell
per run, across every retry and resume — unboundedly, for a cache
directory that hosts many campaigns.  :meth:`CampaignJournal.compact`
rewrites it down to the latest ``begin`` and the latest receipt per
job key (temp-file + atomic rename, the store idiom); the executor
calls it after every *successful* run, so superseded begin/receipt
pairs never outlive the campaign that superseded them.  Appends and
compaction both take the store's inter-process ``flock`` so two
campaigns sharing one cache directory cannot tear each other's
receipts or lose an append racing a compaction.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

try:
    import fcntl
except ImportError:                       # non-Unix: best-effort, no lock
    fcntl = None

from repro.obs import log
from repro.sim import faults

#: Receipt outcomes (the Snippet-3 contract: every job ends in exactly
#: one of these).
OUTCOMES = ("ok", "retried", "quarantined")


@dataclass
class JobReceipt:
    """Typed provenance record for one job's lifetime in a campaign."""

    key: str                              # job cache key
    label: str                            # human-readable cell name
    outcome: str                          # "ok" | "retried" | "quarantined"
    attempts: int = 1
    error_class: Optional[str] = None     # last error's class name
    errors: List[str] = field(default_factory=list)  # one per failed try
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {"key": self.key, "label": self.label,
                "outcome": self.outcome, "attempts": self.attempts,
                "error_class": self.error_class, "errors": self.errors,
                "wall_seconds": round(self.wall_seconds, 6)}

    @classmethod
    def from_dict(cls, data: dict) -> "JobReceipt":
        return cls(key=data["key"], label=data["label"],
                   outcome=data["outcome"],
                   attempts=data.get("attempts", 1),
                   error_class=data.get("error_class"),
                   errors=list(data.get("errors", [])),
                   wall_seconds=data.get("wall_seconds", 0.0))


class CampaignJournal:
    """Append-only JSONL event log for one cache directory's campaigns.

    Events: ``begin`` (grid size, pending count, resume flag),
    ``receipt`` (a :class:`JobReceipt`), ``interrupted`` (drain: the
    cells still missing when a SIGINT/SIGTERM stopped the run).
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None) -> None:
        from repro.sim.campaign.store import default_cache_dir
        self.cache_dir = (Path(cache_dir).expanduser() if cache_dir
                          else default_cache_dir())
        self.path = self.cache_dir / "journal.jsonl"
        self._degraded = False

    @contextmanager
    def _locked(self):
        """The store's exclusive inter-process lock (same ``.lock``
        sidecar, so journal and result-store writers in different
        processes serialize against each other too)."""
        if fcntl is None:
            yield
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        with (self.cache_dir / ".lock").open("w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    # ------------------------------------------------------------------ #
    # Writes (best-effort, never raise).
    # ------------------------------------------------------------------ #

    def _append(self, record: dict) -> None:
        if self._degraded:
            return
        try:
            faults.fire("journal")
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            with self._locked():
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError as exc:
            # Warn once, then stop trying: a full disk would otherwise
            # produce one warning per cell.
            self._degraded = True
            log(f"repro: campaign journal write failed ({exc}); "
                f"receipts for this run will not be persisted", "warn")

    def begin(self, total: int, pending: int, resume: bool) -> None:
        self._append({"event": "begin", "total": total,
                      "pending": pending, "resume": resume})

    def record(self, receipt: JobReceipt) -> None:
        self._append(dict(receipt.to_dict(), event="receipt"))

    def interrupted(self, signal_name: str,
                    missing_labels: List[str]) -> None:
        self._append({"event": "interrupted", "signal": signal_name,
                      "missing": missing_labels})

    # ------------------------------------------------------------------ #
    # Reads.
    # ------------------------------------------------------------------ #

    def _events(self) -> List[dict]:
        events: List[dict] = []
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue              # torn tail write: skip
        except OSError:
            pass
        return events

    def receipts(self) -> Dict[str, JobReceipt]:
        """Latest receipt per job key (later campaigns supersede)."""
        out: Dict[str, JobReceipt] = {}
        for event in self._events():
            if event.get("event") == "receipt":
                try:
                    receipt = JobReceipt.from_dict(event)
                except KeyError:
                    continue
                out[receipt.key] = receipt
        return out

    def summary(self) -> Dict[str, int]:
        """Receipt counts by outcome (for ``campaign status``)."""
        counts = {outcome: 0 for outcome in OUTCOMES}
        for receipt in self.receipts().values():
            if receipt.outcome in counts:
                counts[receipt.outcome] += 1
        return counts

    def compact(self) -> int:
        """Rewrite the journal down to the latest ``begin`` event plus
        the latest receipt per job key; returns how many superseded
        lines were dropped (0 = nothing to do, file untouched).

        Best-effort like every other journal write, and safe against
        concurrent campaigns: the file is re-read under the store lock
        and replaced with a temp-file + atomic rename, so a reader
        never sees a half-written journal (torn-tail tolerance covers
        a crash mid-append; rename covers a crash mid-compaction).
        """
        try:
            with self._locked():
                events = self._events()
                last_begin: Optional[dict] = None
                receipts: Dict[str, dict] = {}
                for event in events:
                    kind = event.get("event")
                    if kind == "begin":
                        last_begin = event
                    elif kind == "receipt" and "key" in event:
                        receipts[event["key"]] = event
                live = ([last_begin] if last_begin else []) \
                    + list(receipts.values())
                raw_lines = sum(
                    1 for line in self.path.read_text(
                        encoding="utf-8").splitlines() if line.strip()) \
                    if self.path.exists() else 0
                dropped = raw_lines - len(live)
                if dropped <= 0:
                    return 0
                tmp = self.path.with_suffix(".jsonl.tmp")
                with tmp.open("w", encoding="utf-8") as fh:
                    for event in live:
                        fh.write(json.dumps(event, sort_keys=True) + "\n")
                tmp.replace(self.path)
                return dropped
        except OSError:
            return 0

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


__all__ = ["CampaignJournal", "JobReceipt", "OUTCOMES"]
