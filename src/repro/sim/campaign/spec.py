"""Declarative campaign specs: grids and sweeps as data.

A :class:`CampaignSpec` is the cross product of a benchmark list and a
machine-config list at one instruction budget — exactly the shape of
every figure harness. Sweeps compose by concatenating specs' jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.pipeline.stats import SimStats
from repro.sim.campaign.executor import CampaignReport
from repro.sim.campaign.job import Job
from repro.sim.config import SimConfig
from repro.workloads import DEFAULT_SEED


@dataclass
class CampaignSpec:
    """benchmarks x configs grid at a fixed instruction budget."""

    name: str
    benchmarks: Sequence[str]
    configs: Sequence[SimConfig]
    instructions: int
    seed: int = DEFAULT_SEED

    def jobs(self) -> List[Job]:
        """Row-major job list (benchmark outer, machine inner)."""
        return [Job(benchmark, config, self.instructions, self.seed)
                for benchmark in self.benchmarks
                for config in self.configs]

    def cell_key(self, benchmark: str, config: SimConfig) -> str:
        return Job(benchmark, config, self.instructions,
                   self.seed).cache_key()

    def grid(self, report: CampaignReport
             ) -> Dict[str, Dict[str, SimStats]]:
        """Reassemble a report into {benchmark: {machine label: stats}}.
        Raises :class:`CampaignError` naming any missing cell (a failed
        job under ``raise_on_error=False``) instead of a bare hash key."""
        out: Dict[str, Dict[str, SimStats]] = {}
        for benchmark in self.benchmarks:
            out[benchmark] = {
                config.label: report.stats_for(
                    Job(benchmark, config, self.instructions, self.seed))
                for config in self.configs}
        return out


__all__ = ["CampaignSpec"]
