"""Content-addressed artifact store: pay functional execution once.

Every cell of an N-config campaign grid re-runs the identical
*workload-side* functional work — fast-forward, BBV profiling, SimPoint
planning, checkpointing — differing only in the machine config it
feeds.  This module persists that work under ``REPRO_CACHE_DIR`` so a
grid pays it once:

* a :class:`FunctionalTrace` — the sampled engine's complete window
  schedule plus one compact architectural checkpoint per measurement
  window (PC, registers, and a *sparse memory delta* against the
  program image rather than a full dump — emulator memory only grows
  from ``dict(program.initial_memory)``, so additions-and-changes
  reconstruct it exactly);
* the warm microarchitectural state (pickled
  :class:`~repro.sim.sampling.warmup.WarmupEngine` per window) — the
  only config-*shaped* piece, stored in a separate blob keyed by the
  trace key x a *warm-profile* fingerprint (the config subset that
  shapes predictor/BTB/cache warm-up), so machines sharing a warm
  profile (the paper's whole grid) share one training pass;
* the simpoint BBV profile and :class:`SimpointPlan`.

Keys are **workload-side only**: program content hash x sampling
schedule x budget — the machine config is deliberately excluded, which
is sound because the timing cores commit exactly the emulator's stream
(the oracle contract), making the window schedule and checkpoints pure
functions of (program, schedule, budget).  A fingerprint of the
functional source (:func:`functional_fingerprint`, the PR-1
``code_fingerprint`` idiom narrowed to the workload-side modules)
travels in each blob's *header*, not its key, so a simulator edit
invalidates stale blobs with a warning and an eviction instead of
orphaning them.

Blobs are written temp-file-then-rename under the same ``flock``
discipline as the JSONL result store; a corrupt, truncated or stale
blob is evicted with a one-line warning and recomputed — never served.
``REPRO_CHECKPOINTS=off`` disables the store entirely, keeping the
no-store path available as the bit-exact oracle.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import log

try:
    import fcntl
except ImportError:                       # non-Unix: best-effort, no lock
    fcntl = None

#: Bump on incompatible blob-format changes (participates in every key).
SCHEMA = "repro-artifacts/1"

#: ``REPRO_CHECKPOINTS`` spellings that disable the store.
_OFF = ("0", "false", "no", "off")


def checkpoints_enabled() -> bool:
    """The artifact store is on unless ``REPRO_CHECKPOINTS`` is one of
    the usual falsy spellings (``off``/``0``/``false``/``no``)."""
    return os.environ.get("REPRO_CHECKPOINTS", "").lower() not in _OFF


# --------------------------------------------------------------------- #
# Fingerprints.
# --------------------------------------------------------------------- #

#: Workload-side source: the modules whose behaviour a functional trace,
#: warm state, BBV profile or simpoint plan depends on.  Timing-core
#: edits (pipeline/, cpr/, core/, baseline/) deliberately do NOT
#: invalidate artifacts — the whole point is that they are config-side.
_FUNCTIONAL_SOURCES = (
    "isa",
    "branch",
    "memory",
    "workloads",
    "sim/sampling",
    "defaults.py",
    "sim/artifacts.py",
)


@lru_cache(maxsize=1)
def functional_fingerprint() -> str:
    """Content hash of the workload-side simulator source (emulator,
    warm-up, profiling, workload generators): any edit there may change
    traces/profiles, so stored blobs carrying an older fingerprint are
    stale and get evicted on access."""
    import repro
    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for entry in _FUNCTIONAL_SOURCES:
        path = root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            digest.update(str(file.relative_to(root)).encode("utf-8"))
            digest.update(file.read_bytes())
    return digest.hexdigest()[:16]


def program_fingerprint(program) -> str:
    """Content hash of a program (instructions + initial memory +
    entry), cached on the instance; see
    :meth:`repro.isa.program.Program.content_fingerprint`."""
    return program.content_fingerprint()


#: Config fields that shape the warm-up engine's trained state (and
#: ride into the timing cores inside the pickled hierarchy): predictor
#: choice, cache geometry and latencies, the all-lines pre-warm switch,
#: and the confidence estimator's threshold.
_WARM_PROFILE_FIELDS = (
    "predictor", "predictor_kwargs", "icache_size", "icache_assoc",
    "dcache_size", "dcache_assoc", "l2_size", "l2_assoc", "line_bytes",
    "dcache_hit", "l2_hit", "memory_latency", "warm_caches",
    "confidence_threshold",
)


def warm_profile_fingerprint(config) -> str:
    """Hash of the config subset that shapes the functional warm-up
    state.  Machines differing only outside this subset (arch, widths,
    banks, registers...) share warm blobs — the paper's whole grid maps
    to a single warm profile."""
    payload = {name: getattr(config, name)
               for name in _WARM_PROFILE_FIELDS}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _key(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _params_payload(params) -> dict:
    return {"mode": params.mode, "ff": params.ff,
            "interval": params.interval, "period": params.period,
            "warmup": params.warmup,
            "detail_warmup": params.detail_warmup,
            "clusters": params.clusters, "bbv_dim": params.bbv_dim}


def trace_key(program, params, budget: int) -> str:
    """Key of the functional trace: program content x complete sampling
    schedule x budget.  No machine config."""
    return _key({"schema": SCHEMA, "kind": "trace",
                 "program": program_fingerprint(program),
                 "params": _params_payload(params), "budget": budget})


def warm_key(trace: str, profile: str) -> str:
    """Key of a trace's warm-state blob under one warm profile.  The
    profile is part of the *key* (distinct profiles must coexist), the
    functional fingerprint stays in the header (staleness)."""
    return _key({"schema": SCHEMA, "kind": "warm", "trace": trace,
                 "profile": profile})


def profile_key(program, budget: int, period: int, ff: int) -> str:
    """Key of a BBV profile: depends on less than the full schedule, so
    grids varying only window-side knobs still share it."""
    return _key({"schema": SCHEMA, "kind": "profile",
                 "program": program_fingerprint(program),
                 "budget": budget, "period": period, "ff": ff})


def plan_key(program, budget: int, period: int, ff: int,
             clusters: int, bbv_dim: int) -> str:
    return _key({"schema": SCHEMA, "kind": "plan",
                 "program": program_fingerprint(program),
                 "budget": budget, "period": period, "ff": ff,
                 "clusters": clusters, "bbv_dim": bbv_dim})


# --------------------------------------------------------------------- #
# Sparse memory deltas.
# --------------------------------------------------------------------- #

def memory_delta(initial: Dict, memory: Dict) -> Dict:
    """The sparse delta that rebuilds ``memory`` from ``initial``.

    Emulator memory starts as ``dict(program.initial_memory)`` and only
    ever gains or overwrites words, so additions-and-changes suffice.
    The comparison is *type-exact* (``1 == 1.0`` in Python, but an int
    and a float word are architecturally different values)."""
    delta = {}
    get = initial.get
    for addr, value in memory.items():
        base = get(addr)
        if base is None or base.__class__ is not value.__class__ \
                or base != value:
            delta[addr] = value
    return delta


def apply_delta(initial: Dict, delta: Dict) -> Dict:
    """Inverse of :func:`memory_delta` (delta applied in address order
    so the rebuilt dict is deterministic)."""
    memory = dict(initial)
    for addr in sorted(delta):
        memory[addr] = delta[addr]
    return memory


# --------------------------------------------------------------------- #
# Trace model.
# --------------------------------------------------------------------- #

@dataclass
class TraceWindow:
    """One measurement window of a functional trace: its schedule slot
    (position, represented span, measured/warm-up split) and the exact
    architectural checkpoint it starts from."""

    pos: int
    represents: int
    measure: int
    warmup_n: int
    pc: int
    regs: List
    mem_delta: Dict
    retired: int


@dataclass
class FunctionalTrace:
    """Everything workload-side the sampled engine computes for one
    (program, schedule, budget): the measured windows with their
    checkpoints, the functional-instruction total the stitcher charges
    to fast-forward, and whether the run degenerated to the full-detail
    fallback (program ended before any window)."""

    windows: List[TraceWindow] = field(default_factory=list)
    ff_instructions: int = 0
    fallback: bool = False


# --------------------------------------------------------------------- #
# The store.
# --------------------------------------------------------------------- #

class ArtifactStore:
    """Flock-guarded, content-addressed blob store under the campaign
    cache directory (``<cache_dir>/artifacts/``).

    Each blob is one file: a JSON header line (schema, kind, functional
    fingerprint, payload digest and size) followed by a pickled
    payload.  :meth:`get` validates all of it and evicts — with a
    one-line warning — anything corrupt, truncated or fingerprint-stale
    rather than serving it.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None) -> None:
        from repro.sim.campaign.store import default_cache_dir
        base = (Path(cache_dir).expanduser() if cache_dir
                else default_cache_dir())
        self.dir = base / "artifacts"
        #: Per-instance access counters (aggregated into ``usage.json``).
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #

    def _lock_path(self) -> Path:
        return self.dir / ".lock"

    def _locked(self):
        return _FileLock(self.dir, self._lock_path()) \
            if fcntl is not None else _NullLock(self.dir)

    def _blob_path(self, kind: str, key: str) -> Path:
        return self.dir / f"{kind}-{key}.blob"

    # ------------------------------------------------------------------ #

    def get(self, kind: str, key: str):
        """The stored payload, or None (miss / evicted).  Never raises
        on bad blobs: a corrupt, truncated or stale blob is evicted
        with a one-line warning and reported as a miss, so the caller
        recomputes instead of crashing or replaying poisoned state."""
        path = self._blob_path(kind, key)
        try:
            raw = path.read_bytes()
        except OSError:
            self._count(hit=False)
            return None
        payload = self._validate(path, raw, kind)
        if payload is None:
            self._count(hit=False)
            return None
        try:
            value = pickle.loads(payload)
        except Exception:                   # noqa: BLE001 — any unpickle
            self._evict(path, "undecodable payload")
            self._count(hit=False)
            return None
        self._count(hit=True)
        return value

    def _validate(self, path: Path, raw: bytes,
                  kind: str) -> Optional[bytes]:
        newline = raw.find(b"\n")
        if newline < 0:
            self._evict(path, "truncated header")
            return None
        try:
            header = json.loads(raw[:newline])
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._evict(path, "corrupt header")
            return None
        payload = raw[newline + 1:]
        if header.get("schema") != SCHEMA or header.get("kind") != kind:
            self._evict(path, "wrong schema")
            return None
        if header.get("fingerprint") != functional_fingerprint():
            self._evict(path, "stale functional fingerprint")
            return None
        if header.get("size") != len(payload) or \
                header.get("sha256") != \
                hashlib.sha256(payload).hexdigest():
            self._evict(path, "payload digest mismatch")
            return None
        return payload

    def _evict(self, path: Path, reason: str) -> None:
        log(f"repro: evicting artifact {path.name} ({reason}); "
            f"recomputing")
        with self._locked():
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, kind: str, key: str, value) -> None:
        """Persist ``value`` (atomic temp-file + rename under the
        flock, like the JSONL result store).  Publishing the same key
        twice is idempotent — identical inputs produce identical
        content, so concurrent cold workers cannot corrupt each
        other.

        Best-effort: a disk fault (ENOSPC, EROFS) degrades to a
        one-line warning and in-memory operation — the store is an
        amortization, so losing a blob must never fail the simulation
        that just produced it.  The ``artifact-put`` fault point
        (:mod:`repro.sim.faults`) exercises this path."""
        try:
            from repro.sim import faults
            faults.fire("artifact-put")
            payload = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
            header = json.dumps(
                {"schema": SCHEMA, "kind": kind, "key": key,
                 "fingerprint": functional_fingerprint(),
                 "sha256": hashlib.sha256(payload).hexdigest(),
                 "size": len(payload)},
                sort_keys=True, separators=(",", ":"))
            path = self._blob_path(kind, key)
            with self._locked():
                tmp = path.with_suffix(f".tmp.{os.getpid()}")
                with tmp.open("wb") as fh:
                    fh.write(header.encode("utf-8"))
                    fh.write(b"\n")
                    fh.write(payload)
                tmp.replace(path)
        except OSError as exc:
            log(f"repro: artifact store write failed for {kind} blob "
                f"({exc}); continuing without persisting it", "warn")

    # ------------------------------------------------------------------ #
    # Usage accounting and maintenance.
    # ------------------------------------------------------------------ #

    def _count(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        usage = self.dir / "usage.json"
        try:
            with self._locked():
                try:
                    counts = json.loads(usage.read_text())
                except (OSError, json.JSONDecodeError):
                    counts = {"hits": 0, "misses": 0}
                counts["hits" if hit else "misses"] = \
                    counts.get("hits" if hit else "misses", 0) + 1
                tmp = usage.with_suffix(f".tmp.{os.getpid()}")
                tmp.write_text(json.dumps(counts, sort_keys=True))
                tmp.replace(usage)
        except OSError:
            pass                # counters are advisory, never fatal

    def usage(self) -> Dict[str, int]:
        """Cumulative hit/miss counts across every process that used
        this store directory."""
        try:
            counts = json.loads((self.dir / "usage.json").read_text())
            return {"hits": int(counts.get("hits", 0)),
                    "misses": int(counts.get("misses", 0))}
        except (OSError, json.JSONDecodeError, ValueError):
            return {"hits": 0, "misses": 0}

    def clear(self) -> int:
        """Delete every blob (and the usage counters); returns how
        many blobs were dropped."""
        count = 0
        with self._locked():
            if self.dir.is_dir():
                for path in self.dir.glob("*.blob"):
                    try:
                        path.unlink()
                        count += 1
                    except OSError:
                        pass
                try:
                    (self.dir / "usage.json").unlink()
                except OSError:
                    pass
        return count

    def status(self) -> dict:
        """Summary for ``campaign status``: path, blob count (total and
        per blob kind), bytes, cumulative hit/miss counts."""
        blobs = list(self.dir.glob("*.blob")) if self.dir.is_dir() \
            else []
        size = sum(path.stat().st_size for path in blobs)
        kinds: Dict[str, int] = {}
        for path in blobs:
            kind = path.name.split("-", 1)[0]
            kinds[kind] = kinds.get(kind, 0) + 1
        out = {"path": str(self.dir), "blobs": len(blobs),
               "bytes": size, "kinds": kinds}
        out.update(self.usage())
        return out


class _FileLock:
    """Context manager: mkdir + exclusive flock on the sidecar file."""

    def __init__(self, directory: Path, path: Path) -> None:
        self.directory = directory
        self.path = path
        self._fh = None

    def __enter__(self):
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        fcntl.flock(self._fh, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc):
        fcntl.flock(self._fh, fcntl.LOCK_UN)
        self._fh.close()
        return False


class _NullLock:
    def __init__(self, directory: Path) -> None:
        self.directory = directory

    def __enter__(self):
        self.directory.mkdir(parents=True, exist_ok=True)
        return self

    def __exit__(self, *exc):
        return False


def resolve_store(artifacts) -> Optional[ArtifactStore]:
    """Normalise the ``artifacts=`` argument threaded through
    ``simulate``/``simulate_sampled``: None defers to the environment
    (``REPRO_CHECKPOINTS`` + ``REPRO_CACHE_DIR``), False disables the
    store explicitly, a store instance is used as-is, and a path opens
    a store there."""
    if artifacts is None:
        return ArtifactStore() if checkpoints_enabled() else None
    if artifacts is False:
        return None
    if isinstance(artifacts, ArtifactStore):
        return artifacts
    return ArtifactStore(artifacts)


__all__ = [
    "ArtifactStore",
    "FunctionalTrace",
    "SCHEMA",
    "TraceWindow",
    "apply_delta",
    "checkpoints_enabled",
    "functional_fingerprint",
    "memory_delta",
    "plan_key",
    "profile_key",
    "program_fingerprint",
    "resolve_store",
    "trace_key",
    "warm_key",
    "warm_profile_fingerprint",
]
