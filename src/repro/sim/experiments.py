"""Experiment harnesses: one function per paper figure/table.

Each harness runs the machine grid its figure compares, on the workloads
its figure uses, and returns (and pretty-prints) the same rows/series
the paper reports. The benchmark files under ``benchmarks/`` call these.

Budgets: the paper simulates 300M-instruction SimPoints; a pure-Python
cycle-level model cannot. The default per-run budget comes from the
``REPRO_INSTRUCTIONS`` environment variable (default 3000 committed
instructions — the workloads are steady-state loop nests, so short
windows are representative). ``REPRO_BENCHSET=quick`` trims the
benchmark lists and the n-SP sweep for fast smoke runs.

Every harness routes its grid through the campaign engine
(:mod:`repro.sim.campaign`): ``jobs`` shards cells across processes
(``REPRO_JOBS`` default), and results are memoized in the persistent
store unless ``use_cache=False`` (``REPRO_NO_CACHE`` default).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from statistics import harmonic_mean
from typing import Callable, Dict, List, Optional, Sequence

# Budget defaults live in repro.defaults (single source of truth shared
# with the runner); re-exported here for backwards compatibility.
from repro.defaults import default_instructions, \
    default_sample_instructions
from repro.pipeline.stats import SimStats
from repro.sim.campaign import CampaignSpec, run_jobs
from repro.sim.campaign.executor import CampaignInterrupted
from repro.sim.config import SimConfig
from repro.sim.sampling import SamplingError, SamplingParams
from repro.workloads import SPECFP, SPECINT, TABLE2_ENTRIES


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCHSET", "").lower() == "quick"


def _benchmarks(full: Sequence[str]) -> List[str]:
    if quick_mode():
        return list(full[::3])
    return list(full)


def _bank_sweep() -> List[int]:
    if quick_mode():
        return [8, 16]
    return [8, 16, 32, 64, 128]


@dataclass
class ExperimentResult:
    """Grid of statistics: benchmark -> machine label -> SimStats."""

    name: str
    machines: List[str]
    stats: Dict[str, Dict[str, SimStats]] = field(default_factory=dict)
    # Campaign accounting: cells served from the result cache vs
    # actually simulated (stale-cache debugging, CLI reporting).
    cache_hits: int = 0
    simulated: int = 0
    # Checkpoint-store accounting over the simulated cells
    # (repro.sim.artifacts): windows replayed from stored checkpoints,
    # and functional instructions actually executed vs replayed.
    checkpoint_hits: int = 0
    ff_executed: int = 0
    ff_skipped: int = 0
    # Fault-tolerance accounting (repro.sim.campaign receipts): job
    # attempts beyond the first, and jobs quarantined after exhausting
    # their retry budget.
    retried_attempts: int = 0
    quarantined: int = 0
    # Merged phase profile over the simulated cells
    # (:class:`repro.obs.PhaseProfile`), or None when profiling was off.
    phase: Optional[object] = None

    def ipc(self, benchmark: str, machine: str) -> float:
        return self.stats[benchmark][machine].ipc

    def mean_ipc(self, machine: str) -> float:
        values = [cell[machine].ipc for cell in self.stats.values()]
        return harmonic_mean(values) if values else 0.0

    def speedup_over(self, machine: str, reference: str) -> float:
        """Mean-IPC ratio of ``machine`` over ``reference``."""
        ref = self.mean_ipc(reference)
        return self.mean_ipc(machine) / ref if ref else 0.0

    def to_table(self) -> str:
        lines = [f"== {self.name}"]
        header = f"{'benchmark':12s}" + "".join(
            f"{m:>12s}" for m in self.machines)
        lines.append(header)
        for benchmark, cells in self.stats.items():
            row = f"{benchmark:12s}" + "".join(
                f"{cells[m].ipc:12.3f}" for m in self.machines)
            lines.append(row)
        lines.append(f"{'hmean':12s}" + "".join(
            f"{self.mean_ipc(m):12.3f}" for m in self.machines))
        return "\n".join(lines)


def run_grid(name: str, benchmarks: Sequence[str],
             configs: Sequence[SimConfig],
             instructions: Optional[int] = None,
             progress: Optional[Callable[[str], None]] = None,
             jobs: Optional[int] = None,
             use_cache: Optional[bool] = None,
             cache_dir=None,
             timeout: Optional[float] = None,
             sampling=None,
             checkpoints: Optional[bool] = None,
             profile: Optional[bool] = None,
             retries: Optional[int] = None,
             resume: bool = False) -> ExperimentResult:
    """Run a benchmarks x configs grid through the campaign engine.

    ``sampling`` (anything ``SamplingParams.coerce`` accepts — True
    for periodic windows, ``"simpoint"`` for BBV phase clustering, a
    dict, or a ``SamplingParams``) stamps a sampling schedule onto
    every machine config, switching the whole grid to sampled
    simulation; the default budget then rises to
    ``default_sample_instructions()`` (~30x) since fast-forwarding makes
    far larger represented budgets affordable at equal wall-clock.
    ``sampling=None`` defers to the ``REPRO_SAMPLE*`` environment, so
    the knob applies to every harness and benchmark, not just the CLI.
    (The schedule is stamped here — before jobs are created — so
    sampled cells carry it in their cache keys; workers themselves
    never consult the environment.)

    ``checkpoints`` forwards to :func:`repro.sim.campaign.run_jobs`:
    sampled cells share one checkpoint store under ``cache_dir``, so
    the whole grid pays fast-forward/profiling once (``None`` defers to
    ``REPRO_CHECKPOINTS``).
    """
    params = (SamplingParams.coerce(sampling) if sampling is not None
              else SamplingParams.from_env())
    if params is not None:
        configs = [params.apply(config) for config in configs]
    budget = instructions or (default_sample_instructions()
                              if params else default_instructions())
    if params is not None and params.ff >= budget:
        # Reject before sharding: a worker failure would surface as a
        # raw CampaignError instead of a parameter error.
        raise SamplingError(
            f"sampling ff={params.ff} consumes the whole "
            f"{budget}-instruction budget; raise the budget or lower "
            f"--ff")
    spec = CampaignSpec(name, list(benchmarks), list(configs), budget)
    report = run_jobs(spec.jobs(), workers=jobs, use_cache=use_cache,
                      cache_dir=cache_dir, timeout=timeout,
                      progress=progress, checkpoints=checkpoints,
                      profile=profile, retries=retries, resume=resume)
    if report.interrupted:
        # The grid is (possibly) incomplete by user request: surface
        # the drain instead of a confusing missing-cell CampaignError.
        raise CampaignInterrupted(
            report.interrupted,
            f"interrupted by {report.interrupted} with "
            f"{report.simulated} cell(s) finished this run; rerun "
            f"with --resume to execute only the missing cells")
    result = ExperimentResult(name, [c.label for c in configs],
                              cache_hits=report.hits,
                              simulated=report.simulated,
                              checkpoint_hits=report.checkpoint_hits,
                              ff_executed=report.ff_executed,
                              ff_skipped=report.ff_skipped,
                              retried_attempts=report.retried_attempts,
                              quarantined=report.quarantined,
                              phase=report.phase)
    result.stats = spec.grid(report)
    return result


#: Backwards-compatible private alias (pre-campaign name).
_run_grid = run_grid


def _machine_grid(predictor: str,
                  banks: Optional[Sequence[int]] = None) -> List[SimConfig]:
    banks = list(banks) if banks is not None else _bank_sweep()
    configs = [SimConfig.baseline(predictor=predictor),
               SimConfig.cpr(predictor=predictor)]
    configs += [SimConfig.msp(n, predictor=predictor) for n in banks]
    configs.append(SimConfig.msp_ideal(predictor=predictor))
    return configs


# --------------------------------------------------------------------- #
# Figures 6-8: IPC grids (+ 16-SP bank stalls shown in the same figure).
# --------------------------------------------------------------------- #

def figure6(instructions: Optional[int] = None,
            banks: Optional[Sequence[int]] = None,
            **campaign) -> ExperimentResult:
    """Fig. 6: SPECint IPC with the gshare predictor."""
    return run_grid("Figure 6: SPECint IPC (gshare)",
                    _benchmarks(SPECINT),
                    _machine_grid("gshare", banks), instructions,
                    **campaign)


def figure7(instructions: Optional[int] = None,
            banks: Optional[Sequence[int]] = None,
            **campaign) -> ExperimentResult:
    """Fig. 7: SPECint IPC with the TAGE predictor."""
    return run_grid("Figure 7: SPECint IPC (TAGE)",
                    _benchmarks(SPECINT),
                    _machine_grid("tage", banks), instructions,
                    **campaign)


def figure8(instructions: Optional[int] = None,
            banks: Optional[Sequence[int]] = None,
            **campaign) -> ExperimentResult:
    """Fig. 8: SPECfp IPC with the TAGE predictor."""
    return run_grid("Figure 8: SPECfp IPC (TAGE)",
                    _benchmarks(SPECFP),
                    _machine_grid("tage", banks), instructions,
                    **campaign)


def bank_stalls(predictor: str = "tage", bank_size: int = 16,
                suite: Optional[Sequence[str]] = None,
                instructions: Optional[int] = None,
                **campaign) -> Dict[str, List]:
    """The right-hand bars of Figs. 6-8: 16-SP stall cycles from the
    logical registers contributing most."""
    from repro.isa.registers import reg_name
    result = run_grid("bank stalls",
                      _benchmarks(suite or SPECINT),
                      [SimConfig.msp(bank_size, predictor=predictor)],
                      instructions, **campaign)
    out: Dict[str, List] = {}
    for benchmark, cells in result.stats.items():
        stats = next(iter(cells.values()))
        out[benchmark] = [(reg_name(reg), cycles)
                          for reg, cycles in stats.top_bank_stalls(3)]
    return out


# --------------------------------------------------------------------- #
# Table II: original vs modified kernels.
# --------------------------------------------------------------------- #

def table2(instructions: Optional[int] = None,
           **campaign) -> Dict[str, Dict]:
    """Table II: IPC of original vs hand-modified kernels (TAGE)."""
    configs = [SimConfig.cpr(predictor="tage"),
               SimConfig.msp(8, predictor="tage"),
               SimConfig.msp(16, predictor="tage"),
               SimConfig.msp_ideal(predictor="tage")]
    workloads = [name for entry in TABLE2_ENTRIES
                 for name in (entry.benchmark, f"{entry.benchmark}_mod")]
    result = run_grid("Table II", workloads, configs, instructions,
                      **campaign)
    rows: Dict[str, Dict] = {}
    for entry in TABLE2_ENTRIES:
        for version, name in (("original", entry.benchmark),
                              ("modified", f"{entry.benchmark}_mod")):
            cells = {label: stats.ipc
                     for label, stats in result.stats[name].items()}
            rows[f"{entry.benchmark}.{entry.function}/{version}"] = {
                "loops_unrolled": entry.loops_unrolled,
                "exec_time_pct": entry.exec_time_pct,
                **cells,
            }
    return rows


# --------------------------------------------------------------------- #
# Figure 9: executed-instruction breakdown.
# --------------------------------------------------------------------- #

def figure9(instructions: Optional[int] = None,
            **campaign) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Fig. 9: total executed instructions (correct-path, correct-path
    re-executed, wrong-path) for CPR and 16-SP under both predictors."""
    configs = []
    for predictor in ("gshare", "tage"):
        for config in (SimConfig.cpr(predictor=predictor),
                       SimConfig.msp(16, predictor=predictor)):
            configs.append(config.with_(
                label_override=f"{config.label} {predictor}"))
    result = run_grid("Figure 9", _benchmarks(SPECINT), configs,
                      instructions, **campaign)
    out: Dict[str, Dict[str, Dict[str, int]]] = {}
    for benchmark, machine_cells in result.stats.items():
        out[benchmark] = {
            label: {
                "correct_path": stats.committed,
                "correct_path_reexecuted":
                    stats.correct_path_reexecuted,
                "wrong_path": stats.wrong_path_executed,
                "total": stats.total_executed,
            }
            for label, stats in machine_cells.items()
        }
    return out


def figure9_summary(data: Dict) -> Dict[str, float]:
    """Average executed-instruction ratio of 16-SP vs CPR per predictor
    (the paper: 16.5% fewer with gshare, 12% fewer with TAGE)."""
    out = {}
    for predictor in ("gshare", "tage"):
        ratios = []
        for cells in data.values():
            cpr = cells[f"CPR-192 {predictor}"]["total"]
            msp = cells[f"16-SP+Arb {predictor}"]["total"]
            if cpr:
                ratios.append(msp / cpr)
        out[predictor] = 1.0 - (sum(ratios) / len(ratios)) if ratios else 0.0
    return out


# --------------------------------------------------------------------- #
# Ablations (Secs. 3.2.2, 3.3, 4.3 claims).
# --------------------------------------------------------------------- #

def ablation_lcs_delay(delays: Sequence[int] = (0, 1, 4),
                       instructions: Optional[int] = None,
                       benchmarks: Optional[Sequence[str]] = None,
                       **campaign) -> ExperimentResult:
    """Sec. 3.2.2: even a 4-cycle LCS costs < 1% IPC vs 1-cycle."""
    configs = [SimConfig.msp(16, predictor="tage", lcs_delay=d,
                             label_override=f"lcs={d}")
               for d in delays]
    return run_grid(
        "Ablation: LCS propagation delay",
        _benchmarks(benchmarks or SPECINT[:6]),
        configs, instructions, **campaign)


def ablation_rename_width(widths: Sequence[int] = (1, 2, 3),
                          instructions: Optional[int] = None,
                          benchmarks: Optional[Sequence[str]] = None,
                          **campaign) -> ExperimentResult:
    """Sec. 3.3: one same-register rename per cycle costs ~5% IPC;
    allowing three adds nothing over two."""
    configs = [SimConfig.msp(16, predictor="tage", max_same_reg_renames=w,
                             label_override=f"renames={w}")
               for w in widths]
    return run_grid(
        "Ablation: same-logical-register renames per cycle",
        _benchmarks(benchmarks or SPECINT[:6]),
        configs, instructions, **campaign)


def ablation_arbitration(instructions: Optional[int] = None,
                         benchmarks: Optional[Sequence[str]] = None,
                         **campaign) -> ExperimentResult:
    """Sec. 5.1: the 1R/1W banked register file needs an arbitration
    stage; this quantifies its cost against a fully-ported 16-SP."""
    configs = [
        SimConfig.msp(16, predictor="tage", arbitration=True,
                      label_override="16-SP+Arb"),
        SimConfig.msp(16, predictor="tage", arbitration=False,
                      label_override="16-SP-fullport"),
    ]
    return run_grid(
        "Ablation: banked 1R/1W + arbitration vs full porting",
        _benchmarks(benchmarks or SPECINT[:6]),
        configs, instructions, **campaign)


def ablation_cpr_registers(register_counts: Sequence[int] = (192, 256, 512),
                           instructions: Optional[int] = None,
                           benchmarks: Optional[Sequence[str]] = None,
                           **campaign) -> ExperimentResult:
    """Sec. 4.3: CPR with 256/512 registers gains only ~1-1.3%, so the
    MSP's advantage is not its larger register file."""
    configs = [SimConfig.cpr(predictor="tage", registers=n)
               for n in register_counts]
    return run_grid(
        "Ablation: CPR register-file size",
        _benchmarks(benchmarks or SPECINT[:6]),
        configs, instructions, **campaign)
