"""Deterministic fault injection (``REPRO_FAULT_INJECT``).

A *fault plan* is a comma-separated list of tokens, each arming one
fault at one named point in the campaign stack::

    REPRO_FAULT_INJECT=worker-kill@2,enospc@put,timeout@4

Two token shapes:

* ``<kind>@<N>`` — a **job fault**: the parent executor consumes it
  when it hands out the ``N``-th job *dispatch* of the run (1-based,
  counting retries; dispatch order is the deterministic pending-job
  order, so the same plan always hits the same cell).  The worker then
  executes the fault at the top of the job body.  Kinds:

  - ``worker-kill`` — SIGKILL the worker process (the parent sees
    ``BrokenProcessPool``; on the serial path it degrades to a
    :class:`~repro.sim.campaign.executor.WorkerLost`, the same
    transient classification).
  - ``timeout`` — raise the per-job
    :class:`~repro.sim.campaign.executor.JobTimeout` (transient).
  - ``oserror`` — raise ``OSError(EIO)`` from the job body (transient).
  - ``assert`` — raise ``AssertionError`` (permanent: quarantined on
    the first attempt, never retried).

* ``<kind>@<site>[*N][%P]`` — a **site fault**: raises the mapped
  ``OSError`` at a named fault point the first time execution arrives
  there (``*N`` = the first N arrivals; ``%P`` = each arrival fires
  with probability P%, drawn from the ``REPRO_FAULT_SEED``-seeded
  generator so a given seed replays the identical fault sequence).
  Kinds ``enospc`` / ``erofs`` / ``eio``; sites threaded through the
  stores and the campaign service:

  - ``put`` — :meth:`repro.sim.campaign.store.ResultStore.put`
  - ``artifact-put`` — :meth:`repro.sim.artifacts.ArtifactStore.put`
  - ``journal`` — the campaign journal append
  - ``enqueue`` — the service spool append
    (:meth:`repro.sim.service.queue.SpoolQueue.submit`): a faulted
    append rejects the submission (a job the daemon cannot persist is
    a job it must not accept).
  - ``lease-renew`` — the daemon-side lease renewal when a worker
    heartbeat arrives (:class:`repro.sim.service.lease.LeaseTable`):
    a faulted renewal is skipped, so the lease ages toward
    ``REPRO_LEASE_TTL`` expiry even while heartbeats flow —
    deterministic lease-expiry/re-dispatch testing from one process.
  - ``heartbeat`` — the worker-side heartbeat sender: a faulted beat
    is never sent (a worker that "stops heartbeating").

  Site faults fire in the process that owns the site: ``enqueue`` and
  ``lease-renew`` in the daemon, ``heartbeat``/``put`` in whichever
  process performs them (service workers re-arm the environment plan
  at startup, each with its own firing state).

Zero overhead when off (the PR 7 idiom): every fault point is one
module-global ``None`` check (:func:`fire`), no fault point sits on a
simulation hot loop, and with ``REPRO_FAULT_INJECT`` unset nothing is
ever parsed or allocated.  The registry is armed per ``run_jobs`` call
and disarmed on exit, so faulted campaigns cannot leak into later runs
in the same process.

Every recovery path this module exercises must converge: a faulted
campaign's surviving results are required (and CI-checked) to be
bit-identical to a fault-free run.
"""

from __future__ import annotations

import errno
import os
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.defaults import EnvConfigError

#: Job-fault kinds (executed inside the job body / at dispatch).
JOB_KINDS = ("worker-kill", "timeout", "oserror", "assert")

#: Site-fault kinds and the errno each one raises.
SITE_ERRNOS = {
    "enospc": errno.ENOSPC,
    "erofs": errno.EROFS,
    "eio": errno.EIO,
}

#: Named fault points threaded through the stores and the campaign
#: service.  Parse-time validated so a typo'd site fails the run at
#: startup instead of silently never firing.
SITES = ("put", "artifact-put", "journal",
         "enqueue", "lease-renew", "heartbeat")


@dataclass
class _JobFault:
    kind: str
    dispatch: int                        # 1-based dispatch ordinal


@dataclass
class _SiteFault:
    kind: str
    site: str
    remaining: int = 1                   # arrivals left to fault
    probability: Optional[float] = None  # %P tokens: per-arrival chance


@dataclass
class FaultPlan:
    """A parsed ``REPRO_FAULT_INJECT`` plan plus its firing state."""

    job_faults: Dict[int, str] = field(default_factory=dict)
    site_faults: List[_SiteFault] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a fault spec; malformed tokens raise
        :class:`~repro.defaults.EnvConfigError` (one-line CLI error,
        same convention as the other ``REPRO_*`` knobs)."""
        plan = cls(seed=seed)
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            kind, sep, where = token.partition("@")
            if not sep or not kind or not where:
                raise EnvConfigError(
                    f"REPRO_FAULT_INJECT token {token!r} is not "
                    f"<kind>@<dispatch|site>")
            probability = None
            if "%" in where:
                where, _, pct = where.partition("%")
                try:
                    probability = float(pct) / 100.0
                except ValueError:
                    raise EnvConfigError(
                        f"REPRO_FAULT_INJECT token {token!r}: "
                        f"probability {pct!r} is not a number")
            count = 1
            if "*" in where:
                where, _, reps = where.partition("*")
                try:
                    count = int(reps)
                except ValueError:
                    raise EnvConfigError(
                        f"REPRO_FAULT_INJECT token {token!r}: "
                        f"repeat count {reps!r} is not an integer")
            if where.isdigit():
                if kind not in JOB_KINDS:
                    raise EnvConfigError(
                        f"REPRO_FAULT_INJECT token {token!r}: job fault "
                        f"kind must be one of {', '.join(JOB_KINDS)}")
                plan.job_faults[int(where)] = kind
            else:
                if kind not in SITE_ERRNOS:
                    raise EnvConfigError(
                        f"REPRO_FAULT_INJECT token {token!r}: site "
                        f"fault kind must be one of "
                        f"{', '.join(sorted(SITE_ERRNOS))}")
                if where not in SITES:
                    raise EnvConfigError(
                        f"REPRO_FAULT_INJECT token {token!r}: unknown "
                        f"fault site {where!r}; choose from "
                        f"{', '.join(SITES)}")
                plan.site_faults.append(_SiteFault(
                    kind, where, remaining=count,
                    probability=probability))
        return plan

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan armed by the environment, or None (the common
        case, and the only one the disarmed fast path ever sees)."""
        spec = os.environ.get("REPRO_FAULT_INJECT", "").strip()
        if not spec:
            return None
        seed_raw = os.environ.get("REPRO_FAULT_SEED", "0").strip() or "0"
        try:
            seed = int(seed_raw)
        except ValueError:
            raise EnvConfigError(
                f"REPRO_FAULT_SEED must be an integer, got {seed_raw!r}")
        return cls.parse(spec, seed=seed)

    # ------------------------------------------------------------------ #

    def job_fault(self, dispatch: int) -> Optional[str]:
        """Consume and return the job-fault kind armed for this
        dispatch ordinal (None almost always)."""
        return self.job_faults.pop(dispatch, None)

    def fire(self, site: str) -> None:
        """Raise the armed ``OSError`` if a site fault matches
        ``site``; decrements its remaining count so recovery paths can
        converge (a retried operation eventually succeeds)."""
        for fault in self.site_faults:
            if fault.site != site or fault.remaining <= 0:
                continue
            if fault.probability is not None \
                    and self._rng.random() >= fault.probability:
                continue
            fault.remaining -= 1
            raise OSError(SITE_ERRNOS[fault.kind],
                          f"injected {fault.kind} at {site}")


# --------------------------------------------------------------------- #
# The global registry: one None-checked slot, armed per campaign run.
# --------------------------------------------------------------------- #

_PLAN: Optional[FaultPlan] = None


def armed() -> bool:
    return _PLAN is not None


def current() -> Optional[FaultPlan]:
    return _PLAN


def fire(site: str) -> None:
    """Fault point: no-op unless a plan is armed (one global load and a
    ``None`` check — the zero-overhead-when-off contract)."""
    plan = _PLAN
    if plan is not None:
        plan.fire(site)


@contextmanager
def active(plan: Optional[FaultPlan]):
    """Arm ``plan`` for the duration of a campaign run (None = leave
    whatever is armed alone, so nested ``run_jobs`` calls compose)."""
    global _PLAN
    if plan is None:
        yield None
        return
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


__all__ = ["FaultPlan", "JOB_KINDS", "SITES", "SITE_ERRNOS", "active",
           "armed", "current", "fire"]
