"""Simulator-throughput benchmark: committed instructions per second.

Not a paper figure — this tracks the *performance trajectory* of the
simulator itself across PRs.  Four modes run the same workload/machine:

* ``emulator``    — the fast interpreter (``Emulator.run_fast``), the
  sampled engine's fast-forward ceiling;
* ``ff+warmup``   — ``run_fast`` with the warm-up engine fused in
  (what fast-forward actually costs);
* ``detailed``    — the cycle-level core (full-detail cost);
* ``sampled``     — the complete sampled engine (periodic windows),
  reported as *represented* instructions per second;
* ``simpoint``    — the sampled engine under SimPoint phase
  clustering (BBV profiling + k-medoids representative windows);
  its record carries ``detail_instructions`` and the
  ``detail_reduction_vs_sampled`` ratio, CI-guarded against
  :data:`MIN_SIMPOINT_DETAIL_REDUCTION`;
* ``campaign-amortized`` — a 3-config simpoint mini-grid, cold (no
  checkpoint store: every config pays fast-forward + profiling) vs
  warm (shared pre-populated store: zero functional execution); its
  ``amortized_speedup`` ratio is CI-guarded against
  :data:`MIN_CAMPAIGN_AMORTIZATION`.

Two reference modes (``--ref``) time the pre-overhaul paths — the
``step()`` interpreter and the per-retire observer — so the speedup of
the fused fast path stays measurable in place.

:func:`measure` returns one machine-readable record (inst/s per mode,
budgets, git SHA); :func:`write_json` lands it in
``BENCH_throughput.json`` so the trajectory is tracked across PRs, and
:func:`check_regression` gates CI on it (the ``repro bench`` command
wires all three together).
"""

from __future__ import annotations

import json
import subprocess
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

#: The JSON artifact's schema tag (bump on incompatible changes).
SCHEMA = "repro-bench-throughput/1"

#: Mode names in canonical order.
MODES = ("emulator", "ff+warmup", "detailed", "sampled", "simpoint",
         "campaign-amortized")
REFERENCE_MODES = ("emulator-ref", "ff+warmup-ref")

#: The modes the CI regression gate watches (the PR-over-PR trajectory
#: this subsystem exists to protect): the fast-forward path since PR 3,
#: the detailed cycle cores since the event-scheduler PR, and the two
#: end-to-end sampled engines since the simpoint PR.
GATED_MODES = ("ff+warmup", "detailed", "sampled", "simpoint",
               "campaign-amortized")
#: Backwards-compatible alias (the historical single gated mode).
GATED_MODE = "ff+warmup"

#: Floor on the simpoint cell's detailed-work reduction over periodic
#: sampling (the acceptance criterion of the simpoint PR): a simpoint
#: record whose ``detail_reduction_vs_sampled`` drops below this fails
#: the regression check outright, independent of inst/s rates.
MIN_SIMPOINT_DETAIL_REDUCTION = 2.0

#: Floor on the campaign-amortized cell's cold-over-warm grid speedup
#: (the acceptance criterion of the checkpoint-store PR): a record
#: whose ``amortized_speedup`` drops below this fails the regression
#: check outright — the store no longer pays for itself.
MIN_CAMPAIGN_AMORTIZATION = 2.0

#: Ceiling on the detailed core's slowdown relative to the emulator
#: measured in the same record (the acceptance criterion of the
#: SoA-window/codegen PR).  A machine-independent ratio, like the two
#: floors above: both legs run back-to-back in one process, so load
#: cancels.  The seed detailed core sat at ~43x the emulator; the
#: SoA in-flight window + per-static-instruction codegen brought it
#: to ~36x, and the gate holds the line between the two.  An
#: emulator-only speedup can tighten this ratio — that is deliberate:
#: the contract is that the detailed core tracks the functional
#: interpreter's performance work, not that it never regresses alone.
MAX_DETAILED_SLOWDOWN_VS_EMULATOR = 42.0


def git_sha() -> str:
    """The repository HEAD this measurement describes (``unknown``
    outside a git checkout)."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def _tage_config():
    from repro.sim.config import SimConfig
    return SimConfig.baseline(predictor="tage")


def _rate(instructions: int, seconds: float) -> float:
    return instructions / seconds if seconds else 0.0


def measure_mode(mode: str, workload: str, emulate_n: int, detail_n: int,
                 sampled_n: int) -> Dict[str, float]:
    """Time one mode once and return its record (instructions, seconds,
    instructions_per_second, plus sampled-cost fields where relevant)."""
    from repro.isa.emulator import Emulator
    from repro.sim.runner import simulate
    from repro.sim.sampling.warmup import WarmupEngine
    from repro.workloads import get_program

    program = get_program(workload)
    program.decoded          # predecode outside the timed region
    config = _tage_config()

    if mode == "emulator":
        emulator = Emulator(program)
        t0 = time.perf_counter()
        result = emulator.run_fast(emulate_n)
        elapsed = time.perf_counter() - t0
        retired = result.retired
    elif mode == "emulator-ref":
        emulator = Emulator(program)
        t0 = time.perf_counter()
        result = emulator.run(max_instructions=emulate_n)
        elapsed = time.perf_counter() - t0
        retired = result.retired
    elif mode == "ff+warmup":
        emulator = Emulator(program)
        warm = WarmupEngine(config, program)
        t0 = time.perf_counter()
        result = emulator.run_fast(emulate_n, warmup=warm)
        elapsed = time.perf_counter() - t0
        retired = result.retired
    elif mode == "ff+warmup-ref":
        emulator = Emulator(program)
        emulator.observer = WarmupEngine(config, program)
        t0 = time.perf_counter()
        result = emulator.run(max_instructions=emulate_n)
        elapsed = time.perf_counter() - t0
        retired = result.retired
    elif mode == "detailed":
        from repro.obs import PhaseProfile
        prof = PhaseProfile()
        t0 = time.perf_counter()
        stats = simulate(program, config, max_instructions=detail_n,
                         profile=prof)
        elapsed = time.perf_counter() - t0
        retired = stats.committed
        return {"instructions": retired, "seconds": elapsed,
                "instructions_per_second": _rate(retired, elapsed),
                "phase_seconds": dict(prof.seconds)}
    elif mode in ("sampled", "simpoint"):
        # artifacts=False: these cells measure the full engine
        # including fast-forward — a populated checkpoint store would
        # silently turn them into replay benchmarks (and benchmark runs
        # must not pollute the user's campaign store either way).
        from repro.obs import PhaseProfile
        prof = PhaseProfile()
        sampling = True if mode == "sampled" else "simpoint"
        t0 = time.perf_counter()
        stats = simulate(program, config, max_instructions=sampled_n,
                         sampling=sampling, artifacts=False,
                         profile=prof)
        elapsed = time.perf_counter() - t0
        record = {
            "instructions": stats.committed,
            "seconds": elapsed,
            "instructions_per_second": _rate(stats.committed, elapsed),
            "detail_instructions": stats.detail_instructions,
            "phase_seconds": dict(prof.seconds),
        }
        return record
    elif mode == "campaign-amortized":
        return _measure_campaign_amortized(program, sampled_n)
    else:
        raise ValueError(f"unknown bench mode {mode!r}; choose from "
                         f"{MODES + REFERENCE_MODES}")
    return {"instructions": retired, "seconds": elapsed,
            "instructions_per_second": _rate(retired, elapsed)}


def _measure_campaign_amortized(program, sampled_n: int) -> Dict[str, float]:
    """Time a 3-config simpoint mini-grid cold (no checkpoint store —
    every config pays fast-forward + BBV profiling) and warm (shared
    pre-populated store — pure replay, zero functional execution).

    The warm leg is the headline rate: it is the marginal cost of one
    more config in a campaign grid, which is what the store exists to
    shrink. ``amortized_speedup`` = cold/warm grid wall-clock.
    """
    import shutil
    import tempfile

    from repro.obs import PhaseProfile
    from repro.sim.artifacts import ArtifactStore
    from repro.sim.config import SimConfig
    from repro.sim.runner import simulate

    configs = [SimConfig.baseline(predictor="tage"),
               SimConfig.msp(8, predictor="tage"),
               SimConfig.msp(16, predictor="tage")]
    represented = 0
    t0 = time.perf_counter()
    for config in configs:
        stats = simulate(program, config, max_instructions=sampled_n,
                         sampling="simpoint", artifacts=False)
        represented += stats.committed
    cold = time.perf_counter() - t0
    tmp = tempfile.mkdtemp(prefix="repro-bench-artifacts-")
    prof = PhaseProfile()
    try:
        store = ArtifactStore(tmp)
        # Populate untimed: the record pass is the grid's once-per-
        # campaign cost, the timed warm leg its steady-state marginal.
        simulate(program, configs[0], max_instructions=sampled_n,
                 sampling="simpoint", artifacts=store)
        t0 = time.perf_counter()
        for config in configs:
            simulate(program, config, max_instructions=sampled_n,
                     sampling="simpoint", artifacts=store,
                     profile=prof)
        warm = time.perf_counter() - t0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "instructions": represented,
        "seconds": warm,
        "instructions_per_second": _rate(represented, warm),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "amortized_speedup": cold / warm if warm else 0.0,
        "phase_seconds": dict(prof.seconds),
    }


def measure(workload: str = "gzip", emulate_n: int = 200_000,
            detail_n: int = 20_000, sampled_n: int = 200_000,
            modes: Optional[List[str]] = None,
            repeats: int = 1) -> dict:
    """Measure the requested modes and return the full bench record.

    ``repeats`` > 1 keeps the best (highest inst/s) run per mode —
    throughput is a property of the code, noise only subtracts.
    """
    record = {
        "schema": SCHEMA,
        "workload": workload,
        "git_sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "budgets": {"emulate": emulate_n, "detail": detail_n,
                    "sampled": sampled_n},
        "modes": {},
    }
    for mode in (modes or MODES):
        # One small untimed priming run per mode: we report steady-state
        # throughput, not allocator/codepath cold-start.
        measure_mode(mode, workload, min(5000, emulate_n),
                     min(500, detail_n), min(5000, sampled_n))
        best = None
        for _ in range(max(1, repeats)):
            current = measure_mode(mode, workload, emulate_n, detail_n,
                                   sampled_n)
            if best is None or (current["instructions_per_second"]
                                > best["instructions_per_second"]):
                best = current
        record["modes"][mode] = best
    _annotate_simpoint_reduction(record)
    return record


def _annotate_simpoint_reduction(record: dict) -> None:
    """Stamp the simpoint cell with its detailed-work reduction over
    the periodic ``sampled`` cell (same represented budget, so the
    detail_instructions ratio is the honest comparison the simpoint
    PR's >= 2x acceptance criterion guards)."""
    cells = record.get("modes", {})
    periodic = cells.get("sampled", {}).get("detail_instructions")
    simpoint = cells.get("simpoint")
    if periodic and simpoint and simpoint.get("detail_instructions"):
        simpoint["detail_reduction_vs_sampled"] = (
            periodic / simpoint["detail_instructions"])


def write_json(path: str, record: dict) -> None:
    with open(path, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def check_regression(current: dict, baseline: dict,
                     tolerance: float = 0.30,
                     mode: str = GATED_MODE) -> Optional[str]:
    """Compare ``mode``'s inst/s against a committed baseline record.

    Returns a human-readable failure message when the current rate is
    more than ``tolerance`` below the baseline, None when within
    bounds (or when either record lacks the mode — absence is not a
    regression).  Records measured on different workloads are not
    comparable and always fail: silently passing would let a
    ``--workload`` run overwrite the committed baseline with rates the
    CI gate (which measures the baseline's workload) can't gate on.
    """
    mismatch = _workload_mismatch(current, baseline)
    if mismatch is not None:
        return mismatch
    try:
        new = current["modes"][mode]["instructions_per_second"]
        old = baseline["modes"][mode]["instructions_per_second"]
    except KeyError:
        return None
    if old <= 0:
        return None
    floor = old * (1.0 - tolerance)
    if new < floor:
        return (f"{mode} throughput regressed: {new:,.0f} inst/s vs "
                f"baseline {old:,.0f} (floor {floor:,.0f} at "
                f"-{tolerance:.0%}; baseline git {baseline.get('git_sha')})")
    return None


def _workload_mismatch(current: dict, baseline: dict) -> Optional[str]:
    """Failure message when the two records measure different
    workloads (their rates are never comparable), else None."""
    current_wl = current.get("workload")
    baseline_wl = baseline.get("workload")
    if current_wl and baseline_wl and current_wl != baseline_wl:
        return (f"baseline measures workload {baseline_wl!r} but this "
                f"run measured {current_wl!r}; rates are not "
                f"comparable (re-run with --workload {baseline_wl} or "
                f"point --baseline at a {current_wl} record)")
    return None


def check_simpoint_reduction(current: dict) -> Optional[str]:
    """Failure message when the record's simpoint cell no longer cuts
    detailed work >= :data:`MIN_SIMPOINT_DETAIL_REDUCTION` x below
    periodic sampling, else None (absence of the cell or of the ratio
    is not a failure — e.g. a --ref-only or pre-simpoint record).

    The floor only applies when the record's sampled budget holds at
    least ``floor x clusters`` default-sized intervals — with fewer,
    even perfect clustering cannot reach the floor (every cluster must
    keep >= 1 representative window), so a small ``-n`` smoke run is
    not a regression signal."""
    reduction = (current.get("modes", {}).get("simpoint", {})
                 .get("detail_reduction_vs_sampled"))
    if reduction is None:
        return None
    from repro.sim.sampling import SamplingParams
    defaults = SamplingParams()
    budget = current.get("budgets", {}).get("sampled")
    achievable = (MIN_SIMPOINT_DETAIL_REDUCTION * defaults.clusters
                  * defaults.period)
    if budget is not None and budget < achievable:
        return None
    if reduction < MIN_SIMPOINT_DETAIL_REDUCTION:
        return (f"simpoint detailed-work reduction regressed: "
                f"{reduction:.2f}x vs periodic sampling (floor "
                f"{MIN_SIMPOINT_DETAIL_REDUCTION:.1f}x)")
    return None


def check_campaign_amortization(current: dict) -> Optional[str]:
    """Failure message when the record's campaign-amortized cell no
    longer shows >= :data:`MIN_CAMPAIGN_AMORTIZATION` x cold-over-warm
    grid speedup, else None (absence of the cell or of the ratio is
    not a failure — e.g. a pre-store record).

    Like :func:`check_simpoint_reduction`, the floor only applies at
    budgets large enough for fast-forward + profiling to dominate the
    per-config cost: below that, the measured windows (which both legs
    pay identically) swamp the functional work the store amortizes, so
    a small ``-n`` smoke run is not a regression signal."""
    speedup = (current.get("modes", {}).get("campaign-amortized", {})
               .get("amortized_speedup"))
    if speedup is None:
        return None
    from repro.sim.sampling import SamplingParams
    defaults = SamplingParams()
    budget = current.get("budgets", {}).get("sampled")
    achievable = (MIN_CAMPAIGN_AMORTIZATION * defaults.clusters
                  * defaults.period)
    if budget is not None and budget < achievable:
        return None
    if speedup < MIN_CAMPAIGN_AMORTIZATION:
        return (f"campaign checkpoint amortization regressed: "
                f"{speedup:.2f}x cold-over-warm grid speedup (floor "
                f"{MIN_CAMPAIGN_AMORTIZATION:.1f}x)")
    return None


def check_detailed_slowdown(current: dict) -> Optional[str]:
    """Failure message when the record's detailed core runs more than
    :data:`MAX_DETAILED_SLOWDOWN_VS_EMULATOR` x slower than the
    emulator measured in the same record, else None (absence of either
    mode is not a failure — e.g. a partial or --ref-only record).

    Like the two ratio floors above, the ceiling only applies at
    detail budgets large enough to amortize the fixed core-build and
    codegen-compile cost the detailed leg pays and the emulator leg
    does not: a small ``-n`` smoke run is not a regression signal."""
    modes = current.get("modes", {})
    detailed = modes.get("detailed", {}).get("instructions_per_second")
    emulator = modes.get("emulator", {}).get("instructions_per_second")
    if not detailed or not emulator:
        return None
    budget = current.get("budgets", {}).get("detail")
    if budget is not None and budget < 10_000:
        return None
    slowdown = emulator / detailed
    if slowdown > MAX_DETAILED_SLOWDOWN_VS_EMULATOR:
        return (f"detailed-core relative cost regressed: "
                f"{slowdown:.1f}x slower than the emulator (ceiling "
                f"{MAX_DETAILED_SLOWDOWN_VS_EMULATOR:.1f}x)")
    return None


def check_regressions(current: dict, baseline: dict,
                      tolerance: float = 0.30,
                      modes: Sequence[str] = GATED_MODES) -> List[str]:
    """Run :func:`check_regression` for every gated mode plus the
    simpoint detailed-work-reduction floor; returns the (possibly
    empty) list of failure messages.  A workload mismatch is reported
    once, not per mode."""
    mismatch = _workload_mismatch(current, baseline)
    if mismatch is not None:
        return [mismatch]
    failures: List[str] = []
    for mode in modes:
        failure = check_regression(current, baseline, tolerance, mode)
        if failure is not None:
            failures.append(failure)
    reduction_failure = check_simpoint_reduction(current)
    if reduction_failure is not None:
        failures.append(reduction_failure)
    amortization_failure = check_campaign_amortization(current)
    if amortization_failure is not None:
        failures.append(amortization_failure)
    slowdown_failure = check_detailed_slowdown(current)
    if slowdown_failure is not None:
        failures.append(slowdown_failure)
    return failures


def format_table(record: dict) -> str:
    """One aligned line per measured mode, for the CLI."""
    lines = [f"workload {record['workload']}  git {record['git_sha'][:12]}"
             f"  budgets {record['budgets']}"]
    for mode, row in record["modes"].items():
        extra = ""
        if "detail_instructions" in row:
            extra = (f"  ({row['detail_instructions']:,d} detailed of "
                     f"{row['instructions']:,d} represented)")
        if "detail_reduction_vs_sampled" in row:
            extra += (f"  [{row['detail_reduction_vs_sampled']:.1f}x "
                      f"less detail than sampled]")
        if "amortized_speedup" in row:
            extra += (f"  [cold {row['cold_seconds']:.2f}s -> warm "
                      f"{row['warm_seconds']:.2f}s, "
                      f"{row['amortized_speedup']:.1f}x]")
        lines.append(f"  {mode:14s} {row['instructions_per_second']:12,.0f}"
                     f" inst/s{extra}")
        phases = row.get("phase_seconds")
        if phases:
            total = sum(phases.values())
            if total > 0:
                parts = " · ".join(
                    f"{name} {100.0 * seconds / total:.0f}%"
                    for name, seconds in sorted(
                        phases.items(), key=lambda kv: -kv[1]))
                lines.append(f"  {'':14s} phases: {parts} "
                             f"(spans {total:.2f}s)")
    return "\n".join(lines)


__all__ = ["GATED_MODE", "GATED_MODES", "MAX_DETAILED_SLOWDOWN_VS_EMULATOR",
           "MIN_CAMPAIGN_AMORTIZATION",
           "MIN_SIMPOINT_DETAIL_REDUCTION", "MODES", "REFERENCE_MODES",
           "SCHEMA", "check_campaign_amortization",
           "check_detailed_slowdown", "check_regression",
           "check_regressions", "check_simpoint_reduction",
           "format_table", "git_sha", "load_json", "measure",
           "measure_mode", "write_json"]
