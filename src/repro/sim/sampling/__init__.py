"""Sampled simulation: functional fast-forward, architectural
checkpoints, history-driven warm-up and stitched statistics.

The paper simulates 300M-instruction SimPoints; a pure-Python
cycle-level model cannot. This package buys back effective instructions
the way real simulators do (SMARTS/SimPoint): run the cheap functional
emulator over most of the program — warming predictors and caches from
the true history — and cycle-simulate only short measurement windows
seeded from exact architectural checkpoints, then stitch the window
statistics into whole-run numbers with an error estimate.

Entry points:

* :func:`simulate_sampled` — run one sampled simulation (usually via
  ``repro.sim.runner.simulate(..., sampling=...)`` or a config with
  ``sample_mode != "full"``).
* :class:`SamplingParams` — the window schedule (mode/ff/interval/
  period/warmup), convertible to/from ``SimConfig`` fields, CLI flags
  and ``REPRO_SAMPLE*`` environment variables.
* :class:`WarmupEngine`, :func:`stitch`, :class:`IntervalResult`,
  :class:`BBVCollector`, :func:`plan_simpoints` — the composable
  pieces (the last two are the SimPoint phase-clustering pipeline of
  :mod:`repro.sim.sampling.simpoint`).
"""

from repro.sim.sampling.engine import simulate_sampled
from repro.sim.sampling.params import MODES, SamplingError, \
    SamplingParams
from repro.sim.sampling.simpoint import BBVCollector, SimpointPlan, \
    plan_simpoints, profile_intervals
from repro.sim.sampling.stitch import IntervalResult, sampling_error, \
    stitch, student_t_critical
from repro.sim.sampling.warmup import WarmupEngine

__all__ = [
    "BBVCollector",
    "IntervalResult",
    "MODES",
    "SamplingError",
    "SamplingParams",
    "SimpointPlan",
    "WarmupEngine",
    "plan_simpoints",
    "profile_intervals",
    "sampling_error",
    "simulate_sampled",
    "stitch",
    "student_t_critical",
]
