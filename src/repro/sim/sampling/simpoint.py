"""SimPoint-style phase clustering: pick representative windows.

The periodic schedule measures every period, so a workload with three
steady phases pays detailed simulation for dozens of near-identical
windows. SimPoint (Sherwood et al.) observes that the *basic-block
vector* (BBV) of an interval — how many instructions each basic block
contributed — fingerprints its phase, and that clustering interval
BBVs and simulating one representative interval per cluster reproduces
whole-program CPI at a fraction of the detail cost.

This module is the pure-stdlib, fully deterministic pipeline behind
``sample_mode="simpoint"``:

1. :class:`BBVCollector` — per-interval basic-block profiling.  A block
   is the run of instructions up to (and including) each control
   transfer (conditional branch, ``JMP``, ``JR``); the collector
   charges the block's instruction count to its entry PC.  It is fused
   into ``Emulator.run_fast``'s predecoded dispatch (near emulator
   speed) and doubles as a plain per-retire observer — the ``run()``
   oracle path the equivalence tests compare against.
2. :func:`project_intervals` — frequency-normalise each interval's BBV
   and randomly project it to ``dim`` dimensions.  Projection rows are
   derived per block PC from a seeded :class:`random.Random`, so the
   result is independent of dict iteration order and identical across
   processes.
3. :func:`kmedoids` — k-medoids clustering with deterministic
   farthest-first initialisation and lowest-index tie-breaks (no RNG in
   the iteration, so identical inputs give identical medoids
   everywhere).
4. :func:`plan_simpoints` — the sampled engine's entry point: cluster
   the profiled intervals and return one representative interval per
   cluster, weighted by the exact instruction span its cluster covers.

Intervals close at block boundaries (the profiler only checks the
interval budget when a block ends), so interval lengths wobble by at
most one block around ``interval`` — the standard SimPoint relaxation,
and the property that lets the fused profiler skip per-instruction
bookkeeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.isa.opcodes import Op

#: Default seed for the random projection. A module constant (not
#: config-derived) so a plan is a pure function of (program, schedule)
#: and campaign cache keys stay sound.
SIMPOINT_SEED = 0x51AD

#: Iteration cap for the k-medoids refinement (assignment/update always
#: converges on these tiny point sets long before this).
_MAX_KMEDOIDS_ITER = 64


class BBVCollector:
    """Accumulate one basic-block vector per profiling interval.

    The collector has two drive modes with identical semantics (pinned
    by the oracle tests):

    * fused into ``Emulator.run_fast(budget, bbv=collector)``, which
      manipulates the public fields below directly from the predecoded
      dispatch loop;
    * installed as the emulator's per-retire ``observer`` (this class's
      ``__call__``), the readable reference discipline.

    After the run, :meth:`finish` flushes the open block and partial
    interval; ``intervals`` then holds one ``{entry_pc: instructions}``
    dict per interval, in execution order.
    """

    __slots__ = ("interval", "pos", "counts", "intervals", "entry_pc",
                 "pending")

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise ValueError("BBV profiling interval must be >= 1")
        self.interval = interval
        #: Instructions from *closed* blocks in the current interval.
        self.pos = 0
        #: Current interval's vector: block entry PC -> instructions.
        self.counts: Dict[int, int] = {}
        #: Finished per-interval vectors.
        self.intervals: List[Dict[int, int]] = []
        #: Entry PC of the open block (-1 before the first instruction).
        self.entry_pc = -1
        #: Instructions in the open block.
        self.pending = 0

    def _close_block(self, next_entry: int) -> None:
        counts = self.counts
        entry = self.entry_pc
        counts[entry] = counts.get(entry, 0) + self.pending
        self.pos += self.pending
        self.pending = 0
        if self.pos >= self.interval:
            self.intervals.append(counts)
            self.counts = {}
            self.pos = 0
        self.entry_pc = next_entry

    # ------------------------------------------------------------------ #
    # Emulator observer protocol (the run() oracle path).
    # ------------------------------------------------------------------ #

    def __call__(self, pc, inst, taken, mem_addr, next_pc) -> None:
        if self.entry_pc < 0:
            self.entry_pc = pc
        self.pending += 1
        if taken is not None or inst.op is Op.JMP or inst.op is Op.JR:
            self._close_block(next_pc)

    # ------------------------------------------------------------------ #

    def finish(self) -> List[Dict[int, int]]:
        """Flush the open block (HALT / budget end / fall-off) and the
        partial tail interval; return the interval list."""
        if self.pending:
            self.counts[self.entry_pc] = \
                self.counts.get(self.entry_pc, 0) + self.pending
            self.pos += self.pending
            self.pending = 0
            self.entry_pc = -1
        if self.counts:
            self.intervals.append(self.counts)
            self.counts = {}
            self.pos = 0
        return self.intervals


def profile_intervals(program, budget: int, interval: int,
                      ff: int = 0) -> Tuple[List[Dict[int, int]], int]:
    """Pass 1 of simpoint sampling: functionally execute ``program``
    (no warm-up, near emulator speed) and collect one BBV per
    ``interval`` committed instructions, skipping ``ff`` first.

    Returns ``(interval_vectors, instructions_executed)``.
    """
    from repro.isa.emulator import Emulator
    emulator = Emulator(program)
    if ff:
        result = emulator.run_fast(ff)
        if result.terminated:
            return [], emulator.retired_total
    collector = BBVCollector(interval)
    emulator.run_fast(budget - ff, bbv=collector)
    return collector.finish(), emulator.retired_total


# --------------------------------------------------------------------- #
# Random projection.
# --------------------------------------------------------------------- #

def _projection_row(block: int, dim: int, seed: int) -> List[float]:
    """The block's projection row, derived from a per-block seeded RNG
    (string-seeded so it is stable across processes and independent of
    ``PYTHONHASHSEED``)."""
    rng = random.Random(f"simpoint:{seed}:{block}")
    return [rng.uniform(-1.0, 1.0) for _ in range(dim)]


def project_intervals(intervals: Sequence[Dict[int, int]], dim: int,
                      seed: int = SIMPOINT_SEED) -> List[List[float]]:
    """Frequency-normalise each interval BBV and project it to ``dim``
    dimensions.  Blocks are visited in sorted-PC order so the float
    accumulation order — hence the result, bit for bit — never depends
    on dict insertion order."""
    rows: Dict[int, List[float]] = {}
    out: List[List[float]] = []
    for counts in intervals:
        total = sum(counts.values())
        vec = [0.0] * dim
        if total:
            for block in sorted(counts):
                row = rows.get(block)
                if row is None:
                    row = rows[block] = _projection_row(block, dim, seed)
                weight = counts[block] / total
                for j in range(dim):
                    vec[j] += weight * row[j]
        out.append(vec)
    return out


# --------------------------------------------------------------------- #
# k-medoids.
# --------------------------------------------------------------------- #

def _distance_matrix(points: Sequence[Sequence[float]]
                     ) -> List[List[float]]:
    n = len(points)
    dist = [[0.0] * n for _ in range(n)]
    for i in range(n):
        pi = points[i]
        for j in range(i + 1, n):
            pj = points[j]
            d = 0.0
            for a, b in zip(pi, pj):
                diff = a - b
                d += diff * diff
            dist[i][j] = dist[j][i] = d
    return dist


def kmedoids(points: Sequence[Sequence[float]], k: int
             ) -> Tuple[List[int], List[int]]:
    """Cluster ``points`` around ``k`` medoids (squared-Euclidean).

    Deterministic end to end: farthest-first initialisation seeded from
    the 1-medoid (the point with the least total distance to all
    others), lowest-index tie-breaks in assignment and update, and
    medoid lists kept sorted between sweeps.  Returns
    ``(medoid_point_indices, assignment)`` where ``assignment[i]``
    indexes into the medoid list.
    """
    n = len(points)
    if n == 0:
        return [], []
    k = max(1, min(k, n))
    dist = _distance_matrix(points)

    totals = [sum(row) for row in dist]
    medoids = [min(range(n), key=lambda i: (totals[i], i))]
    nearest = dist[medoids[0]][:]
    while len(medoids) < k:
        chosen = max(range(n), key=lambda i: (nearest[i], -i))
        medoids.append(chosen)
        row = dist[chosen]
        for i in range(n):
            if row[i] < nearest[i]:
                nearest[i] = row[i]
    medoids.sort()

    def _assign() -> List[int]:
        return [min(range(len(medoids)),
                    key=lambda m: (dist[i][medoids[m]], m))
                for i in range(n)]

    assignment = _assign()
    for _ in range(_MAX_KMEDOIDS_ITER):
        refined = []
        for m in range(len(medoids)):
            members = [i for i in range(n) if assignment[i] == m]
            if not members:
                refined.append(medoids[m])
                continue
            refined.append(min(
                members,
                key=lambda i: (sum(dist[i][j] for j in members), i)))
        refined.sort()
        if refined == medoids:
            break
        medoids = refined
        assignment = _assign()
    return medoids, assignment


# --------------------------------------------------------------------- #
# Planning.
# --------------------------------------------------------------------- #

@dataclass
class SimpointPlan:
    """Which intervals to simulate in detail, and what each stands for.

    ``representatives`` maps an interval index to the exact number of
    instructions its cluster covers (its own interval plus every
    cluster-mate's, including short tail intervals) — the ``represents``
    weight the stitcher extrapolates by.
    """

    representatives: Dict[int, int] = field(default_factory=dict)
    medoids: List[int] = field(default_factory=list)
    assignment: List[int] = field(default_factory=list)
    interval_instructions: List[int] = field(default_factory=list)

    @property
    def clusters(self) -> int:
        return len(self.representatives)


def plan_simpoints(intervals: Sequence[Dict[int, int]], clusters: int,
                   bbv_dim: int,
                   seed: int = SIMPOINT_SEED) -> SimpointPlan:
    """Cluster profiled interval BBVs and choose one representative
    (the medoid) per cluster, weighted by the cluster's exact
    instruction span.  ``clusters`` caps at the interval count (every
    interval its own cluster degenerates to the periodic schedule)."""
    n = len(intervals)
    if n == 0:
        return SimpointPlan()
    points = project_intervals(intervals, bbv_dim, seed)
    medoids, assignment = kmedoids(points, clusters)
    insts = [sum(counts.values()) for counts in intervals]
    representatives: Dict[int, int] = {}
    for cluster, medoid in enumerate(medoids):
        span = sum(insts[i] for i in range(n)
                   if assignment[i] == cluster)
        if span:
            # A duplicated medoid (possible only when a refinement
            # sweep empties a cluster) merges its spans.
            representatives[medoid] = \
                representatives.get(medoid, 0) + span
    return SimpointPlan(representatives, medoids, assignment, insts)


__all__ = ["BBVCollector", "SIMPOINT_SEED", "SimpointPlan", "kmedoids",
           "plan_simpoints", "profile_intervals", "project_intervals"]
