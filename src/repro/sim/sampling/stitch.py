"""Stitch per-window statistics into whole-run statistics.

Each measurement window simulated ``measured`` committed instructions
in detail but *represents* a longer span of the run (its whole sampling
period). Stitching extrapolates every counter by the window's weight
``represents / measured`` and sums across windows — the standard
instruction-weighted-CPI estimator of sampled simulation:

    cycles_est = sum_i represents_i * (cycles_i / measured_i)
    IPC_est    = sum_i represents_i / cycles_est

A relative sampling-error estimate accompanies the result: the 95%
confidence half-width of the weighted mean CPI, from the between-window
variance of per-window CPI (0 when fewer than two windows exist). The
acceptance benchmarks cross-check this estimate against full-detail
runs on small budgets.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List

from repro.pipeline.stats import SimStats

#: Plain integer counters extrapolated by each window's weight.
_SCALED_COUNTERS = (
    "fetched", "dispatched", "issued", "wrong_path_executed",
    "correct_path_reexecuted", "branches", "branch_mispredictions",
    "recoveries", "exceptions_taken", "squashed", "checkpoints_created",
)


def stats_delta(after: SimStats, before: SimStats) -> SimStats:
    """Counter-wise ``after - before``: the statistics of the span
    simulated between two snapshots of the same core (used to strip a
    window's detailed-warmup prefix from its measurement)."""
    out = SimStats()
    for key, value in vars(after).items():
        base = getattr(before, key, 0)
        if isinstance(value, Counter):
            delta = Counter(value)
            delta.subtract(base)
            setattr(out, key, +delta)       # drop zero/negative entries
        elif isinstance(value, (int, float)) and not isinstance(value,
                                                                bool):
            setattr(out, key, value - base)
    return out


@dataclass
class IntervalResult:
    """One detailed measurement window."""

    start: int          # committed-instruction position of window start
    represents: int     # span of the run this window stands for
    stats: SimStats     # measured statistics (detail-warmup stripped)
    detail_cost: int = 0   # committed incl. warmup prefix (cost basis)

    def __post_init__(self) -> None:
        if not self.detail_cost:
            self.detail_cost = self.stats.committed

    @property
    def measured(self) -> int:
        return self.stats.committed

    @property
    def weight(self) -> float:
        return self.represents / self.measured if self.measured else 0.0

    @property
    def cpi(self) -> float:
        return (self.stats.cycles / self.stats.committed
                if self.stats.committed else 0.0)


def sampling_error(windows: List[IntervalResult]) -> float:
    """Relative 95% confidence half-width of the weighted mean CPI.

    Weighted by each window's represented span — the same weights the
    stitched IPC uses — with Bessel's correction via the effective
    sample size ``(sum w)^2 / sum w^2`` (reduces to the classic
    unweighted standard error when every window represents an equal
    span; a truncated tail window correspondingly counts for less).
    """
    live = [w for w in windows if w.measured]
    if len(live) < 2:
        return 0.0
    total = sum(w.represents for w in live)
    if not total:
        return 0.0
    weights = [w.represents / total for w in live]
    mean = sum(weight * w.cpi for weight, w in zip(weights, live))
    if mean == 0.0:
        return 0.0
    sum_sq = sum(weight * weight for weight in weights)
    n_eff = 1.0 / sum_sq
    if n_eff <= 1.0:
        return 0.0
    variance = (sum(weight * (w.cpi - mean) ** 2
                    for weight, w in zip(weights, live))
                * n_eff / (n_eff - 1.0))
    stderr = math.sqrt(variance / n_eff)
    return 1.96 * stderr / mean


def stitch(windows: List[IntervalResult],
           ff_instructions: int = 0) -> SimStats:
    """Combine measurement windows into one whole-run ``SimStats``."""
    out = SimStats()
    out.sampled = True
    out.ff_instructions = ff_instructions
    live = [w for w in windows if w.measured]
    out.sample_intervals = len(live)
    if not live:
        return out

    cycles = 0.0
    scaled = {name: 0.0 for name in _SCALED_COUNTERS}
    for window in live:
        weight = window.weight
        stats = window.stats
        out.committed += window.represents
        out.detail_instructions += window.detail_cost
        cycles += stats.cycles * weight
        for name in _SCALED_COUNTERS:
            scaled[name] += getattr(stats, name) * weight
        for cause, stall in stats.dispatch_stall_cycles.items():
            out.dispatch_stall_cycles[cause] += round(stall * weight)
        for reg, stall in stats.bank_stall_cycles.items():
            out.bank_stall_cycles[reg] += round(stall * weight)

    out.cycles = max(1, round(cycles))
    for name, value in scaled.items():
        setattr(out, name, round(value))
    out.sampling_error = sampling_error(live)
    return out


__all__ = ["IntervalResult", "sampling_error", "stats_delta", "stitch"]
