"""Stitch per-window statistics into whole-run statistics.

Each measurement window simulated ``measured`` committed instructions
in detail but *represents* a longer span of the run (its whole sampling
period). Stitching extrapolates every counter by the window's weight
``represents / measured`` and sums across windows — the standard
instruction-weighted-CPI estimator of sampled simulation:

    cycles_est = sum_i represents_i * (cycles_i / measured_i)
    IPC_est    = sum_i represents_i / cycles_est

A relative sampling-error estimate accompanies the result: the 95%
confidence half-width of the weighted mean CPI, from the
represents-weighted between-window sample variance of per-window CPI
(0 when fewer than two weighted windows exist). Because windows carry
very unequal weights under SimPoint clustering (a cluster of thirty
intervals weighs thirty times a singleton), both the variance and the
quantile use the *effective* sample size ``n_eff = (sum w)^2 / sum
w^2``: Bessel's correction divides by ``n_eff - 1``, and the 95%
quantile is Student's t at ``n_eff - 1`` degrees of freedom rather
than the normal 1.96 — with a handful of windows the normal quantile
understates the interval badly. For equal-weight (periodic) windows
``n_eff`` is the window count and the whole estimate reduces to the
classic unweighted t-based standard error; the stitched *counters* are
computed independently of the error estimate and are pinned
bit-identical by the unit tests. The acceptance benchmarks cross-check
the estimate against full-detail runs on small budgets.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List

from repro.pipeline.stats import SimStats

#: Plain integer counters extrapolated by each window's weight.
_SCALED_COUNTERS = (
    "fetched", "dispatched", "issued", "wrong_path_executed",
    "correct_path_reexecuted", "branches", "branch_mispredictions",
    "recoveries", "exceptions_taken", "squashed", "checkpoints_created",
)


def stats_delta(after: SimStats, before: SimStats) -> SimStats:
    """Counter-wise ``after - before``: the statistics of the span
    simulated between two snapshots of the same core (used to strip a
    window's detailed-warmup prefix from its measurement)."""
    out = SimStats()
    for key, value in vars(after).items():
        base = getattr(before, key, 0)
        if isinstance(value, Counter):
            delta = Counter(value)
            delta.subtract(base)
            setattr(out, key, +delta)       # drop zero/negative entries
        elif isinstance(value, (int, float)) and not isinstance(value,
                                                                bool):
            setattr(out, key, value - base)
    return out


@dataclass
class IntervalResult:
    """One detailed measurement window."""

    start: int          # committed-instruction position of window start
    represents: int     # span of the run this window stands for
    stats: SimStats     # measured statistics (detail-warmup stripped)
    detail_cost: int = 0   # committed incl. warmup prefix (cost basis)

    def __post_init__(self) -> None:
        if not self.detail_cost:
            self.detail_cost = self.stats.committed

    @property
    def measured(self) -> int:
        return self.stats.committed

    @property
    def weight(self) -> float:
        return self.represents / self.measured if self.measured else 0.0

    @property
    def cpi(self) -> float:
        return (self.stats.cycles / self.stats.committed
                if self.stats.committed else 0.0)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Lentz continued-fraction kernel of the regularized incomplete
    beta function (Numerical Recipes betacf)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 201):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-14:
            break
    return h


def _incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` (pure stdlib)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    front = math.exp(math.lgamma(a + b) - math.lgamma(a)
                     - math.lgamma(b) + a * math.log(x)
                     + b * math.log(1.0 - x))
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_critical(df: float, confidence: float = 0.95) -> float:
    """Two-sided ``confidence`` critical value of Student's t with
    (possibly fractional) ``df`` degrees of freedom, via bisection on
    the two-tail probability ``I_{df/(df+t^2)}(df/2, 1/2)``.
    Approaches the normal quantile (1.96 at 95%) as ``df`` grows."""
    if df <= 0.0:
        return float("inf")
    tail_target = 1.0 - confidence

    def two_tail(t: float) -> float:
        return _incomplete_beta(df / 2.0, 0.5, df / (df + t * t))

    lo, hi = 0.0, 2.0
    while two_tail(hi) > tail_target:
        hi *= 2.0
        if hi > 1e9:       # df << 1: the quantile is effectively
            return hi      # unbounded; report the cap, not a loop
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if two_tail(mid) > tail_target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def sampling_error(windows: List[IntervalResult]) -> float:
    """Relative 95% confidence half-width of the weighted mean CPI.

    Weighted by each window's represented span — the same weights the
    stitched IPC uses. The between-window sample variance uses
    Bessel's correction via the effective sample size ``n_eff = (sum
    w)^2 / sum w^2``, and the 95% quantile is Student's t at ``n_eff -
    1`` degrees of freedom: with the handful of very unequally
    weighted windows SimPoint clustering produces, the normal-quantile
    1.96 understates the interval badly, while for many equal-weight
    periodic windows the t quantile converges to it (a truncated tail
    window correspondingly counts for less). Windows with zero
    represented span contribute nothing to the stitched mean, so they
    are excluded from the variance and from ``n_eff`` too.
    """
    live = [w for w in windows if w.measured and w.represents]
    if len(live) < 2:
        return 0.0
    total = sum(w.represents for w in live)
    weights = [w.represents / total for w in live]
    mean = sum(weight * w.cpi for weight, w in zip(weights, live))
    if mean == 0.0:
        return 0.0
    sum_sq = sum(weight * weight for weight in weights)
    n_eff = 1.0 / sum_sq
    if n_eff <= 1.0:
        return 0.0
    variance = (sum(weight * (w.cpi - mean) ** 2
                    for weight, w in zip(weights, live))
                * n_eff / (n_eff - 1.0))
    stderr = math.sqrt(variance / n_eff)
    return student_t_critical(n_eff - 1.0) * stderr / mean


def stitch(windows: List[IntervalResult],
           ff_instructions: int = 0) -> SimStats:
    """Combine measurement windows into one whole-run ``SimStats``."""
    out = SimStats()
    out.sampled = True
    out.ff_instructions = ff_instructions
    live = [w for w in windows if w.measured]
    out.sample_intervals = len(live)
    if not live:
        return out

    cycles = 0.0
    scaled = {name: 0.0 for name in _SCALED_COUNTERS}
    for window in live:
        weight = window.weight
        stats = window.stats
        out.committed += window.represents
        out.detail_instructions += window.detail_cost
        cycles += stats.cycles * weight
        for name in _SCALED_COUNTERS:
            scaled[name] += getattr(stats, name) * weight
        for cause, stall in stats.dispatch_stall_cycles.items():
            out.dispatch_stall_cycles[cause] += round(stall * weight)
        for reg, stall in stats.bank_stall_cycles.items():
            out.bank_stall_cycles[reg] += round(stall * weight)

    out.cycles = max(1, round(cycles))
    for name, value in scaled.items():
        setattr(out, name, round(value))
    out.sampling_error = sampling_error(live)
    return out


__all__ = ["IntervalResult", "sampling_error", "stats_delta", "stitch",
           "student_t_critical"]
