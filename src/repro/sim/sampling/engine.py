"""The sampled-simulation engine: fast-forward, checkpoint, measure,
stitch.

``simulate_sampled`` interleaves the fast architectural emulator with
short detailed measurement windows:

1. **Fast-forward** — the emulator executes the functional stream at a
   small fraction of detailed-simulation cost while (optionally) the
   :class:`~repro.sim.sampling.warmup.WarmupEngine` trains the branch
   predictor, BTB and cache hierarchy from the exact PC / outcome /
   address history.
2. **Checkpoint** — at each window boundary the emulator's exact
   architectural state (PC, registers, memory) is snapshotted.
3. **Measure** — a fresh timing core (baseline/CPR/MSP, per the config)
   is seeded from the checkpoint, handed copies of the warm state, and
   cycle-simulated for the window's instruction budget.
4. **Stitch** — per-window statistics are weighted by the span each
   window represents and combined into whole-run statistics with a
   sampling-error estimate (:mod:`repro.sim.sampling.stitch`).

The ``simpoint`` schedule adds a phase-clustering pass in front: a
profiling emulator first sweeps the budget at near-emulator speed
collecting one basic-block vector per period
(:mod:`repro.sim.sampling.simpoint`), the intervals are clustered into
phases, and the main loop then measures *only* each cluster's
representative interval — weighting its window by the exact instruction
span of the whole cluster — while plain fast-forward (with warm-up)
carries execution across the non-representative intervals.

Determinism: the emulator and the timing cores commit identical
instruction streams (the oracle tests' contract), so a seeded window
measures exactly the region the schedule says it does, and the whole
procedure is a pure function of (program, config, budget) — which keeps
campaign cache keys sound for sampled cells.

The same determinism argument powers the **checkpoint store**
(:mod:`repro.sim.artifacts`): everything above except the measurement
windows themselves is *workload-side* — the window schedule, the
checkpoints and the warm state are independent of the machine the
windows will run on (the warm state depends only on the config's warm
*profile*). ``simulate_sampled`` therefore consults the store before
fast-forwarding: on a hit, the recorded windows are re-measured on this
config with zero functional execution (the campaign executor shares
one store, so an N-config grid pays fast-forward/profiling once); on a
miss, the run records and publishes its trace. The no-store path
(``REPRO_CHECKPOINTS=off`` or ``artifacts=False``) is the bit-exact
oracle: represented statistics are identical either way, with only the
``checkpoint_hits`` / ``ff_executed_instructions`` /
``ff_skipped_instructions`` provenance counters telling the two apart.
"""

from __future__ import annotations

import pickle
from typing import Optional, Tuple

from repro.defaults import default_sample_instructions
from repro.isa.emulator import Emulator, EmulatorState
from repro.obs import IntervalRecorder, default_metrics_interval, \
    window_counters, window_row
from repro.obs import span as _span
from repro.pipeline.stats import SimStats
from repro.sim.artifacts import (
    FunctionalTrace,
    TraceWindow,
    apply_delta,
    memory_delta,
    plan_key,
    profile_key,
    resolve_store,
    trace_key,
    warm_key,
    warm_profile_fingerprint,
)
from repro.sim.sampling.params import SamplingError, SamplingParams
from repro.sim.sampling.stitch import IntervalResult, stats_delta, stitch
from repro.sim.sampling.warmup import WarmupEngine


def _detail_config(config, warmup: bool):
    """The per-window core config: ``sample_mode="full"`` (which makes
    every other ``sample_*`` knob inert — the window itself is
    full-detail) and the all-lines cache pre-warm dropped whenever
    history-driven warm state will be injected instead."""
    return config.with_(
        sample_mode="full",
        warm_caches=False if warmup else config.warm_caches)


def _run_window(program, detail_config, checkpoint: EmulatorState,
                warm: Optional[WarmupEngine], measure: int,
                detail_warmup: int, own_warm: bool = False,
                metrics: bool = False, profile=None
                ) -> Tuple[SimStats, int, bool, Optional[dict]]:
    """Seed a fresh timing core from ``checkpoint`` and measure one
    window.

    The core first cycle-simulates ``detail_warmup`` unmeasured
    instructions (pipeline / store queue / CPR checkpoint state reach
    steady state), then ``measure`` measured ones; the warmup prefix is
    stripped by snapshot subtraction. Returns
    (measured stats, detailed-instruction cost, program_halted,
    metric row or None) — with ``metrics`` the window doubles as one
    interval of the time series (``pos``/``represents`` filled in by
    the caller).
    """
    from repro.sim.runner import build_core
    core = build_core(program, detail_config)
    core.seed_architectural_state(checkpoint)
    if warm is not None:
        # ``own_warm``: the caller hands the engine over (replay
        # unpickles a private engine per window), skipping install's
        # protective copies — the golden functional state they protect
        # does not exist there.
        (warm.hand_over if own_warm else warm.install)(core)
    baseline = None
    if detail_warmup:
        with _span(profile, "warmup"):
            core.run(max_instructions=detail_warmup)
        baseline = SimStats.from_dict(core.stats.to_dict())
    before = window_counters(core) if metrics else None
    with _span(profile, "detail"):
        core.run(max_instructions=core.stats.committed + measure)
    cost = core.stats.committed
    stats = (stats_delta(core.stats, baseline) if baseline is not None
             else core.stats)
    row = window_row(stats, before, core) if metrics else None
    return stats, cost, core.done, row


def _run_fallback(program, config, budget: int,
                  metrics: bool = False, profile=None) -> SimStats:
    """The no-windows degenerate case (program ended before any window
    could be measured): one full-detail run of the whole budget —
    exact, just unsampled."""
    from repro.sim.runner import build_core
    fallback = config.with_(
        sample_mode="full", warm_caches=config.warm_caches)
    core = build_core(program, fallback)
    recorder = None
    if metrics:
        recorder = IntervalRecorder(default_metrics_interval(budget))
        core.attach_metrics(recorder)
    with _span(profile, "detail"):
        stats = core.run(max_instructions=budget)
    stats.sampled = True
    stats.detail_instructions = stats.committed
    if recorder is not None:
        stats.interval_metrics = recorder.rows(core)
    return stats


def _replay(program, config, detail_config, params, budget: int,
            store, metrics: bool = False,
            profile=None) -> Optional[SimStats]:
    """Re-measure a stored functional trace on ``config``'s machine.

    Returns None on any miss (no trace, no warm blob for this config's
    warm profile, or a malformed payload) — the caller then takes the
    recording path. A hit executes **zero** functional instructions:
    each window's checkpoint is rebuilt from its sparse memory delta
    and its warm state unpickled from the profile-keyed warm blob.
    """
    tkey = trace_key(program, params, budget)
    with _span(profile, "store-read"):
        trace = store.get("trace", tkey)
    if not isinstance(trace, FunctionalTrace):
        return None
    warm_states = None
    if params.warmup and not trace.fallback:
        with _span(profile, "store-read"):
            warm_states = store.get(
                "warm", warm_key(tkey, warm_profile_fingerprint(config)))
        if not isinstance(warm_states, list) \
                or len(warm_states) != len(trace.windows):
            return None                 # this warm profile: record it
    if trace.fallback:
        stats = _run_fallback(program, config, budget, metrics=metrics,
                              profile=profile)
        stats.checkpoint_hits = 1
        stats.ff_skipped_instructions = trace.ff_instructions
        return stats
    initial = program.initial_memory
    windows = []
    metric_rows = [] if metrics else None
    for index, w in enumerate(trace.windows):
        with _span(profile, "replay"):
            checkpoint = EmulatorState(
                w.pc, list(w.regs), apply_delta(initial, w.mem_delta),
                retired=w.retired)
            warm = (pickle.loads(warm_states[index])
                    if warm_states is not None else None)
        stats, cost, _, row = _run_window(
            program, detail_config, checkpoint, warm, w.measure,
            w.warmup_n, own_warm=True, metrics=metrics, profile=profile)
        if metric_rows is not None and row is not None:
            row["pos"] = w.pos
            row["represents"] = w.represents
            metric_rows.append(row)
        windows.append(IntervalResult(w.pos, w.represents, stats,
                                      detail_cost=cost))
    out = stitch(windows, ff_instructions=trace.ff_instructions)
    out.checkpoint_hits = len(windows)
    out.ff_skipped_instructions = trace.ff_instructions
    if metric_rows is not None:
        out.interval_metrics = metric_rows
    return out


def simulate_sampled(program, config,
                     max_instructions: Optional[int] = None,
                     params: Optional[SamplingParams] = None,
                     artifacts=None, metrics=None,
                     profile=None) -> SimStats:
    """Run ``program`` on ``config``'s machine with sampled simulation
    and return stitched whole-run statistics.

    ``artifacts`` controls the checkpoint store
    (:func:`repro.sim.artifacts.resolve_store`): None defers to
    ``REPRO_CHECKPOINTS``/``REPRO_CACHE_DIR``, False forces the
    store-free oracle path, or pass an
    :class:`~repro.sim.artifacts.ArtifactStore` (the campaign executor
    hands every worker the store rooted at the run's cache directory).

    ``metrics`` (truthy) emits one interval-metrics row per measured
    window onto the result as a dynamic ``interval_metrics`` attribute
    (:mod:`repro.obs.metrics`); ``profile`` is an optional
    :class:`repro.obs.PhaseProfile` collecting ff / bbv-profile /
    warmup / detail / replay / store-read / store-write span timings.
    Both leave the represented statistics bit-identical — on and off.
    """
    params = params or SamplingParams.from_config(config) \
        or SamplingParams()
    budget = (max_instructions if max_instructions is not None
              else default_sample_instructions())
    if params.ff >= budget:
        raise SamplingError(
            f"sampling ff={params.ff} consumes the whole "
            f"{budget}-instruction budget; raise -n/--instructions or "
            f"lower --ff")
    detail_config = _detail_config(config, params.warmup)
    metrics = bool(metrics)

    store = resolve_store(artifacts)
    if store is not None:
        replayed = _replay(program, config, detail_config, params,
                           budget, store, metrics=metrics,
                           profile=profile)
        if replayed is not None:
            return replayed

    emulator = Emulator(program)
    # Fast-forward runs through Emulator.run_fast with the warm-up
    # engine fused into the predecoded dispatch loop (no per-retire
    # observer callback); checkpoints are taken copy-on-write and
    # released once the window core has been seeded, so their cost no
    # longer scales with the memory footprint.
    warm = WarmupEngine(config, program) if params.warmup else None

    windows = []
    # Store-recording side channel, populated in lockstep with
    # ``windows``: the schedule slot + checkpoint of each measured
    # window, and the warm state it ran with (pickled *before* the
    # post-window walk continues training it).
    trace_windows = []
    warm_blobs = []
    metric_rows = [] if metrics else None
    pos = 0
    ended = False

    if params.ff:
        with _span(profile, "ff"):
            result = emulator.run_fast(params.ff, warmup=warm)
        pos += result.retired
        ended = result.terminated

    profiled = 0
    profiled_skipped = 0
    if params.mode == "offset":
        if not ended and pos < budget:
            remaining = budget - pos
            warmup_n = min(params.detail_warmup, max(0, remaining - 1))
            measure = min(params.interval, remaining - warmup_n)
            checkpoint = emulator.snapshot(share=True)
            captured = warm_bytes = None
            if store is not None:
                # Capture between snapshot and release: the shared
                # memory dict is guaranteed point-in-time only while
                # the checkpoint is live.
                with _span(profile, "store-write"):
                    captured = (checkpoint.pc, list(checkpoint.regs),
                                memory_delta(program.initial_memory,
                                             checkpoint.memory),
                                checkpoint.retired)
                    if warm is not None:
                        warm_bytes = pickle.dumps(
                            warm, pickle.HIGHEST_PROTOCOL)
            stats, cost, _, row = _run_window(
                program, detail_config, checkpoint, warm,
                measure, warmup_n, metrics=metrics, profile=profile)
            checkpoint.release()
            if stats.committed:
                # Walk the functional stream over the represented span:
                # a program that ends before the budget must shrink the
                # window's weight to the instructions that exist. No
                # further window will run, so stop paying for warm-up.
                with _span(profile, "ff"):
                    result = emulator.run_fast(remaining)
                represents = (result.retired if result.terminated
                              else remaining)
                windows.append(IntervalResult(pos, represents, stats,
                                              detail_cost=cost))
                if metric_rows is not None and row is not None:
                    row["pos"] = pos
                    row["represents"] = represents
                    metric_rows.append(row)
                if store is not None:
                    trace_windows.append(TraceWindow(
                        pos, represents, measure, warmup_n, *captured))
                    if warm_bytes is not None:
                        warm_blobs.append(warm_bytes)
    else:
        representatives = None
        spans = None
        last_rep = -1
        if params.mode == "simpoint":
            # Phase-clustering pass: profile per-interval BBVs over a
            # separate emulator (near emulator speed — no warm-up, no
            # snapshots), then keep only each cluster's medoid
            # interval.  Both emulators execute the identical stream,
            # so the profiled interval lengths below place each
            # measured window exactly inside the interval the profile
            # attributed to it.  The profile and the plan are published
            # to (and served from) the artifact store independently of
            # the trace, so even a trace-missing run can skip the
            # profiling pass.
            from repro.sim.sampling.simpoint import plan_simpoints, \
                profile_intervals
            intervals = None
            pkey = lkey = None
            if store is not None:
                pkey = profile_key(program, budget, params.period,
                                   params.ff)
                with _span(profile, "store-read"):
                    cached = store.get("profile", pkey)
                if isinstance(cached, tuple) and len(cached) == 2:
                    intervals, profiled = cached
                    profiled_skipped = profiled
            if intervals is None:
                with _span(profile, "bbv-profile"):
                    intervals, profiled = profile_intervals(
                        program, budget, params.period, ff=params.ff)
                if store is not None:
                    with _span(profile, "store-write"):
                        store.put("profile", pkey, (intervals, profiled))
            plan = None
            if store is not None:
                lkey = plan_key(program, budget, params.period,
                                params.ff, params.clusters,
                                params.bbv_dim)
                with _span(profile, "store-read"):
                    plan = store.get("plan", lkey)
            if plan is None:
                with _span(profile, "bbv-profile"):
                    plan = plan_simpoints(intervals, params.clusters,
                                          params.bbv_dim)
                if store is not None:
                    with _span(profile, "store-write"):
                        store.put("plan", lkey, plan)
            representatives = plan.representatives
            # The profiler closes intervals at basic-block boundaries,
            # so each is `period` plus a small block overshoot; the
            # walk must advance by these exact lengths or the
            # representative windows drift out of their profiled
            # intervals as the overshoots accumulate.
            spans = plan.interval_instructions
            last_rep = max(representatives, default=-1)
        index = 0
        while not ended and pos < budget:
            if representatives is not None:
                if index > last_rep or index >= len(spans):
                    # Every cluster's representative has been measured
                    # and the remaining intervals' spans are already
                    # accounted to their clusters' weights (from the
                    # profile), so stop paying for the tail's walk and
                    # warm-up — the same no-further-window rule the
                    # offset schedule uses.
                    break
                span = spans[index]
                represents = representatives.get(index)
                index += 1
                if represents is None:
                    # Not a representative interval: its phase is
                    # already covered by its cluster's medoid, so just
                    # carry execution (and warm-up) across it.
                    with _span(profile, "ff"):
                        result = emulator.run_fast(span, warmup=warm)
                    pos += result.retired
                    if result.terminated:
                        break
                    continue
            else:
                period_end = min(pos + params.period, budget)
                span = period_end - pos
                represents = None
            # The detailed segment (warmup prefix + measured window)
            # sits at the end of the period so the functional gap in
            # front of it provides warm-up history; short tail periods
            # shrink the warmup prefix before the measured window.
            segment = min(params.detail_warmup + params.interval, span)
            warmup_n = max(0, segment - params.interval)
            measure = segment - warmup_n
            gap = span - segment
            if gap:
                with _span(profile, "ff"):
                    result = emulator.run_fast(gap, warmup=warm)
                pos += result.retired
                if result.terminated:
                    break
            checkpoint = emulator.snapshot(share=True)
            captured = warm_bytes = None
            if store is not None:
                with _span(profile, "store-write"):
                    captured = (checkpoint.pc, list(checkpoint.regs),
                                memory_delta(program.initial_memory,
                                             checkpoint.memory),
                                checkpoint.retired)
                    if warm is not None:
                        warm_bytes = pickle.dumps(
                            warm, pickle.HIGHEST_PROTOCOL)
            stats, cost, halted, row = _run_window(
                program, detail_config, checkpoint, warm,
                measure, warmup_n, metrics=metrics, profile=profile)
            checkpoint.release()
            if stats.committed == 0:
                break
            # Walk the functional stream through the detailed segment
            # so warm-up stays continuous and position stays exact.
            with _span(profile, "ff"):
                result = emulator.run_fast(segment, warmup=warm)
            if represents is None:
                represents = gap + (result.retired if result.terminated
                                    else segment)
            windows.append(IntervalResult(pos, represents, stats,
                                          detail_cost=cost))
            if metric_rows is not None and row is not None:
                row["pos"] = pos
                row["represents"] = represents
                metric_rows.append(row)
            if store is not None:
                trace_windows.append(TraceWindow(
                    pos, represents, measure, warmup_n, *captured))
                if warm_bytes is not None:
                    warm_blobs.append(warm_bytes)
            pos += result.retired
            if halted or result.terminated:
                break

    # The profiling pass is functional work too: charge it to the
    # fast-forward account so the cost books stay honest.
    ff_total = emulator.retired_total + profiled

    if not windows:
        # The program ended before any window could be measured (or the
        # budget was smaller than the schedule): fall back to a single
        # full-detail run of the whole budget — exact, just unsampled.
        stats = _run_fallback(program, config, budget, metrics=metrics,
                              profile=profile)
        stats.ff_executed_instructions = ff_total - profiled_skipped
        stats.ff_skipped_instructions = profiled_skipped
        if store is not None:
            with _span(profile, "store-write"):
                store.put("trace", trace_key(program, params, budget),
                          FunctionalTrace([], ff_total, fallback=True))
        return stats

    out = stitch(windows, ff_instructions=ff_total)
    out.ff_executed_instructions = ff_total - profiled_skipped
    out.ff_skipped_instructions = profiled_skipped
    if metric_rows is not None:
        out.interval_metrics = metric_rows
    if store is not None:
        with _span(profile, "store-write"):
            tkey = trace_key(program, params, budget)
            store.put("trace", tkey,
                      FunctionalTrace(trace_windows, ff_total))
            if warm_blobs:
                store.put(
                    "warm",
                    warm_key(tkey, warm_profile_fingerprint(config)),
                    warm_blobs)
    return out


__all__ = ["simulate_sampled"]
