"""Functional warm-up: train microarchitectural state from the
fast-forwarded instruction stream.

The paper's machines start each SimPoint after hundreds of millions of
instructions, so their predictors and caches are hot. The seed model
approximated this by pre-touching *every* instruction and data line
(``SimConfig.warm_caches``) and starting predictors cold. The
:class:`WarmupEngine` replaces that approximation with history-driven
warm-up: it is installed as the emulator's per-instruction observer, so
the exact PC / branch-outcome / address stream that leads up to a
measurement window drives

* the I-cache (one fetch probe per retired instruction),
* the D-cache + L2 (demand loads, committed stores),
* the direction predictor (predict -> train -> repair, exactly the
  speculative-history discipline the timing cores use),
* the BTB (indirect-jump targets), and
* CPR's JRS confidence estimator (always trained, so the warm state is
  arch-independent and shareable across a campaign grid; non-CPR cores
  ignore it at install).

Each measurement window receives *copies* of the warm structures
(:meth:`install`), so the window's own (speculative, possibly
wrong-path) training never pollutes the golden functional state that
later windows continue from.
"""

from __future__ import annotations

import pickle

from repro.branch import BranchTargetBuffer, ConfidenceEstimator, \
    make_predictor
from repro.isa.opcodes import Op
from repro.memory.cache import MemoryHierarchy


class WarmupEngine:
    """Observer that warms predictor/BTB/caches from a functional
    stream, and injects copies of them into detailed cores.

    Two drive modes, bit-identical by construction (and by the oracle
    tests):

    * as the emulator's per-retire ``observer`` (this class's
      ``__call__`` — the readable reference discipline: predict,
      update, repair-on-mispredict);
    * fused into ``Emulator.run_fast(budget, warmup=self)``, where the
      predecoded kind dispatch drives ``predictor.train`` / BTB /
      cache probes directly with no per-instruction callback — the
      sampled engine's fast-forward path.
    """

    def __init__(self, config, program=None) -> None:
        self.hierarchy = MemoryHierarchy.from_config(config)
        if program is not None and config.warm_caches:
            # Match the full-detail reference's initial state (the
            # all-lines SimPoint approximation); the functional history
            # then refines recency/LRU and dirty state on top of it.
            # Without this, early windows pay compulsory misses the
            # full-detail comparator never sees.
            self.hierarchy.warm(range(len(program)),
                                program.memory_line_addrs)
        self.predictor = make_predictor(config.predictor,
                                        **config.predictor_kwargs)
        self.btb = BranchTargetBuffer()
        # Trained unconditionally (not just for CPR targets): the
        # estimator's state is then a pure function of the stream and
        # the warm *profile* — never of the target arch — so every
        # machine in a campaign grid shares one stored warm blob
        # (repro.sim.artifacts). Non-CPR cores accept and ignore it at
        # install time; CPR re-stamps its own threshold there.
        self.confidence = ConfidenceEstimator(
            threshold=config.confidence_threshold)
        self.instructions = 0
        # One fetch probe per *line*, not per instruction: consecutive
        # PCs on the same line are LRU no-ops (the line is already MRU),
        # and an L1I hit never touches the shared L2, so deduping them
        # leaves the cache contents bit-identical while skipping ~7/8
        # of the probes (8 words per 64 B line).
        #
        # The dedup granule must mirror Cache._locate's shift-based
        # line mapping exactly, or probes get grouped across real line
        # boundaries and the warmed contents silently diverge from the
        # timing cores'.  Cache effectively rounds a non-power-of-two
        # line size *down* to a power of two (it shifts byte addresses
        # by floor(log2(line_bytes))), so round the word count the same
        # way instead of assuming it is already a power of two; lines
        # narrower than one 8-byte word cannot be expressed in word-
        # granular probes at all, so reject them.
        if config.line_bytes < 8:
            raise ValueError(
                f"line_bytes={config.line_bytes} is narrower than one "
                f"8-byte word; the warm-up fetch dedup (and the "
                f"word-granular caches) need at least one word per line")
        words_per_line = config.line_bytes // 8
        if words_per_line & (words_per_line - 1):
            words_per_line = 1 << (words_per_line.bit_length() - 1)
        self._line_shift = words_per_line.bit_length() - 1
        self._last_fetch_line = -1

    # ------------------------------------------------------------------ #
    # Emulator observer protocol: one call per retired instruction.
    # ------------------------------------------------------------------ #

    def __call__(self, pc, inst, taken, mem_addr, next_pc) -> None:
        self.instructions += 1
        line = pc >> self._line_shift
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            self.hierarchy.instruction_latency(pc)
        if taken is not None:                       # conditional branch
            prediction = self.predictor.predict(pc)
            correct = prediction.taken == taken
            self.predictor.update(prediction, taken)
            if not correct:
                # Repair speculative global history with the outcome,
                # mirroring OutOfOrderCore._resolve_control.
                prediction.taken = taken
                self.predictor.restore(prediction)
            if self.confidence is not None:
                self.confidence.update(pc, correct=correct, taken=taken)
        elif inst.op is Op.JR:
            predicted = self.btb.predict(pc)
            self.btb.update(pc, next_pc, predicted == next_pc)
        elif mem_addr is not None:
            if inst.is_store:
                self.hierarchy.store_commit(mem_addr)
            else:
                self.hierarchy.load_latency(mem_addr)

    # ------------------------------------------------------------------ #

    def install(self, core) -> None:
        """Hand ``core`` private copies of the warm structures. The
        predictor uses its own structure-aware ``clone`` (TAGE's tables
        make generic deep-copying the engine's dominant overhead); the
        rest are small and go through the C pickler, which beats
        ``copy.deepcopy`` ~3x on pure-data counter tables."""
        clone = pickle.loads(pickle.dumps(
            (self.btb, self.hierarchy, self.confidence),
            pickle.HIGHEST_PROTOCOL))
        core.install_warm_state(predictor=self.predictor.clone(),
                                btb=clone[0], hierarchy=clone[1],
                                confidence=clone[2])

    def hand_over(self, core) -> None:
        """:meth:`install` without the protective copies: transfers the
        structures themselves.  Only sound when this engine is private
        to the window and discarded afterwards — the checkpoint-store
        replay path, which unpickles one throwaway engine per window,
        uses this to skip a full TAGE clone per window."""
        core.install_warm_state(predictor=self.predictor, btb=self.btb,
                                hierarchy=self.hierarchy,
                                confidence=self.confidence)


__all__ = ["WarmupEngine"]
