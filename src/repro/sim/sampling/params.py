"""Sampling parameters: how a run is split into fast-forward and
detailed measurement windows.

Three window schedules are supported (all SMARTS/SimPoint lineage):

* ``periodic`` — the run is divided into back-to-back periods of
  ``period`` committed instructions; the *last* ``interval``
  instructions of each period are simulated in detail (so every window
  has ``period - interval`` instructions of functional warm-up history
  behind it), and the window's statistics represent the whole period.
* ``offset`` — fast-forward ``ff`` instructions once, then simulate a
  single ``interval``-instruction window that represents the rest of
  the budget (the classic fast-forward-then-measure scheme).
* ``simpoint`` — the same ``period``-sized intervals as ``periodic``,
  but a fast profiling pass first collects one basic-block vector per
  interval, k-medoids clusters them into ``clusters`` phases
  (:mod:`repro.sim.sampling.simpoint`), and only each cluster's
  representative interval is simulated in detail — with its window's
  statistics weighted by the whole cluster's instruction span.  Cuts
  detailed work by roughly ``interval_count / clusters`` relative to
  ``periodic`` at equal represented budget.

``ff`` also applies to ``periodic``/``simpoint`` as an initial skip
before the first period. ``warmup`` controls whether the functional
stream trains the branch predictor, BTB and cache hierarchy during
fast-forward. ``detail_warmup`` prepends that many *detailed*
(cycle-simulated but unmeasured) instructions to every window: the
pipeline, store queue and — critically for CPR — the live checkpoint
set reach steady state before measurement begins, which removes the
cold-window bias that short windows otherwise give imprecise-recovery
machines. ``clusters`` and ``bbv_dim`` (phase count and BBV
random-projection dimension) only shape ``simpoint`` schedules but are
carried — and cache-keyed — for every mode.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.defaults import env_int

MODES = ("periodic", "offset", "simpoint")

#: ``REPRO_SAMPLE`` spellings that enable / disable sampling; anything
#: else is rejected rather than silently interpreted.
_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("", "0", "false", "no", "off", "full")


class SamplingError(ValueError):
    """An invalid sampling schedule (flags, env, or config fields).

    A dedicated subtype so the CLI's "bad sampling parameters" handler
    cannot accidentally swallow an internal simulator ``ValueError``
    raised mid-run and mislabel it as a user input error."""


@dataclass(frozen=True)
class SamplingParams:
    """Complete description of one sampling schedule."""

    mode: str = "periodic"
    ff: int = 0
    interval: int = 1000
    period: int = 10_000
    warmup: bool = True
    detail_warmup: int = 500
    clusters: int = 4
    bbv_dim: int = 32

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise SamplingError(f"unknown sampling mode {self.mode!r}; "
                                f"choose from {MODES}")
        if self.ff < 0:
            raise SamplingError("sampling ff must be >= 0")
        if self.interval < 1:
            raise SamplingError("sampling interval must be >= 1")
        if self.detail_warmup < 0:
            raise SamplingError("sampling detail_warmup must be >= 0")
        if self.mode in ("periodic", "simpoint") \
                and self.period < self.interval:
            raise SamplingError("sampling period must be >= interval")
        if self.clusters < 1:
            raise SamplingError("sampling clusters must be >= 1")
        if self.bbv_dim < 1:
            raise SamplingError("sampling bbv_dim must be >= 1")

    # ------------------------------------------------------------------ #
    # SimConfig round-trip: the sampling schedule lives in the config so
    # it feeds ``SimConfig.cache_key`` and ships with campaign jobs.
    # ------------------------------------------------------------------ #

    def apply(self, config):
        """Copy ``config`` with this schedule recorded in its
        ``sample_*`` fields (perturbing its cache key)."""
        return config.with_(sample_mode=self.mode, sample_ff=self.ff,
                            sample_interval=self.interval,
                            sample_period=self.period,
                            sample_warmup=self.warmup,
                            sample_detail_warmup=self.detail_warmup,
                            sample_clusters=self.clusters,
                            sample_bbv_dim=self.bbv_dim)

    @classmethod
    def from_config(cls, config) -> Optional["SamplingParams"]:
        """The schedule recorded in ``config``, or None for full
        detail."""
        if config.sample_mode == "full":
            return None
        return cls(mode=config.sample_mode, ff=config.sample_ff,
                   interval=config.sample_interval,
                   period=config.sample_period,
                   warmup=config.sample_warmup,
                   detail_warmup=config.sample_detail_warmup,
                   clusters=config.sample_clusters,
                   bbv_dim=config.sample_bbv_dim)

    # ------------------------------------------------------------------ #
    # Environment / CLI construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_env(cls, assume_enabled: bool = False
                 ) -> Optional["SamplingParams"]:
        """Schedule from ``REPRO_SAMPLE`` (+ ``REPRO_SAMPLE_FF`` /
        ``_INTERVAL`` / ``_PERIOD`` / ``_WARMUP`` /
        ``_DETAIL_WARMUP``), or None when ``REPRO_SAMPLE`` is
        unset/falsy. ``assume_enabled`` parses the knob variables even
        then (for CLI flags that enable sampling themselves — the
        knobs must not be silent no-ops just because ``REPRO_SAMPLE``
        is unset). Unrecognised spellings raise rather than silently
        switching every simulation to sampled mode."""
        raw = os.environ.get("REPRO_SAMPLE", "").lower()
        if raw in _FALSY:
            if not assume_enabled:
                return None
            mode = "periodic"
        elif raw in MODES:
            mode = raw
        elif raw in _TRUTHY:
            mode = "periodic"
        else:
            raise SamplingError(
                f"unrecognised REPRO_SAMPLE value {raw!r}; use one of "
                f"{_TRUTHY + MODES} (or {_FALSY[1:]} to disable)")
        raw_warmup = os.environ.get("REPRO_SAMPLE_WARMUP", "1").lower()
        if raw_warmup in _TRUTHY:
            warmup = True
        elif raw_warmup in _FALSY[:-1]:        # "full" makes no sense
            warmup = False
        else:
            raise SamplingError(
                f"unrecognised REPRO_SAMPLE_WARMUP value "
                f"{raw_warmup!r}; use one of {_TRUTHY} or "
                f"{_FALSY[1:-1]}")
        base = cls()
        return cls(mode=mode, ff=env_int("REPRO_SAMPLE_FF", base.ff),
                   interval=env_int("REPRO_SAMPLE_INTERVAL",
                                    base.interval),
                   period=env_int("REPRO_SAMPLE_PERIOD", base.period),
                   warmup=warmup,
                   detail_warmup=env_int("REPRO_SAMPLE_DETAIL_WARMUP",
                                         base.detail_warmup),
                   clusters=env_int("REPRO_SAMPLE_CLUSTERS",
                                    base.clusters),
                   bbv_dim=env_int("REPRO_SAMPLE_BBV_DIM",
                                   base.bbv_dim))

    @classmethod
    def from_cli(cls, sample: Union[bool, str, None] = False,
                 ff: Optional[int] = None,
                 interval: Optional[int] = None,
                 period: Optional[int] = None,
                 clusters: Optional[int] = None,
                 bbv_dim: Optional[int] = None
                 ) -> Optional["SamplingParams"]:
        """Combine ``--sample [MODE]/--ff/--interval/--period/
        --clusters/--bbv-dim`` flags with the ``REPRO_SAMPLE*``
        environment. Any flag enables sampling. Bare ``--sample``
        selects periodic windows and ``--sample simpoint``/``offset``
        the named mode; when sampling is enabled by the knob flags
        alone, ``--clusters``/``--bbv-dim`` imply the simpoint schedule
        they configure and ``--ff`` the single fixed-offset window —
        but when the environment (or ``--sample``) already chose a
        schedule, the knobs only override their own fields."""
        base = cls.from_env()
        if not (sample or ff is not None or interval is not None
                or period is not None or clusters is not None
                or bbv_dim is not None):
            return base
        if base is None:
            # Sampling enabled by flags alone: the REPRO_SAMPLE_* knob
            # variables still apply (they only lack the on-switch).
            base = cls.from_env(assume_enabled=True)
            if not sample:
                if clusters is not None or bbv_dim is not None:
                    # The clustering knobs only mean anything under the
                    # simpoint schedule they parameterise.
                    base = replace(base, mode="simpoint")
                elif ff is not None and period is None:
                    # --ff alone means one fixed-offset window;
                    # --period only exists for the window schedules, so
                    # its presence keeps the schedule periodic (with
                    # --ff as initial skip).
                    base = replace(base, mode="offset")
        overrides = {}
        if sample:
            overrides["mode"] = (sample if isinstance(sample, str)
                                 else "periodic")
        if ff is not None:
            overrides["ff"] = ff
        if interval is not None:
            overrides["interval"] = interval
        if period is not None:
            overrides["period"] = period
        if clusters is not None:
            overrides["clusters"] = clusters
        if bbv_dim is not None:
            overrides["bbv_dim"] = bbv_dim
        return replace(base, **overrides)

    @classmethod
    def coerce(cls, value) -> Optional["SamplingParams"]:
        """Normalise the ``sampling=`` argument accepted by the runner
        and harnesses: None/False -> None, True -> defaults, a mode
        string, a dict of fields, or an existing instance."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(f"cannot interpret sampling={value!r}")


__all__ = ["MODES", "SamplingError", "SamplingParams"]
