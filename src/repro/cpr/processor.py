"""CPR: Checkpoint Processing and Recovery (Akkary, Rajwar, Srinivasan).

The paper's main comparator (Table I column 2): a ROB-free machine with

* up to 8 checkpoints allocated at low-confidence branches (JRS
  estimator) plus an interval guard,
* 192 + 192 physical registers released aggressively through reference
  counters (a register frees as soon as it has been superseded, its value
  consumed by every reader, and its writer has completed — possibly long
  before the writer commits),
* bulk commit of whole checkpoint intervals (no retire-width limit),
* **imprecise recovery**: a mispredicted branch or exception rolls back
  to the youngest checkpoint at or before the faulting instruction,
  squashing and later re-executing any correct-path instructions between
  the checkpoint and the fault — the cost MSP eliminates,
* the hierarchical store queue, whose L2 must be scanned on rollback
  (modelled as an extra redirect delay when the L2 holds squashed
  entries).

Reference-count holds on a physical register P:

1. mapping hold — the RAT currently maps some logical register to P;
2. checkpoint holds — one per live checkpoint whose snapshot maps P;
3. reader holds — one per dispatched, not-yet-issued reader of P;
4. writer hold — P's producer has dispatched but not completed.

Rollback rebuilds all counts from those rules over the surviving state,
which keeps recovery correct without shadow free-list machinery.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.confidence import ConfidenceEstimator
from repro.cpr.checkpoint import Checkpoint
from repro.isa.opcodes import Op
from repro.isa.registers import NUM_INT_REGS, NUM_LOGICAL_REGS, is_int_reg
from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore
from repro.pipeline.dyninst import DynInst


class CPRProcessor(OutOfOrderCore):
    """Checkpoint Processing and Recovery machine."""

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        num_phys = config.phys_int + config.phys_fp
        self.num_phys = num_phys
        self.phys_value: List = [0] * num_phys
        self.phys_ready: List[bool] = [True] * num_phys
        self.refcount: List[int] = [0] * num_phys

        self.rat: List[int] = [0] * NUM_LOGICAL_REGS
        for lr in range(NUM_LOGICAL_REGS):
            if is_int_reg(lr):
                self.rat[lr] = lr
            else:
                self.rat[lr] = config.phys_int + (lr - NUM_INT_REGS)
                self.phys_value[self.rat[lr]] = 0.0
            self.refcount[self.rat[lr]] += 1  # mapping hold

        self.int_free: List[int] = list(
            range(NUM_INT_REGS, config.phys_int))
        self.fp_free: List[int] = list(
            range(config.phys_int + NUM_INT_REGS, num_phys))

        self.confidence = ConfidenceEstimator(
            threshold=config.confidence_threshold)

        if self._sched_event:
            # Direct tables for the event scheduler: readiness checks,
            # side-effect-free peeks and result writes all index the
            # flat register file.  ``read_operand`` stays virtual — it
            # releases the reader's reference count.
            self._ready_table = self.phys_ready
            self._value_table = self.phys_value

        # Initial checkpoint covers the start of the program.
        initial = Checkpoint(seq=-1, resume_pc=program.entry,
                             rat_snapshot=list(self.rat))
        self._hold_snapshot(initial.rat_snapshot)
        self.checkpoints: List[Checkpoint] = [initial]
        self._since_checkpoint = 0
        #: low-confidence branches left uncovered because all checkpoints
        #: were in use.
        self.checkpoints_missed = 0

    # ------------------------------------------------------------------ #
    # Reference counting.
    # ------------------------------------------------------------------ #

    def _hold_snapshot(self, snapshot: List[int]) -> None:
        for handle in snapshot:
            self.refcount[handle] += 1

    def _release(self, handle: int) -> None:
        count = self.refcount[handle] - 1
        if count < 0:
            raise AssertionError(f"refcount underflow on phys {handle}")
        self.refcount[handle] = count
        if count == 0:
            self._free_list_for_handle(handle).append(handle)

    def _free_list_for_handle(self, handle: int) -> List[int]:
        return (self.int_free if handle < self.config.phys_int
                else self.fp_free)

    def _free_list_for_logical(self, logical: int) -> List[int]:
        return self.int_free if is_int_reg(logical) else self.fp_free

    # ------------------------------------------------------------------ #
    # Registers.
    # ------------------------------------------------------------------ #

    def handle_ready(self, handle: int) -> bool:
        return self.phys_ready[handle]

    def seed_register(self, logical: int, value) -> None:
        # Identity initial mapping (refcounts unaffected: the mapping
        # and initial-checkpoint holds were taken at construction).
        self.phys_value[self.rat[logical]] = value

    def on_seeded(self, pc: int) -> None:
        # The initial checkpoint must resume at the checkpointed PC,
        # not the program entry, if a rollback reaches it.
        self.checkpoints[0].resume_pc = pc

    def install_warm_state(self, predictor=None, btb=None,
                           hierarchy=None, confidence=None) -> None:
        super().install_warm_state(predictor, btb, hierarchy)
        if confidence is not None:
            confidence.threshold = self.config.confidence_threshold
            self.confidence = confidence

    def read_operand(self, handle: int):
        value = self.phys_value[handle]
        self._release(handle)  # reader hold consumed at issue
        return value

    def peek_operand(self, handle: int):
        return self.phys_value[handle]

    def write_result(self, di: DynInst) -> None:
        self.phys_value[di.dest_handle] = di.result
        self.phys_ready[di.dest_handle] = True

    def on_complete(self, di: DynInst) -> None:
        if di.inst.writes_reg:
            self._release(di.dest_handle)  # writer hold
        owner = di.tag
        if isinstance(owner, Checkpoint) and owner.alive:
            owner.outstanding -= 1

    # ------------------------------------------------------------------ #
    # Checkpoint placement.
    # ------------------------------------------------------------------ #

    def _needs_checkpoint(self, di: DynInst) -> bool:
        inst = di.inst
        if inst.is_branch or inst.op is Op.JR:
            return not self.confidence.is_confident(di.pc)
        return self._since_checkpoint >= self.config.checkpoint_max_interval

    def on_branch_resolved(self, di: DynInst, mispredicted: bool) -> None:
        self.confidence.update(di.pc, correct=not mispredicted,
                               taken=di.actual_taken)

    # ------------------------------------------------------------------ #
    # Dispatch.
    # ------------------------------------------------------------------ #

    def dispatch_blocked(self, di: DynInst, moved: int) -> Optional[str]:
        inst = di.inst
        # Memoise the checkpoint decision across stalled retries so the
        # confidence estimator is queried once per dynamic branch.
        if di.tag is None:
            di.tag = ("decision", self._needs_checkpoint(di))
        if inst.writes_reg and not self._free_list_for_logical(inst.dest):
            return "registers_full"
        return None

    def rename(self, di: DynInst) -> None:
        inst = di.inst
        needs_checkpoint = di.tag[1]
        self._since_checkpoint += 1
        if needs_checkpoint:
            # Best effort: with all 8 checkpoints live the instruction
            # proceeds uncovered and a misprediction simply rolls back
            # further (CPR's fundamental imprecision).
            if len(self.checkpoints) < self.config.checkpoints:
                self._create_checkpoint(di)
            else:
                self.checkpoints_missed += 1

        owner = self._owner_checkpoint(di.seq)
        di.tag = owner
        owner.outstanding += 1

        di.src_handles = [self.rat[src] for src in inst.srcs]
        for handle in di.src_handles:
            self.refcount[handle] += 1  # reader hold
        if inst.writes_reg:
            new = self._free_list_for_logical(inst.dest).pop()
            self.phys_ready[new] = False
            self.refcount[new] = 2      # mapping + writer holds
            old = self.rat[inst.dest]
            self.rat[inst.dest] = new
            di.dest_handle = new
            self._release(old)          # superseded mapping

    def _create_checkpoint(self, di: DynInst) -> None:
        inst = di.inst
        if inst.is_control:
            checkpoint = Checkpoint(seq=di.seq,
                                    resume_pc=di.predicted_target,
                                    rat_snapshot=list(self.rat),
                                    at_branch=True,
                                    history_base=di.ghr_at_fetch,
                                    branch_di=di if inst.is_branch else None)
        else:
            checkpoint = Checkpoint(seq=di.seq - 1, resume_pc=di.pc,
                                    rat_snapshot=list(self.rat),
                                    history_base=di.ghr_at_fetch)
        self._hold_snapshot(checkpoint.rat_snapshot)
        self.checkpoints.append(checkpoint)
        self.stats.checkpoints_created += 1
        self._since_checkpoint = 0

    def _owner_checkpoint(self, seq: int) -> Checkpoint:
        for checkpoint in reversed(self.checkpoints):
            if checkpoint.seq < seq:
                return checkpoint
        raise AssertionError("no covering checkpoint")

    def on_dispatch_stall(self, reason: str) -> None:
        """Forward-progress guard: if dispatch is blocked on a full
        resource while the open interval (past the youngest checkpoint)
        holds everything in flight, nothing can ever commit — close the
        interval with a checkpoint at the stall point."""
        if len(self.checkpoints) >= self.config.checkpoints:
            return
        if not self.fetch.buffer:
            return
        head = self.fetch.buffer[0]
        youngest = self.checkpoints[-1]
        if youngest.seq >= head.seq - 1:
            return  # interval already closed here
        checkpoint = Checkpoint(seq=head.seq - 1, resume_pc=head.pc,
                                rat_snapshot=list(self.rat),
                                history_base=head.ghr_at_fetch)
        self._hold_snapshot(checkpoint.rat_snapshot)
        self.checkpoints.append(checkpoint)
        self.stats.checkpoints_created += 1
        self._since_checkpoint = 0

    def assign_state_tag(self, di: DynInst) -> None:
        # NOP/HALT never execute, so they do not join an outstanding
        # count; they bulk-commit with whatever interval contains them.
        di.tag = None

    # ------------------------------------------------------------------ #
    # Commit: bulk, one whole checkpoint interval at a time.
    # ------------------------------------------------------------------ #

    def commit_stage(self, now: int) -> None:
        while len(self.checkpoints) >= 2:
            oldest, closing = self.checkpoints[0], self.checkpoints[1]
            if oldest.outstanding != 0:
                return
            if not self._commit_interval(closing.seq, now):
                return
            # Release the oldest checkpoint.
            self.checkpoints.pop(0)
            oldest.alive = False
            for handle in oldest.rat_snapshot:
                self._release(handle)
        self._drain_if_halted(now)

    def _commit_interval(self, seq_bound: int, now: int) -> bool:
        """Commit every in-flight instruction with seq <= seq_bound.

        Pre-scans for planned exceptions: CPR takes an exception only via
        rollback to the preceding checkpoint, so nothing in the interval
        may commit if it contains one.
        """
        count = 0
        for di in self.in_flight:
            if di.seq > seq_bound:
                break
            count += 1
        offset = self.pending_exception_offset(count)
        if offset is not None:
            victim = self.in_flight[offset]
            ordinal = self.commit_ordinal + offset
            self._exceptions_taken.add(ordinal)
            self.stats.exceptions_taken += 1
            self.stats.recoveries += 1
            self.take_exception(victim, now)
            return False
        for _ in range(count):
            di = self.in_flight.popleft()
            self.commit_one(di, now)
            if self.done:
                break
        self.sq.commit_up_to(seq_bound, self.commit_store_write)
        return not self.done

    def _drain_if_halted(self, now: int) -> None:
        """Commit the open interval past the youngest checkpoint once the
        program has halted and everything in flight has executed."""
        if not (self.fetch.halted and not self.fetch.buffer
                and self.in_flight):
            return
        if any(not di.completed for di in self.in_flight):
            return
        last_seq = self.in_flight[-1].seq
        if self._commit_interval(last_seq, now):
            while len(self.checkpoints) > 1:
                stale = self.checkpoints.pop(0)
                stale.alive = False
                for handle in stale.rat_snapshot:
                    self._release(handle)

    # ------------------------------------------------------------------ #
    # Recovery: roll back to a checkpoint (imprecise).
    # ------------------------------------------------------------------ #

    def recover_from_branch(self, di: DynInst, now: int) -> None:
        target = self._youngest_checkpoint_at_or_before(di.seq)
        if target.seq == di.seq:
            # Checkpoint at this very branch: resume at the resolved
            # target, and make that the checkpoint's resume PC — the
            # branch itself survives the rollback, so any later rollback
            # to this checkpoint must follow the now-architectural
            # outcome, not the disproven prediction.
            resume_pc = di.actual_target
            target.resume_pc = di.actual_target
        else:
            resume_pc = target.resume_pc
        self._rollback(target, fault_seq=di.seq, resume_pc=resume_pc,
                       now=now)

    def take_exception(self, di: DynInst, now: int) -> None:
        target = self._youngest_checkpoint_strictly_before(di.seq)
        self._rollback(target, fault_seq=FAULT_NONE,
                       resume_pc=target.resume_pc, now=now)

    def _youngest_checkpoint_at_or_before(self, seq: int) -> Checkpoint:
        for checkpoint in reversed(self.checkpoints):
            if checkpoint.seq <= seq:
                return checkpoint
        raise AssertionError("no covering checkpoint")

    def _youngest_checkpoint_strictly_before(self, seq: int) -> Checkpoint:
        for checkpoint in reversed(self.checkpoints):
            if checkpoint.seq < seq:
                return checkpoint
        raise AssertionError("no covering checkpoint")

    def _rollback(self, target: Checkpoint, fault_seq: int,
                  resume_pc: int, now: int) -> None:
        # The L2 store-queue scan cost: squashing while stores overflowed
        # into the second level delays the redirect.
        l2_occupied = (self.sq.l1_capacity is not None
                       and len(self.sq) > self.sq.l1_capacity)
        penalty = self.config.l2sq_squash_penalty if l2_occupied else 0

        while self.checkpoints and self.checkpoints[-1].seq > target.seq:
            dead = self.checkpoints.pop()
            dead.alive = False

        squashed = self.squash_after(target.seq, fault_seq)
        for di in squashed:
            owner = di.tag
            if (isinstance(owner, Checkpoint) and owner.alive
                    and not di.completed):
                owner.outstanding -= 1

        self.rat = list(target.rat_snapshot)
        self._rebuild_refcounts()
        self._restore_history(target)
        self.fetch.redirect(resume_pc, now + penalty)

    def _restore_history(self, target: Checkpoint) -> None:
        """Restore predictor global history to the rollback point."""
        if target.history_base is None:
            return
        branch = target.branch_di
        if branch is not None:
            taken = (branch.actual_taken if branch.completed
                     else branch.predicted_taken)
            self.predictor.set_history_appended(target.history_base, taken)
        else:
            self.predictor.set_history(target.history_base)

    def _rebuild_refcounts(self) -> None:
        """Recompute every hold from rules 1-4 over surviving state."""
        counts = [0] * self.num_phys
        for handle in self.rat:
            counts[handle] += 1
        for checkpoint in self.checkpoints:
            for handle in checkpoint.rat_snapshot:
                counts[handle] += 1
        for di in self.in_flight:
            inst = di.inst
            if not di.issued:
                for handle in di.src_handles:
                    counts[handle] += 1
            if inst.writes_reg and not di.completed:
                counts[di.dest_handle] += 1
        self.refcount = counts
        self.int_free = [h for h in range(self.config.phys_int)
                         if counts[h] == 0]
        self.fp_free = [h for h in range(self.config.phys_int, self.num_phys)
                        if counts[h] == 0]
