"""CPR: Checkpoint Processing and Recovery (Akkary, Rajwar, Srinivasan).

The paper's main comparator (Table I column 2): a ROB-free machine with

* up to 8 checkpoints allocated at low-confidence branches (JRS
  estimator) plus an interval guard,
* 192 + 192 physical registers released aggressively through reference
  counters (a register frees as soon as it has been superseded, its value
  consumed by every reader, and its writer has completed — possibly long
  before the writer commits),
* bulk commit of whole checkpoint intervals (no retire-width limit),
* **imprecise recovery**: a mispredicted branch or exception rolls back
  to the youngest checkpoint at or before the faulting instruction,
  squashing and later re-executing any correct-path instructions between
  the checkpoint and the fault — the cost MSP eliminates,
* the hierarchical store queue, whose L2 must be scanned on rollback
  (modelled as an extra redirect delay when the L2 holds squashed
  entries).

Reference-count holds on a physical register P:

1. mapping hold — the RAT currently maps some logical register to P;
2. checkpoint holds — one per live checkpoint whose snapshot maps P;
3. reader holds — one per dispatched, not-yet-issued reader of P;
4. writer hold — P's producer has dispatched but not completed.

Rollback rebuilds all counts from those rules over the surviving state,
which keeps recovery correct without shadow free-list machinery.

Per-instruction state lives in the shared in-flight window columns; the
``tag`` column does double duty — the memoised checkpoint decision
(a bool) while the instruction stalls at the buffer head, then its owner
:class:`Checkpoint` once renamed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.branch.confidence import ConfidenceEstimator
from repro.cpr.checkpoint import Checkpoint
from repro.isa.registers import NUM_INT_REGS, NUM_LOGICAL_REGS, is_int_reg
from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore


class CPRProcessor(OutOfOrderCore):
    """Checkpoint Processing and Recovery machine."""

    #: No ROB bound: in-flight count is limited only by registers and
    #: checkpoints, so start the ring larger (it still grows on demand).
    window_capacity = 2048

    #: Exec codegen inlines the read-side refcount release (mirrors
    #: :meth:`_release`, including free-list push order).
    codegen_flavor = "release"

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        num_phys = config.phys_int + config.phys_fp
        self.num_phys = num_phys
        self.phys_value: List = [0] * num_phys
        self.phys_ready: List[bool] = [True] * num_phys
        self.refcount: List[int] = [0] * num_phys

        self.rat: List[int] = [0] * NUM_LOGICAL_REGS
        for lr in range(NUM_LOGICAL_REGS):
            if is_int_reg(lr):
                self.rat[lr] = lr
            else:
                self.rat[lr] = config.phys_int + (lr - NUM_INT_REGS)
                self.phys_value[self.rat[lr]] = 0.0
            self.refcount[self.rat[lr]] += 1  # mapping hold

        self.int_free: List[int] = list(
            range(NUM_INT_REGS, config.phys_int))
        self.fp_free: List[int] = list(
            range(config.phys_int + NUM_INT_REGS, num_phys))

        self.confidence = ConfidenceEstimator(
            threshold=config.confidence_threshold)

        if self._sched_event:
            # Direct tables for the event scheduler: readiness checks,
            # side-effect-free peeks and result writes all index the
            # flat register file.  ``read_operand`` stays virtual — it
            # releases the reader's reference count.
            self._ready_table = self.phys_ready
            self._value_table = self.phys_value

        # Initial checkpoint covers the start of the program.
        initial = Checkpoint(seq=-1, resume_pc=program.entry,
                             rat_snapshot=list(self.rat))
        self._hold_snapshot(initial.rat_snapshot)
        self.checkpoints: List[Checkpoint] = [initial]
        self._since_checkpoint = 0
        #: live checkpoints sitting at a conditional branch, by the
        #: branch's seq — so resolution can stamp the real outcome.
        self._cp_at_branch: Dict[int, Checkpoint] = {}
        #: low-confidence branches left uncovered because all checkpoints
        #: were in use.
        self.checkpoints_missed = 0

    # ------------------------------------------------------------------ #
    # Reference counting.
    # ------------------------------------------------------------------ #

    def _hold_snapshot(self, snapshot: List[int]) -> None:
        for handle in snapshot:
            self.refcount[handle] += 1

    def _release(self, handle: int) -> None:
        count = self.refcount[handle] - 1
        if count < 0:
            raise AssertionError(f"refcount underflow on phys {handle}")
        self.refcount[handle] = count
        if count == 0:
            self._free_list_for_handle(handle).append(handle)

    def _free_list_for_handle(self, handle: int) -> List[int]:
        return (self.int_free if handle < self.config.phys_int
                else self.fp_free)

    def _free_list_for_logical(self, logical: int) -> List[int]:
        return self.int_free if is_int_reg(logical) else self.fp_free

    # ------------------------------------------------------------------ #
    # Registers.
    # ------------------------------------------------------------------ #

    def handle_ready(self, handle: int) -> bool:
        return self.phys_ready[handle]

    def seed_register(self, logical: int, value) -> None:
        # Identity initial mapping (refcounts unaffected: the mapping
        # and initial-checkpoint holds were taken at construction).
        self.phys_value[self.rat[logical]] = value

    def on_seeded(self, pc: int) -> None:
        # The initial checkpoint must resume at the checkpointed PC,
        # not the program entry, if a rollback reaches it.
        self.checkpoints[0].resume_pc = pc

    def install_warm_state(self, predictor=None, btb=None,
                           hierarchy=None, confidence=None) -> None:
        super().install_warm_state(predictor, btb, hierarchy)
        if confidence is not None:
            confidence.threshold = self.config.confidence_threshold
            self.confidence = confidence

    def read_operand(self, handle: int):
        value = self.phys_value[handle]
        self._release(handle)  # reader hold consumed at issue
        return value

    def peek_operand(self, handle: int):
        return self.phys_value[handle]

    def write_result(self, slot: int) -> None:
        w = self.w
        self.phys_value[w.dest[slot]] = w.res[slot]
        self.phys_ready[w.dest[slot]] = True

    def on_complete(self, seq: int, slot: int) -> None:
        w = self.w
        if self._dec.wreg[w.pc[slot]]:
            self._release(w.dest[slot])  # writer hold
        owner = w.tag[slot]
        if owner is not None and owner.alive:
            owner.outstanding -= 1

    # ------------------------------------------------------------------ #
    # Checkpoint placement.
    # ------------------------------------------------------------------ #

    def _needs_checkpoint(self, pc: int) -> bool:
        kind = self._dec.kind[pc]
        if kind == 1 or kind == 3:       # conditional branch or JR
            return not self.confidence.is_confident(pc)
        return self._since_checkpoint >= self.config.checkpoint_max_interval

    def on_branch_resolved(self, slot: int, mispredicted: bool) -> None:
        w = self.w
        taken = w.atk[slot]
        self.confidence.update(w.pc[slot], correct=not mispredicted,
                               taken=taken)
        if self._cp_at_branch:
            checkpoint = self._cp_at_branch.pop(w.sq[slot], None)
            if checkpoint is not None:
                checkpoint.branch_taken = taken

    # ------------------------------------------------------------------ #
    # Dispatch.
    # ------------------------------------------------------------------ #

    def dispatch_blocked(self, seq: int, slot: int, pc: int,
                         moved: int) -> Optional[str]:
        # Memoise the checkpoint decision across stalled retries so the
        # confidence estimator is queried once per dynamic branch (the
        # tag column is reset to None at fetch).
        w = self.w
        if w.tag[slot] is None:
            w.tag[slot] = self._needs_checkpoint(pc)
        dec = self._dec
        if dec.wreg[pc] and not self._free_list_for_logical(dec.dest[pc]):
            return "registers_full"
        return None

    def rename(self, seq: int, slot: int, pc: int) -> None:
        w = self.w
        needs_checkpoint = w.tag[slot]
        self._since_checkpoint += 1
        if needs_checkpoint:
            # Best effort: with all 8 checkpoints live the instruction
            # proceeds uncovered and a misprediction simply rolls back
            # further (CPR's fundamental imprecision).
            if len(self.checkpoints) < self.config.checkpoints:
                self._create_checkpoint(seq, slot, pc)
            else:
                self.checkpoints_missed += 1

        owner = self._owner_checkpoint(seq)
        w.tag[slot] = owner
        owner.outstanding += 1

        dec = self._dec
        rat = self.rat
        refcount = self.refcount
        nsrc = dec.nsrc[pc]
        if nsrc:
            h0 = rat[dec.s0[pc]]
            w.h0[slot] = h0
            refcount[h0] += 1            # reader hold
            if nsrc > 1:
                h1 = rat[dec.s1[pc]]
                w.h1[slot] = h1
                refcount[h1] += 1
        if dec.wreg[pc]:
            dest = dec.dest[pc]
            new = self._free_list_for_logical(dest).pop()
            self.phys_ready[new] = False
            refcount[new] = 2            # mapping + writer holds
            old = rat[dest]
            rat[dest] = new
            w.dest[slot] = new
            self._release(old)           # superseded mapping

    def _create_checkpoint(self, seq: int, slot: int, pc: int) -> None:
        w = self.w
        kind = self._dec.kind[pc]
        if kind == 1 or kind == 2 or kind == 3:
            checkpoint = Checkpoint(seq=seq,
                                    resume_pc=w.ptg[slot],
                                    rat_snapshot=list(self.rat),
                                    at_branch=True,
                                    history_base=w.ghr[slot])
            if kind == 1:
                checkpoint.branch_seq = seq
                checkpoint.predicted_taken = w.ptk[slot]
                self._cp_at_branch[seq] = checkpoint
        else:
            checkpoint = Checkpoint(seq=seq - 1, resume_pc=pc,
                                    rat_snapshot=list(self.rat),
                                    history_base=w.ghr[slot])
        self._hold_snapshot(checkpoint.rat_snapshot)
        self.checkpoints.append(checkpoint)
        self.stats.checkpoints_created += 1
        self._since_checkpoint = 0

    def _owner_checkpoint(self, seq: int) -> Checkpoint:
        for checkpoint in reversed(self.checkpoints):
            if checkpoint.seq < seq:
                return checkpoint
        raise AssertionError("no covering checkpoint")

    def _forget(self, checkpoint: Checkpoint) -> None:
        """Drop a retired/killed checkpoint's branch-stamp registration."""
        if checkpoint.branch_seq is not None:
            self._cp_at_branch.pop(checkpoint.branch_seq, None)

    def on_dispatch_stall(self, reason: str) -> None:
        """Forward-progress guard: if dispatch is blocked on a full
        resource while the open interval (past the youngest checkpoint)
        holds everything in flight, nothing can ever commit — close the
        interval with a checkpoint at the stall point."""
        if len(self.checkpoints) >= self.config.checkpoints:
            return
        if not self.fetch.buffer:
            return
        head = self.fetch.buffer[0]
        youngest = self.checkpoints[-1]
        if youngest.seq >= head - 1:
            return  # interval already closed here
        w = self.w
        slot = head & w.mask
        checkpoint = Checkpoint(seq=head - 1, resume_pc=w.pc[slot],
                                rat_snapshot=list(self.rat),
                                history_base=w.ghr[slot])
        self._hold_snapshot(checkpoint.rat_snapshot)
        self.checkpoints.append(checkpoint)
        self.stats.checkpoints_created += 1
        self._since_checkpoint = 0

    # NOP/HALT keep tag=None (set at fetch): they never execute, so they
    # do not join an outstanding count and bulk-commit with whatever
    # interval contains them — the base ``assign_state_tag`` no-op is
    # exactly right.

    # ------------------------------------------------------------------ #
    # Commit: bulk, one whole checkpoint interval at a time.
    # ------------------------------------------------------------------ #

    def commit_stage(self, now: int) -> None:
        while len(self.checkpoints) >= 2:
            oldest, closing = self.checkpoints[0], self.checkpoints[1]
            if oldest.outstanding != 0:
                return
            if not self._commit_interval(closing.seq, now):
                return
            # Release the oldest checkpoint.
            self.checkpoints.pop(0)
            oldest.alive = False
            self._forget(oldest)
            for handle in oldest.rat_snapshot:
                self._release(handle)
        self._drain_if_halted(now)

    def _commit_interval(self, seq_bound: int, now: int) -> bool:
        """Commit every in-flight instruction with seq <= seq_bound.

        Pre-scans for planned exceptions: CPR takes an exception only via
        rollback to the preceding checkpoint, so nothing in the interval
        may commit if it contains one.
        """
        in_flight = self.in_flight
        mask = self.w.mask
        count = 0
        for s in in_flight:
            if s > seq_bound:
                break
            count += 1
        offset = self.pending_exception_offset(count)
        if offset is not None:
            victim = in_flight[offset]
            ordinal = self.commit_ordinal + offset
            self._exceptions_taken.add(ordinal)
            self.stats.exceptions_taken += 1
            self.stats.recoveries += 1
            self.take_exception(victim, victim & mask, now)
            return False
        for _ in range(count):
            s = in_flight.popleft()
            self.commit_one(s, s & mask, now)
            if self.done:
                break
        self.sq.commit_up_to(seq_bound, self.commit_store_write)
        return not self.done

    def _drain_if_halted(self, now: int) -> None:
        """Commit the open interval past the youngest checkpoint once the
        program has halted and everything in flight has executed."""
        in_flight = self.in_flight
        if not (self.fetch.halted and not self.fetch.buffer and in_flight):
            return
        w_st = self.w.st
        mask = self.w.mask
        if any(not w_st[s & mask] & 2 for s in in_flight):
            return
        last_seq = in_flight[-1]
        if self._commit_interval(last_seq, now):
            while len(self.checkpoints) > 1:
                stale = self.checkpoints.pop(0)
                stale.alive = False
                self._forget(stale)
                for handle in stale.rat_snapshot:
                    self._release(handle)

    # ------------------------------------------------------------------ #
    # Recovery: roll back to a checkpoint (imprecise).
    # ------------------------------------------------------------------ #

    def recover_from_branch(self, seq: int, slot: int, now: int) -> None:
        target = self._youngest_checkpoint_at_or_before(seq)
        if target.seq == seq:
            # Checkpoint at this very branch: resume at the resolved
            # target, and make that the checkpoint's resume PC — the
            # branch itself survives the rollback, so any later rollback
            # to this checkpoint must follow the now-architectural
            # outcome, not the disproven prediction.
            resume_pc = self.w.atg[slot]
            target.resume_pc = resume_pc
        else:
            resume_pc = target.resume_pc
        self._rollback(target, fault_seq=seq, resume_pc=resume_pc, now=now)

    def take_exception(self, seq: int, slot: int, now: int) -> None:
        target = self._youngest_checkpoint_strictly_before(seq)
        self._rollback(target, fault_seq=FAULT_NONE,
                       resume_pc=target.resume_pc, now=now)

    def _youngest_checkpoint_at_or_before(self, seq: int) -> Checkpoint:
        for checkpoint in reversed(self.checkpoints):
            if checkpoint.seq <= seq:
                return checkpoint
        raise AssertionError("no covering checkpoint")

    def _youngest_checkpoint_strictly_before(self, seq: int) -> Checkpoint:
        for checkpoint in reversed(self.checkpoints):
            if checkpoint.seq < seq:
                return checkpoint
        raise AssertionError("no covering checkpoint")

    def _rollback(self, target: Checkpoint, fault_seq: int,
                  resume_pc: int, now: int) -> None:
        # The L2 store-queue scan cost: squashing while stores overflowed
        # into the second level delays the redirect.
        l2_occupied = (self.sq.l1_capacity is not None
                       and len(self.sq) > self.sq.l1_capacity)
        penalty = self.config.l2sq_squash_penalty if l2_occupied else 0

        while self.checkpoints and self.checkpoints[-1].seq > target.seq:
            dead = self.checkpoints.pop()
            dead.alive = False
            self._forget(dead)

        squashed = self.squash_after(target.seq, fault_seq)
        w = self.w
        mask = w.mask
        w_st, w_tag = w.st, w.tag
        for s in squashed:
            slot = s & mask
            owner = w_tag[slot]
            if (owner is not None and isinstance(owner, Checkpoint)
                    and owner.alive and not w_st[slot] & 2):
                owner.outstanding -= 1

        # In place: the codegen'd closures bind the RAT list itself.
        self.rat[:] = target.rat_snapshot
        self._rebuild_refcounts()
        self._restore_history(target)
        self.fetch.redirect(resume_pc, now + penalty)

    def _restore_history(self, target: Checkpoint) -> None:
        """Restore predictor global history to the rollback point."""
        if target.history_base is None:
            return
        if target.branch_seq is not None:
            # Checkpoint at a conditional branch: append its best-known
            # outcome (resolved if it executed, else still the
            # prediction) on top of the fetch-time base.
            taken = (target.branch_taken
                     if target.branch_taken is not None
                     else target.predicted_taken)
            self.predictor.set_history_appended(target.history_base, taken)
        else:
            self.predictor.set_history(target.history_base)

    def _rebuild_refcounts(self) -> None:
        """Recompute every hold from rules 1-4 over surviving state.

        All three containers are refilled *in place*: the codegen'd
        issue closures bind ``refcount`` / ``int_free`` / ``fp_free``
        as argument defaults, so the list objects must stay the same.
        """
        counts = self.refcount
        counts[:] = [0] * self.num_phys
        for handle in self.rat:
            counts[handle] += 1
        for checkpoint in self.checkpoints:
            for handle in checkpoint.rat_snapshot:
                counts[handle] += 1
        w = self.w
        mask = w.mask
        dec = self._dec
        for s in self.in_flight:
            slot = s & mask
            st = w.st[slot]
            pc = w.pc[slot]
            if not st & 1:               # not issued: reader holds live
                nsrc = dec.nsrc[pc]
                if nsrc:
                    counts[w.h0[slot]] += 1
                    if nsrc > 1:
                        counts[w.h1[slot]] += 1
            if dec.wreg[pc] and not st & 2:
                counts[w.dest[slot]] += 1
        self.int_free[:] = [h for h in range(self.config.phys_int)
                            if counts[h] == 0]
        self.fp_free[:] = [h for h in range(self.config.phys_int,
                                            self.num_phys)
                           if counts[h] == 0]
