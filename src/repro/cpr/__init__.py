"""CPR: checkpoint processing and recovery (the paper's comparator)."""

from repro.cpr.checkpoint import Checkpoint
from repro.cpr.processor import CPRProcessor

__all__ = ["Checkpoint", "CPRProcessor"]
