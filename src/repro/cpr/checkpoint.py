"""CPR checkpoints.

A checkpoint is "a hardware structure containing the information necessary
to recover a processor's state": here, the RAT snapshot, the sequence
number it covers up to, and the PC fetch resumes at after a rollback.

Two creation flavours (both snapshot the RAT at creation time):

* **at a low-confidence branch** — covers the branch itself
  (``seq = branch.seq``); rollback caused by the branch redirects to its
  resolved target, rollback caused by a younger fault redirects to the
  branch's predicted target (the path that was being fetched);
* **interval guard** — placed *before* an instruction when too many
  instructions accumulated since the last checkpoint
  (``seq = inst.seq - 1``, resume at ``inst.pc``).

``outstanding`` counts the checkpoint interval's dispatched-but-not-yet-
executed instructions; the interval can bulk-commit when it reaches zero
and the checkpoint is the oldest.
"""

from __future__ import annotations

from typing import List, Optional


class Checkpoint:
    """One CPR checkpoint and its instruction interval.

    ``history_base`` snapshots the branch predictor's global history at
    the creating instruction's fetch.  When the checkpoint sits at a
    conditional branch, ``branch_seq`` records it and ``predicted_taken``
    its fetch-time prediction; the branch's *resolved* direction is
    stamped into ``branch_taken`` when it executes (the core does this in
    ``on_branch_resolved``), so a rollback can append the best-known
    outcome when restoring history.  The branch may well commit — and its
    in-flight window slot be recycled — while this checkpoint is still
    live, which is why the outcome is stamped eagerly rather than read
    back from the window at rollback time.
    """

    __slots__ = ("seq", "resume_pc", "rat_snapshot", "outstanding", "alive",
                 "at_branch", "history_base", "branch_seq",
                 "predicted_taken", "branch_taken")

    def __init__(self, seq: int, resume_pc: int,
                 rat_snapshot: List[int], at_branch: bool = False,
                 history_base=None) -> None:
        self.seq = seq
        self.resume_pc = resume_pc
        self.rat_snapshot = rat_snapshot
        self.outstanding = 0
        self.alive = True
        self.at_branch = at_branch
        self.history_base = history_base
        self.branch_seq: Optional[int] = None
        self.predicted_taken = False
        self.branch_taken: Optional[bool] = None

    def __repr__(self) -> str:
        kind = "branch" if self.at_branch else "guard"
        return (f"Checkpoint(seq={self.seq}, resume={self.resume_pc}, "
                f"{kind}, outstanding={self.outstanding})")
