"""Register-file power/timing/area models (Sec. 5, Table III)."""

from repro.power.regfile import (
    CPR_256_FLAT,
    CPR_4BANK,
    CPR_8BANK,
    MSP_16SP,
    MSP_512_BANKED,
    RegFileConfig,
    RegFileModel,
    section51_area,
    table3,
)
from repro.power.sram import (
    BankGeometry,
    SRAMBankModel,
    TECH_45NM,
    TECH_65NM,
    Technology,
)

__all__ = [
    "BankGeometry",
    "CPR_256_FLAT",
    "CPR_4BANK",
    "CPR_8BANK",
    "MSP_16SP",
    "MSP_512_BANKED",
    "RegFileConfig",
    "RegFileModel",
    "SRAMBankModel",
    "TECH_45NM",
    "TECH_65NM",
    "Technology",
    "section51_area",
    "table3",
]
