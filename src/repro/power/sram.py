"""Analytical SRAM bank energy/delay model (Sec. 5 substrate).

The paper laid out register-file banks and ran SPICE on 65 nm / 45 nm
predictive technology models (and CACTI 4.2 for area). Neither tool is
available offline, so this module implements a first-order analytical
model with the standard scaling behaviours those tools capture:

* a multiported SRAM cell grows linearly per port in each dimension
  (one wordline per port adds height, one bitline pair adds width);
* bitline capacitance scales with entries x cell height, so dynamic
  access energy scales with bank depth and porting;
* access time = decoder depth + bitline/wordline RC + sense amp, in
  FO4; wire delay worsens relative to FO4 at smaller nodes;
* idle banks still leak: total access power of an N-bank file is
  ``Acc_power + (N-1) x Idle_power`` (the paper's equation).

The free constants were least-squares fitted to the paper's published
Table III cells (``tests/power/test_calibration.py`` pins the fit); the
*orderings* — the 512-entry 1R/1W 32-bank MSP file beating the
192-entry 8R/4W CPR file on both power and delay — fall out of the
scaling alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Process node parameters (first-order, FO4-normalised)."""

    name: str
    feature_nm: float
    voltage: float
    #: switched capacitance of one minimum cell access point (fF).
    cell_cap_ff: float
    #: leakage power per storage cell (nW).
    cell_leak_nw: float
    #: clock frequency the power numbers assume (GHz).
    frequency_ghz: float
    #: wire delay penalty relative to FO4 (grows at smaller nodes).
    wire_fo4_factor: float


TECH_65NM = Technology("65nm", 65.0, 1.1, cell_cap_ff=0.95,
                       cell_leak_nw=50.0, frequency_ghz=3.0,
                       wire_fo4_factor=1.0)
TECH_45NM = Technology("45nm", 45.0, 1.0, cell_cap_ff=0.72,
                       cell_leak_nw=45.0, frequency_ghz=3.4,
                       wire_fo4_factor=1.2)

# Fitted constants (see module docstring).
_BITLINE_ENERGY_FACTOR_READ = 0.15
_BITLINE_ENERGY_FACTOR_WRITE = 0.155
_CELL_DIM_GROWTH_POWER = 0.15   # per extra port, for capacitance
_CELL_DIM_GROWTH_AREA = 0.10    # per extra port, for layout area
_READ_DECODER_FO4 = 0.5
_READ_SENSE_FO4 = 2.3
_READ_BITLINE_FO4 = 0.08 / 16.0
_WRITE_DECODER_FO4 = 0.105
_WRITE_DRIVE_FO4 = 0.43
_AREA_CELL_UM2_FACTOR = 1230.0  # x feature^2 (um^2)
_AREA_PERIPHERY = 1.22


@dataclass(frozen=True)
class BankGeometry:
    """One SRAM bank: entries x bits with separate read/write ports."""

    entries: int
    bits: int
    read_ports: int
    write_ports: int

    @property
    def ports(self) -> int:
        return self.read_ports + self.write_ports

    def cell_dim(self, growth: float) -> float:
        """Relative cell dimension for a given per-port growth rate."""
        extra = max(0, self.ports - 2)
        return 1.0 + growth * extra

    @property
    def storage_cells(self) -> int:
        return self.entries * self.bits


class SRAMBankModel:
    """Energy, delay and area of one bank in a given technology."""

    def __init__(self, geometry: BankGeometry, tech: Technology) -> None:
        self.geometry = geometry
        self.tech = tech

    # -- energy / power -------------------------------------------------- #

    def _bitline_cap_ff(self) -> float:
        g = self.geometry
        return (g.entries * g.cell_dim(_CELL_DIM_GROWTH_POWER)
                * self.tech.cell_cap_ff)

    def _access_energy_fj(self, factor: float) -> float:
        v2 = self.tech.voltage ** 2
        return self.geometry.bits * self._bitline_cap_ff() * factor * v2

    def read_energy_fj(self) -> float:
        """Dynamic energy of one read access (fJ)."""
        return self._access_energy_fj(_BITLINE_ENERGY_FACTOR_READ)

    def write_energy_fj(self) -> float:
        """Dynamic energy of one write access (fJ)."""
        return self._access_energy_fj(_BITLINE_ENERGY_FACTOR_WRITE)

    def leakage_mw(self) -> float:
        """Static power of the whole bank (mW)."""
        return self.geometry.storage_cells * self.tech.cell_leak_nw * 1e-6

    def access_power_mw(self, write: bool, activity: float = 1.0) -> float:
        """Average power of a bank accessed every cycle (mW)."""
        energy_fj = (self.write_energy_fj() if write
                     else self.read_energy_fj())
        dynamic_mw = energy_fj * 1e-15 * self.tech.frequency_ghz * 1e9 * 1e3
        return dynamic_mw * activity + self.leakage_mw()

    # -- timing ----------------------------------------------------------- #

    def _decoder_levels(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.geometry.entries))))

    def read_access_fo4(self) -> float:
        """Read access time in FO4: decode + bitline + sense."""
        g = self.geometry
        bitline = (_READ_BITLINE_FO4 * g.entries
                   * g.cell_dim(_CELL_DIM_GROWTH_POWER))
        raw = (_READ_DECODER_FO4 * self._decoder_levels()
               + bitline + _READ_SENSE_FO4)
        return raw * self.tech.wire_fo4_factor

    def write_access_fo4(self) -> float:
        """Write access time in FO4: decode + write drive (no sense)."""
        raw = (_WRITE_DECODER_FO4 * self._decoder_levels()
               + _WRITE_DRIVE_FO4)
        return raw * self.tech.wire_fo4_factor

    # -- area -------------------------------------------------------------- #

    def area_mm2(self) -> float:
        """Bank area in mm² (cell-array dominated, CACTI-style)."""
        g = self.geometry
        cell_um2 = ((self.tech.feature_nm / 1000.0) ** 2
                    * _AREA_CELL_UM2_FACTOR)
        array_um2 = (g.storage_cells * g.cell_dim(_CELL_DIM_GROWTH_AREA) ** 2
                     * cell_um2)
        return array_um2 * _AREA_PERIPHERY * 1e-6
