"""Register-file configurations of Table III and Sec. 5.1.

Three organisations are compared:

* **CPR 4-bank** — 192 entries x 64 b in 4 banks, 8R/4W ports per bank;
* **CPR 8-bank** — same file in 8 banks;
* **16-SP 32-bank** — the MSP's 512 entries x 64 b in 32 banks (one per
  logical register), 1R/1W ports per bank.

Total access power uses the paper's equation::

    TAcc_power = Acc_power + (N - 1) x Idle_power

and the area comparison of Sec. 5.1 (512-entry 1R/1W file ~0.1 mm² vs
256-entry fully-ported CPR file ~0.21 mm² at 45 nm) comes from the same
geometry model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.power.sram import (
    BankGeometry,
    SRAMBankModel,
    TECH_45NM,
    TECH_65NM,
    Technology,
)


@dataclass(frozen=True)
class RegFileConfig:
    """A banked register file organisation."""

    name: str
    total_entries: int
    bits: int
    num_banks: int
    read_ports_per_bank: int
    write_ports_per_bank: int

    @property
    def bank_geometry(self) -> BankGeometry:
        return BankGeometry(
            entries=self.total_entries // self.num_banks,
            bits=self.bits,
            read_ports=self.read_ports_per_bank,
            write_ports=self.write_ports_per_bank,
        )


CPR_4BANK = RegFileConfig("CPR 192x64b 4 banks 8R/4W", 192, 64, 4, 8, 4)
CPR_8BANK = RegFileConfig("CPR 192x64b 8 banks 8R/4W", 192, 64, 8, 8, 4)
MSP_16SP = RegFileConfig("16-SP 512x64b 32 banks 1R/1W", 512, 64, 32, 1, 1)

#: Sec. 5.1 area comparison points.
CPR_256_FLAT = RegFileConfig("CPR 256x64b fully ported", 256, 64, 1, 8, 4)
MSP_512_BANKED = RegFileConfig("MSP 512x64b 1R/1W banked", 512, 64, 32, 1, 1)


class RegFileModel:
    """Power/timing/area of a banked register file in one technology."""

    def __init__(self, config: RegFileConfig, tech: Technology) -> None:
        self.config = config
        self.tech = tech
        self.bank = SRAMBankModel(config.bank_geometry, tech)

    def total_access_power_mw(self, write: bool) -> float:
        """The paper's TAcc_power = Acc_power + (N-1) x Idle_power."""
        active = self.bank.access_power_mw(write=write)
        idle = self.bank.leakage_mw()
        return active + (self.config.num_banks - 1) * idle

    def access_time_fo4(self, write: bool) -> float:
        if write:
            return self.bank.write_access_fo4()
        return self.bank.read_access_fo4()

    def total_area_mm2(self) -> float:
        return self.bank.area_mm2() * self.config.num_banks

    def table_row(self) -> Dict[str, float]:
        """One Table III cell pair per operation: (mW, FO4)."""
        return {
            "write_power_mw": self.total_access_power_mw(write=True),
            "write_time_fo4": self.access_time_fo4(write=True),
            "read_power_mw": self.total_access_power_mw(write=False),
            "read_time_fo4": self.access_time_fo4(write=False),
        }


def table3(configs: List[RegFileConfig] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Regenerate Table III: {tech: {config: row}}."""
    configs = configs or [CPR_4BANK, CPR_8BANK, MSP_16SP]
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for tech in (TECH_65NM, TECH_45NM):
        result[tech.name] = {
            config.name: RegFileModel(config, tech).table_row()
            for config in configs
        }
    return result


def section51_area() -> Dict[str, float]:
    """Sec. 5.1's area comparison at 45 nm (paper: 0.1 vs 0.21 mm²)."""
    return {
        "msp_512_banked_mm2":
            RegFileModel(MSP_512_BANKED, TECH_45NM).total_area_mm2(),
        "cpr_256_fullport_mm2":
            RegFileModel(CPR_256_FLAT, TECH_45NM).total_area_mm2(),
    }
