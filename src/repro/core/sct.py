"""State Control Table: per-logical-register bank management (Sec. 3.2.1).

Each logical register owns a fixed bank of ``n`` physical registers,
allocated and released strictly in order — the two constraints (a) and
(b) of Sec. 3.1 that make MSP register management distributed. The bank
couples the SCT (one descriptor per physical register, holding the Lower
StateId; the Upper StateId is implicit in the next entry) with the value
storage and the use tracking that in hardware lives in the RelIQ matrix.

Pointers are kept as *monotonic* allocation counters (``slot index =
counter % n``), which makes the circular one-hot shift registers of the
paper trivially correct to model:

* ``alloc`` — one past the last allocated entry; ``alloc - 1`` is RenP,
  the current renaming;
* ``rel``   — RelP, the first entry that cannot yet be released (value
  not produced, uses outstanding, or same-state instructions pending);
* ``freed`` — one past the last entry actually reclaimed on commit.

Invariant: ``freed <= rel < alloc`` and ``alloc - freed <= n``.

A handle for a physical register in this bank is the pair
``(logical, mono)`` where ``mono`` is the allocation counter value — it
is unique for the lifetime of the simulation, so stale wakeup lists can
never alias a recycled slot.
"""

from __future__ import annotations

from typing import Dict, Optional


class RegisterBank:
    """One logical register's bank: SCT entries + values + use tracking."""

    def __init__(self, logical: int, capacity: Optional[int],
                 initial_value=0) -> None:
        self.logical = logical
        self.capacity = capacity          # None = unbounded (ideal MSP)
        size = capacity if capacity is not None else 16
        self._stateid = [0] * size
        self._value = [initial_value] * size
        self._ready = [False] * size
        self._uses = [0] * size

        # Slot 0 holds the initial architectural value at state 0.
        self._value[0] = initial_value
        self._ready[0] = True
        self.alloc = 1
        self.rel = 0
        self.freed = 0

        self.allocations = 0
        self.releases = 0

    # ------------------------------------------------------------------ #
    # Indexing.
    # ------------------------------------------------------------------ #

    def _idx(self, mono: int) -> int:
        if self.capacity is None:
            return mono
        return mono % self.capacity

    def _grow_to(self, mono: int) -> None:
        while mono >= len(self._stateid):
            self._stateid.append(0)
            self._value.append(0)
            self._ready.append(False)
            self._uses.append(0)

    # ------------------------------------------------------------------ #
    # Allocation / renaming.
    # ------------------------------------------------------------------ #

    @property
    def live_entries(self) -> int:
        return self.alloc - self.freed

    def is_full(self) -> bool:
        return (self.capacity is not None
                and self.live_entries >= self.capacity)

    def current_mono(self) -> int:
        """RenP: the most recent renaming of this logical register."""
        return self.alloc - 1

    def allocate(self, stateid: int) -> int:
        """Allocate the next physical register for a new renaming."""
        if self.is_full():
            raise RuntimeError(f"bank r{self.logical} full; "
                               "check is_full() first")
        mono = self.alloc
        if self.capacity is None:
            self._grow_to(mono)
        idx = self._idx(mono)
        self._stateid[idx] = stateid
        self._ready[idx] = False
        self._uses[idx] = 0
        self._value[idx] = None
        self.alloc = mono + 1
        self.allocations += 1
        return mono

    # ------------------------------------------------------------------ #
    # Value / use tracking.
    # ------------------------------------------------------------------ #

    def is_ready(self, mono: int) -> bool:
        return self._ready[self._idx(mono)]

    def read(self, mono: int):
        return self._value[self._idx(mono)]

    def write(self, mono: int, value) -> None:
        idx = self._idx(mono)
        self._value[idx] = value
        self._ready[idx] = True

    def add_use(self, mono: int) -> None:
        """A dependent instruction dispatched (sets its RelIQ use bit)."""
        self._uses[self._idx(mono)] += 1

    def consume(self, mono: int) -> None:
        """A dependent read the value (clears its use bit)."""
        idx = self._idx(mono)
        if self._uses[idx] <= 0:
            raise AssertionError(
                f"use-count underflow on r{self.logical}.{mono}")
        self._uses[idx] -= 1

    def stateid_of(self, mono: int) -> int:
        return self._stateid[self._idx(mono)]

    # ------------------------------------------------------------------ #
    # RelP advance and the LCS contribution (Sec. 3.2.2).
    # ------------------------------------------------------------------ #

    def _releasable(self, mono: int, outstanding: Dict[int, int]) -> bool:
        idx = self._idx(mono)
        if not self._ready[idx] or self._uses[idx]:
            return False
        return outstanding.get(self._stateid[idx], 0) == 0

    def advance_rel(self, outstanding: Dict[int, int]) -> None:
        """Move RelP to the first entry that cannot be released."""
        while (self.rel < self.alloc - 1
               and self._releasable(self.rel, outstanding)):
            self.rel += 1

    def lcs_candidate(self, outstanding: Dict[int, int]) -> Optional[int]:
        """This bank's input to the LCS min-tree.

        The special condition of Sec. 3.2.2: when RenP == RelP the bank
        is excluded from the LCS computation once the entry's value has
        been produced and every same-state instruction has executed — an
        idle logical register must not hold back commit.

        Interpretation note: the paper states the condition as
        "RelIQ[RenP] = 0", which literally would also wait for all
        *readers* of the current mapping to issue. Pending reads of the
        last renaming impose no release hazard (the last entry is never
        released while current), and including them makes any
        loop-invariant register — a base pointer or threshold read by
        every iteration — gate the LCS at its ancient allocation state,
        throttling commit to rare all-readers-issued windows. We
        therefore gate the exclusion only on the signals that protect the
        entry's own state: value produced and same-state instructions
        complete.
        """
        if self.rel == self.alloc - 1:
            idx = self._idx(self.rel)
            if (self._ready[idx]
                    and outstanding.get(self._stateid[idx], 0) == 0):
                return None
        return self._stateid[self._idx(self.rel)]

    # ------------------------------------------------------------------ #
    # Commit-time release and recovery (Secs. 3.2.1, 3.5).
    # ------------------------------------------------------------------ #

    def free_up_to(self, committed_stateid: int) -> int:
        """Reclaim entries whose successor's state has committed.

        An entry is dead once the *next* renaming's state is committed:
        its StateId range then lies entirely in committed history, so no
        recovery can ever make it the current mapping again. This is the
        "release if StateId < LCS unless it is the last such register"
        rule, stated in terms of the implicit Upper StateId.
        """
        reclaimed = 0
        while (self.freed < self.rel
               and self._stateid[self._idx(self.freed + 1)]
               <= committed_stateid):
            self.freed += 1
            reclaimed += 1
        self.releases += reclaimed
        return reclaimed

    def rollback(self, recovery_stateid: int) -> int:
        """Release every entry with Lower StateId > the Recovery StateId
        (Sec. 3.5) and restore RenP to the surviving mapping."""
        dropped = 0
        while (self.alloc - self.freed > 0
               and self._stateid[self._idx(self.alloc - 1)]
               > recovery_stateid):
            self.alloc -= 1
            dropped += 1
        if self.alloc == self.freed:
            raise AssertionError(
                f"bank r{self.logical} emptied by rollback to state "
                f"{recovery_stateid}; release rule violated")
        if self.rel > self.alloc - 1:
            self.rel = self.alloc - 1
        return dropped

    def __repr__(self) -> str:
        return (f"RegisterBank(r{self.logical}, live={self.live_entries}, "
                f"alloc={self.alloc}, rel={self.rel}, freed={self.freed})")
