"""The Multi-State Processor (Sec. 3) — the paper's contribution.

No ROB, no checkpoints, no RAT, no global free list. Instead:

* every register-writing instruction allocates a new **state** (StateId
  from the global State Counter);
* each logical register owns a :class:`~repro.core.sct.RegisterBank`
  (SCT + in-order circular allocation) — renaming is just advancing that
  bank's RenP, source lookup is reading it;
* commit is the global **LCS** min-reduction over bank RelP StateIds
  (with the Table I propagation delay), bulk-committing every older
  state each cycle;
* recovery is **precise**: broadcast the Recovery StateId, squash every
  younger instruction, roll every bank back past entries with a younger
  Lower StateId (Sec. 3.5) — no correct-path work is ever discarded;
* the register file is banked 1R/1W (Sec. 5.1): an extra arbitration
  pipeline stage, at most one (slot) read and one write per bank per
  cycle — the ideal MSP drops all of this;
* renaming bandwidth follows Sec. 3.3: up to 4 destinations per cycle,
  at most 2 of them in the same bank (both limits configurable for the
  ablation benches).

Per-instruction state lives in the shared in-flight window columns:
``h0``/``h1``/``dest`` hold ``(logical, mono)`` bank handles here and
``sid`` the instruction's StateId.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.lcs import LCSUnit
from repro.core.sct import RegisterBank
from repro.core.stateid import StateIdAllocator
from repro.isa.registers import NUM_LOGICAL_REGS, is_fp_reg, reg_name
from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore

Handle = Tuple[int, int]   # (logical register, bank allocation counter)


class MSPProcessor(OutOfOrderCore):
    """Multi-State Processor core."""

    #: No ROB bound: in-flight count is limited only by bank capacity,
    #: so start the ring larger (it still grows on demand).
    window_capacity = 2048

    #: Exec codegen binds the static source *bank objects* as defaults
    #: and runs ``bank.consume(mono); bank.read(mono)`` per operand.
    codegen_flavor = "banked"

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        self.extra_dispatch_delay = 1 if config.arbitration else 0

        self.banks: List[RegisterBank] = [
            RegisterBank(lr, config.bank_size,
                         initial_value=0.0 if is_fp_reg(lr) else 0)
            for lr in range(NUM_LOGICAL_REGS)
        ]
        self.sc = StateIdAllocator()
        self.lcs = LCSUnit(delay=config.lcs_delay)
        #: outstanding same-state instructions that do not assign a
        #: register (the pipelined-instruction tracking of Fig. 3).
        self.state_outstanding: Dict[int, int] = {}
        self._committed_stateid = 0
        self._last_committed_seq = -1

        # Per-cycle rename and port-arbitration state. Read ports are
        # arbitrated in the dispatch-side arbitration stage (Fig. 3):
        # operands that are ready at rename read their bank there; the
        # rest capture from the result bypass at wakeup, so issue needs
        # no register-file access.
        self._renames_this_cycle = 0
        self._bank_renames: Counter = Counter()
        self._dispatch_read_ports: Dict[int, int] = {}
        self._last_bank_blocked: Optional[int] = None

        self.read_port_conflicts = 0
        self.write_port_conflicts = 0

    # ------------------------------------------------------------------ #
    # Registers.
    # ------------------------------------------------------------------ #

    def handle_ready(self, handle: Handle) -> bool:
        logical, mono = handle
        return self.banks[logical].is_ready(mono)

    def seed_register(self, logical: int, value) -> None:
        # Slot 0 of each bank holds the initial architectural value at
        # state 0 (already marked ready at construction).
        self.banks[logical].write(0, value)

    def read_operand(self, handle: Handle):
        logical, mono = handle
        bank = self.banks[logical]
        bank.consume(mono)
        return bank.read(mono)

    def peek_operand(self, handle: Handle):
        logical, mono = handle
        return self.banks[logical].read(mono)

    def write_result(self, slot: int) -> None:
        w = self.w
        logical, mono = w.dest[slot]
        self.banks[logical].write(mono, w.res[slot])

    def on_complete(self, seq: int, slot: int) -> None:
        w = self.w
        if not self._dec.wreg[w.pc[slot]]:
            self._dec_outstanding(w.sid[slot])

    def _dec_outstanding(self, stateid: int) -> None:
        count = self.state_outstanding.get(stateid, 0) - 1
        if count < 0:
            raise AssertionError(f"state {stateid} outstanding underflow")
        if count:
            self.state_outstanding[stateid] = count
        else:
            self.state_outstanding.pop(stateid, None)

    # ------------------------------------------------------------------ #
    # Dispatch / distributed renaming (Secs. 3.2.1, 3.3).
    # ------------------------------------------------------------------ #

    def begin_dispatch_cycle(self) -> None:
        self._renames_this_cycle = 0
        self._bank_renames.clear()
        self._dispatch_read_ports.clear()

    def dispatch_blocked(self, seq: int, slot: int, pc: int,
                         moved: int) -> Optional[str]:
        dec = self._dec
        if dec.wreg[pc]:
            dest = dec.dest[pc]
            if self.banks[dest].is_full():
                self._last_bank_blocked = dest
                return "bank_full"
            if (self._renames_this_cycle
                    >= self.config.max_renames_per_cycle):
                return "rename_ports"
            if self._bank_renames[dest] >= self.config.max_same_reg_renames:
                return "sct_write_ports"
        if self.config.arbitration and not self._claimable_read_ports(pc):
            self.read_port_conflicts += 1
            return "read_port_conflict"
        return None

    def _claimable_read_ports(self, pc: int) -> bool:
        """Can this instruction's ready operands all get their bank read
        port this cycle? Reads of the *same* entry share a port."""
        dec = self._dec
        nsrc = dec.nsrc[pc]
        group: Dict[int, int] = {}
        for i in range(nsrc):
            src = dec.s0[pc] if i == 0 else dec.s1[pc]
            bank = self.banks[src]
            mono = bank.current_mono()
            if not bank.is_ready(mono):
                continue  # captured from the bypass at wakeup
            previous = self._dispatch_read_ports.get(src, group.get(src))
            if previous is not None and previous != mono:
                return False
            group[src] = mono
        return True

    def on_dispatch_stall(self, reason: str) -> None:
        if reason == "bank_full" and self._last_bank_blocked is not None:
            self.stats.bank_stall_cycles[self._last_bank_blocked] += 1

    def on_dispatch_stall_bulk(self, reason: str, count: int) -> None:
        # Per-cycle counter attribution, added in one go for the idle
        # skip (the blocking register cannot change while state is
        # frozen).
        if reason == "bank_full" and self._last_bank_blocked is not None:
            self.stats.bank_stall_cycles[self._last_bank_blocked] += count

    def rename(self, seq: int, slot: int, pc: int) -> None:
        dec = self._dec
        w = self.w
        # Source lookup: each source is the latest renaming in its bank
        # (RenP); the use bit is set in the bank's RelIQ sub-matrix.
        # Sequential processing within the cycle resolves same-cycle RAW
        # dependences, like the pointer-increment chain of Fig. 5.
        nsrc = dec.nsrc[pc]
        arbitration = self.config.arbitration
        ports = self._dispatch_read_ports
        for i in range(nsrc):
            src = dec.s0[pc] if i == 0 else dec.s1[pc]
            bank = self.banks[src]
            mono = bank.current_mono()
            bank.add_use(mono)
            if i == 0:
                w.h0[slot] = (src, mono)
            else:
                w.h1[slot] = (src, mono)
            if arbitration and bank.is_ready(mono):
                ports[src] = mono

        if dec.wreg[pc]:
            stateid = self.sc.next()
            w.sid[slot] = stateid
            dest = dec.dest[pc]
            mono = self.banks[dest].allocate(stateid)
            w.dest[slot] = (dest, mono)
            self._renames_this_cycle += 1
            self._bank_renames[dest] += 1
        else:
            # Branches, stores and jumps belong to the current state.
            stateid = self.sc.current
            w.sid[slot] = stateid
            self.state_outstanding[stateid] = (
                self.state_outstanding.get(stateid, 0) + 1)

    def assign_state_tag(self, slot: int) -> None:
        # NOP/HALT never execute; they carry the current state and commit
        # with it, but do not gate its completion.
        self.w.sid[slot] = self.sc.current

    # ------------------------------------------------------------------ #
    # Port arbitration (Sec. 5.1): 1R/1W per bank.
    # ------------------------------------------------------------------ #

    def filter_writebacks(self, completed: List[int], now: int):
        if not self.config.arbitration:
            return completed, []
        w = self.w
        mask = w.mask
        wreg = self._dec.wreg
        written: Dict[int, int] = {}
        accepted: List[int] = []
        deferred: List[int] = []
        for s in completed:
            slot = s & mask
            if wreg[w.pc[slot]]:
                logical, mono = w.dest[slot]
                if logical in written and written[logical] != mono:
                    self.write_port_conflicts += 1
                    deferred.append(s)
                    continue
                written[logical] = mono
            accepted.append(s)
        return accepted, deferred

    # ------------------------------------------------------------------ #
    # Commit: LCS-driven bulk commit (Sec. 3.2.2).
    # ------------------------------------------------------------------ #

    def commit_stage(self, now: int) -> None:
        outstanding = self.state_outstanding
        for bank in self.banks:
            bank.advance_rel(outstanding)
        effective_lcs = self.lcs.step(
            (bank.lcs_candidate(outstanding) for bank in self.banks),
            all_quiescent_value=self.sc.current + 1)

        in_flight = self.in_flight
        w = self.w
        mask = w.mask
        w_st, w_sid = w.st, w.sid
        committed_any = False
        while in_flight:
            s = in_flight[0]
            slot = s & mask
            if not w_st[slot] & 2 or w_sid[slot] >= effective_lcs:
                break
            if not self.commit_one(s, slot, now):
                return  # exception recovery took over
            in_flight.popleft()
            committed_any = True
            stateid = w_sid[slot]
            if stateid > self._committed_stateid:
                self._committed_stateid = stateid
            self._last_committed_seq = s
            if self.done:
                break
        if committed_any:
            self.sq.commit_up_to(self._last_committed_seq,
                                 self.commit_store_write)
            for bank in self.banks:
                bank.free_up_to(self._committed_stateid)

    def commit_settled(self) -> bool:
        # The idle skip may elide MSP cycles only once the pipelined LCS
        # min-tree has drained to a fixpoint: until then each elided
        # cycle would have shifted a different effective LCS out of the
        # pipe and could have unlocked a commit.  ``advance_rel`` runs
        # to fixpoint within a single commit stage, so bank state needs
        # no extra settling condition.
        return self.lcs.settled

    # ------------------------------------------------------------------ #
    # Precise recovery (Sec. 3.5).
    # ------------------------------------------------------------------ #

    def recover_from_branch(self, seq: int, slot: int, now: int) -> None:
        w = self.w
        self._recover(boundary_seq=seq, fault_seq=seq,
                      recovery_stateid=w.sid[slot],
                      resume_pc=w.atg[slot], now=now)

    def take_exception(self, seq: int, slot: int, now: int) -> None:
        # Recovery StateId is the excepting instruction's state, or the
        # previous one if it produced a new state (Sec. 3.5): the
        # instruction itself is squashed and re-fetched.
        w = self.w
        pc = w.pc[slot]
        stateid = w.sid[slot]
        recovery = stateid - 1 if self._dec.wreg[pc] else stateid
        self.repair_history_at(slot)
        self._recover(boundary_seq=seq - 1, fault_seq=FAULT_NONE,
                      recovery_stateid=recovery, resume_pc=pc, now=now)

    def _recover(self, boundary_seq: int, fault_seq: int,
                 recovery_stateid: int, resume_pc: int, now: int) -> None:
        squashed = self.squash_after(boundary_seq, fault_seq)
        w = self.w
        mask = w.mask
        dec = self._dec
        banks = self.banks
        for s in squashed:
            slot = s & mask
            st = w.st[slot]
            pc = w.pc[slot]
            if not st & 3:               # neither issued nor completed
                # Clear the cancelled instruction's RelIQ column.
                nsrc = dec.nsrc[pc]
                if nsrc:
                    logical, mono = w.h0[slot]
                    banks[logical].consume(mono)
                    if nsrc > 1:
                        logical, mono = w.h1[slot]
                        banks[logical].consume(mono)
            if not dec.wreg[pc] and not st & 2:
                # NOP/HALT complete at dispatch and are never counted.
                self._dec_outstanding(w.sid[slot])
        # Broadcast the Recovery StateId: release younger entries.
        for bank in banks:
            bank.rollback(recovery_stateid)
        self.sc.reset_to(recovery_stateid)
        self.fetch.redirect(resume_pc, now)

    # ------------------------------------------------------------------ #

    def bank_occupancy(self) -> Dict[str, int]:
        """Live entries per logical register (debug/diagnostics)."""
        return {reg_name(bank.logical): bank.live_entries
                for bank in self.banks if bank.live_entries > 1}
