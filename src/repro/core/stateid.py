"""StateIds and the saturation-bit overflow scheme (Sec. 3.6).

A StateId names a processor state: a new one is created by every
instruction that assigns a destination register. The hardware stores
StateIds in ``m = log2(M)`` bits (M = register-file size) plus a
saturation bit ``Sb``:

* the State Counter (SC) increments from 0; when it reaches the all-ones
  value, every in-flight state must already have ``Sb = 1`` (there are at
  most M states in flight), so all stored ``Sb`` bits are flash-cleared
  and the SC is set to ``M + 1`` (``Sb = 1``, low bits 0);
* comparisons then stay correct because any two in-flight ids are within
  M of each other.

The simulator's hot path uses unbounded Python ints for StateIds (exactly
equivalent while the in-flight window is at most M — the property tests
in ``tests/core/test_stateid.py`` verify this), and this module provides
the faithful hardware encoding used by those tests and by anyone wanting
to study the overflow machinery itself.
"""

from __future__ import annotations

from typing import Dict, List


class SaturatingStateIdSpace:
    """The m+1-bit encoded StateId space with explicit renormalisation.

    Tracks the set of *live* encoded ids (the SCT contents) so the
    saturation event can flash-clear their ``Sb`` bits, exactly as the
    paper describes.

    Lifetime constraint (implicit in the paper's "all current states
    must now have the saturation bit set"): in-flight states form a
    contiguous window of *fewer than M* ids at each saturation event —
    which the MSP guarantees because states are created and committed in
    order and every bank pins one entry as the architectural copy. A
    live id that survives a renormalisation without its ``Sb`` set
    violates that window and raises.
    """

    def __init__(self, m_bits: int) -> None:
        if m_bits < 1:
            raise ValueError("need at least 1 bit")
        self.m_bits = m_bits
        self.capacity = 1 << m_bits          # M: max states in flight
        self.sb_mask = 1 << m_bits           # the saturation bit
        self.max_counter = (1 << (m_bits + 1)) - 1   # all ones
        self.counter = 0                     # the SC, m+1 bits
        # live encoded ids, keyed by an owner token (e.g. a bank slot).
        self.live: Dict[object, int] = {}

    # ------------------------------------------------------------------ #

    def allocate(self, owner: object) -> int:
        """Advance the SC and register the new id as live for ``owner``."""
        if len(self.live) >= self.capacity:
            raise OverflowError(
                f"more than M={self.capacity} states in flight")
        if self.counter == self.max_counter:
            self._renormalise()
        self.counter += 1
        encoded = self.counter
        self.live[owner] = encoded
        return encoded

    def release(self, owner: object) -> None:
        """A state committed or was squashed; its id is no longer live."""
        del self.live[owner]

    def encoded(self, owner: object) -> int:
        """Current encoding of a live owner's id. Holders must re-read
        after a renormalisation (the hardware flash-clears in place)."""
        return self.live[owner]

    def _renormalise(self) -> None:
        # SC saturated: every live id must have Sb set (at most M states
        # in flight means they all fall in the upper half). Clear all Sb
        # bits and restart the SC at M + 1 (Sb=1, low bits 0).
        for owner, encoded in self.live.items():
            if not encoded & self.sb_mask:
                raise AssertionError(
                    "live StateId without saturation bit at renormalise; "
                    "window invariant violated")
            self.live[owner] = encoded & ~self.sb_mask
        self.counter = self.sb_mask

    # ------------------------------------------------------------------ #

    def compare(self, a: int, b: int) -> int:
        """Order two live encoded ids: negative if a older, 0, positive.

        Valid whenever both ids are live (within M of each other), which
        is the only situation the hardware compares them in.
        """
        return a - b

    def is_older(self, a: int, b: int) -> bool:
        return self.compare(a, b) < 0


class StateIdAllocator:
    """Unbounded StateId allocator used by the MSP core's hot path.

    Mirrors :class:`SaturatingStateIdSpace` behaviour (the tests prove the
    orderings agree) without the encoding cost. Also supports the
    recovery reset: "After the recovery is complete, the SC is set to the
    Recovery StateId".
    """

    def __init__(self) -> None:
        self.current = 0

    def next(self) -> int:
        self.current += 1
        return self.current

    def reset_to(self, stateid: int) -> None:
        self.current = stateid


def required_bits(register_file_size: int) -> int:
    """StateId width for a register file of the given size (Sec. 3.6):
    ``log2(M)`` plus the saturation bit."""
    if register_file_size < 2:
        raise ValueError("register file too small")
    m = (register_file_size - 1).bit_length()
    return m + 1


def lcs_tree_depth(num_logical_regs: int) -> int:
    """Depth of the binary comparator tree computing the LCS
    (Sec. 3.2.2: 32 SCTs -> a five-level tree)."""
    if num_logical_regs < 1:
        raise ValueError("need at least one logical register")
    return max(1, (num_logical_regs - 1).bit_length())
