"""The Multi-State Processor: StateIds, SCTs, LCS, RelIQ, the core."""

from repro.core.lcs import LCSUnit
from repro.core.processor import MSPProcessor
from repro.core.reliq import RelIQMatrix
from repro.core.sct import RegisterBank
from repro.core.stateid import (
    SaturatingStateIdSpace,
    StateIdAllocator,
    lcs_tree_depth,
    required_bits,
)

__all__ = [
    "LCSUnit",
    "MSPProcessor",
    "RegisterBank",
    "RelIQMatrix",
    "SaturatingStateIdSpace",
    "StateIdAllocator",
    "lcs_tree_depth",
    "required_bits",
]
