"""RelIQ use-tracking matrix (Secs. 3.4, 5.1) — reference model.

The hardware tracks register consumption with a bit matrix: one bit of
storage per physical register per instruction-queue entry, 3 write ports,
no read ports — each bit's output is permanently wired into the OR gate
that generates the per-register ``RelIQ`` signal. Renaming a source sets
the dependent's bit; issuing the dependent clears it; a recovery clears
whole columns for the cancelled instructions.

The simulator's hot path keeps the OR-reduction as a per-entry *counter*
(:meth:`repro.core.sct.RegisterBank.add_use` / ``consume``). This module
implements the actual bit matrix so tests can prove the counter is
exactly the population count of a RelIQ row (see
``tests/core/test_reliq.py``), and so the structure's port/area costs can
be reasoned about in :mod:`repro.power`.
"""

from __future__ import annotations

from typing import Dict, Set


class RelIQMatrix:
    """Explicit use-bit matrix for one bank (sub-matrix per SCT)."""

    def __init__(self, iq_size: int) -> None:
        self.iq_size = iq_size
        # row per physical-register entry: set of IQ slots with bit set.
        self._rows: Dict[int, Set[int]] = {}

    def set_use(self, entry: int, iq_slot: int) -> None:
        """Renaming wrote a source mapping: dependent ``iq_slot`` will
        consume physical-register ``entry``."""
        if not 0 <= iq_slot < self.iq_size:
            raise ValueError(f"IQ slot out of range: {iq_slot}")
        self._rows.setdefault(entry, set()).add(iq_slot)

    def clear_use(self, entry: int, iq_slot: int) -> None:
        """The dependent issued and read its operand."""
        row = self._rows.get(entry)
        if not row or iq_slot not in row:
            raise AssertionError(
                f"clearing unset use bit ({entry}, {iq_slot})")
        row.discard(iq_slot)
        if not row:
            del self._rows[entry]

    def clear_column(self, iq_slot: int) -> int:
        """Recovery: clear the cancelled instruction's bits in every row
        (Sec. 3.4: "on branch misprediction or exception recovery all
        bits in a column ... are reset"). Returns bits cleared."""
        cleared = 0
        empty = []
        for entry, row in self._rows.items():
            if iq_slot in row:
                row.discard(iq_slot)
                cleared += 1
                if not row:
                    empty.append(entry)
        for entry in empty:
            del self._rows[entry]
        return cleared

    def reliq(self, entry: int) -> bool:
        """The OR output: does ``entry`` still have outstanding uses?"""
        return bool(self._rows.get(entry))

    def use_count(self, entry: int) -> int:
        """Population count of the row — what the hot path's counter
        tracks."""
        return len(self._rows.get(entry, ()))

    def release_entry(self, entry: int) -> None:
        """The physical register was released; drop its row."""
        self._rows.pop(entry, None)

    @property
    def storage_bits(self) -> int:
        """Architected storage: one bit per (entry, IQ slot) pair is the
        hardware cost; live set size is the simulation cost."""
        return sum(len(row) for row in self._rows.values())
