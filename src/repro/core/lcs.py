"""Last Committed StateId (LCS) unit (Sec. 3.2.2).

Every cycle the global control computes ``LCS = min over banks of
StateId[RelP]`` (banks whose RelP entry is quiescent are excluded; if all
banks are quiescent the whole window is committable). The hardware is a
binary tree of comparators — five levels for 32 SCTs — and the paper
notes the computation can be pipelined: "even a 4-cycle LCS computation
degrades performance by less than 1%". ``LCSUnit`` models that
propagation delay with a shift pipe; the n-SP uses 1 cycle and the ideal
MSP 0 (Table I).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional


class LCSUnit:
    """Pipelined min-reduction over the banks' RelP StateIds."""

    def __init__(self, delay: int = 1) -> None:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = delay
        self._pipe: Deque[int] = deque([0] * delay)
        self._last_input: Optional[int] = None

    def step(self, candidates: Iterable[Optional[int]],
             all_quiescent_value: int) -> int:
        """Feed this cycle's bank candidates; return the *effective* LCS
        (the value that entered the pipe ``delay`` cycles ago).

        ``all_quiescent_value`` is used when every bank is excluded: the
        current SC + 1, meaning every state in flight is committable.
        """
        lcs: Optional[int] = None
        for candidate in candidates:
            if candidate is not None and (lcs is None or candidate < lcs):
                lcs = candidate
        if lcs is None:
            lcs = all_quiescent_value
        self._last_input = lcs
        if self.delay == 0:
            return lcs
        self._pipe.append(lcs)
        return self._pipe.popleft()

    @property
    def settled(self) -> bool:
        """True when stepping with unchanged bank state is a provable
        no-op: every pipe stage already holds the value last fed, so the
        effective LCS is constant and the shift leaves the pipe
        untouched.  The event scheduler's idle skip requires this before
        eliding MSP cycles in bulk."""
        last = self._last_input
        if last is None:
            return self.delay == 0
        return all(stage == last for stage in self._pipe)

    def flush(self, value: int = 0) -> None:
        """Refill the pipe after a recovery (conservative restart)."""
        self._pipe = deque([value] * self.delay)
        self._last_input = None
