"""Workload trait sheets.

Each synthetic benchmark is calibrated to the published characteristics
of its SPEC CPU2000 namesake that *drive the paper's effects*:

* branch profile — what fraction of branches are data-dependent (hard
  for any predictor), long-pattern (TAGE learns them, gshare partly),
  or loop-structured (easy);
* memory profile — working-set size relative to the 64 KB L1 / 1 MB L2;
* register pressure — whether hot loops reuse a few logical registers
  (the n-SP bank-stall driver of Sec. 4.3) or rotate across many.

Tests assert the measured behaviour lands in the declared bucket, so the
workloads cannot silently drift away from their calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadTraits:
    """Qualitative calibration targets for one workload."""

    name: str
    suite: str                      # "specint" | "specfp"
    description: str
    #: expected TAGE misprediction-rate band (fraction of resolutions).
    mispredict_band: Tuple[float, float]
    #: expected L1D miss-rate band.
    l1d_miss_band: Tuple[float, float]
    #: "tight" hot loops reuse few logical registers (high n-SP stalls),
    #: "generous" rotates destinations (low stalls).
    register_pressure: str
    #: has a Table II hand-modified kernel variant.
    table2_kernel: str = ""


TRAITS: Dict[str, WorkloadTraits] = {}


def _register(traits: WorkloadTraits) -> None:
    TRAITS[traits.name] = traits


# --------------------------------------------------------------------- #
# SPECint-like.
# --------------------------------------------------------------------- #

_register(WorkloadTraits(
    "gzip", "specint",
    "LZ-style byte matching: biased data-dependent branches over an "
    "L1-resident window",
    mispredict_band=(0.01, 0.20), l1d_miss_band=(0.0, 0.08),
    register_pressure="generous"))

_register(WorkloadTraits(
    "vpr", "specint",
    "placement random-walk: near-50/50 data branches, small fp mix",
    mispredict_band=(0.08, 0.40), l1d_miss_band=(0.0, 0.12),
    register_pressure="generous"))

_register(WorkloadTraits(
    "gcc", "specint",
    "many basic blocks, an indirect dispatch over 8 targets, mixed "
    "branch predictability, larger I-footprint",
    mispredict_band=(0.01, 0.25), l1d_miss_band=(0.0, 0.10),
    register_pressure="generous"))

_register(WorkloadTraits(
    "mcf", "specint",
    "pointer chasing over a >L2 region with 50/50 branches on loaded "
    "data: the long-latency, large-window showcase",
    mispredict_band=(0.10, 0.45), l1d_miss_band=(0.10, 0.90),
    register_pressure="generous"))

_register(WorkloadTraits(
    "crafty", "specint",
    "bitboard shifts/masks, highly predictable control, L1-resident",
    mispredict_band=(0.0, 0.08), l1d_miss_band=(0.0, 0.05),
    register_pressure="generous"))

_register(WorkloadTraits(
    "parser", "specint",
    "hash-table probing with chained compares of loaded keys",
    mispredict_band=(0.03, 0.30), l1d_miss_band=(0.0, 0.25),
    register_pressure="generous"))

_register(WorkloadTraits(
    "eon", "specint",
    "int benchmark with fp shading arithmetic and a 4-way indirect "
    "method dispatch",
    mispredict_band=(0.0, 0.20), l1d_miss_band=(0.0, 0.08),
    register_pressure="generous"))

_register(WorkloadTraits(
    "perlbmk", "specint",
    "bytecode interpreter: 16-way indirect dispatch dominates "
    "(mispredicts are BTB-target misses, not direction misses)",
    mispredict_band=(0.0, 0.35), l1d_miss_band=(0.0, 0.08),
    register_pressure="generous"))

_register(WorkloadTraits(
    "gap", "specint",
    "arithmetic over medium arrays with long-period pattern branches "
    "(TAGE learns them; gshare only partly)",
    mispredict_band=(0.0, 0.25), l1d_miss_band=(0.0, 0.10),
    register_pressure="generous"))

_register(WorkloadTraits(
    "vortex", "specint",
    "object copy/update: store-heavy, predictable control",
    mispredict_band=(0.0, 0.10), l1d_miss_band=(0.0, 0.15),
    register_pressure="generous"))

_register(WorkloadTraits(
    "bzip2", "specint",
    "move-to-front coding: early-exit scan loops with geometric trip "
    "counts; hot loop reuses few registers",
    mispredict_band=(0.03, 0.30), l1d_miss_band=(0.0, 0.10),
    register_pressure="tight", table2_kernel="generateMTFValues"))

_register(WorkloadTraits(
    "twolf", "specint",
    "cell-placement cost evaluation: data-dependent branches plus a "
    "tight few-register distance kernel",
    mispredict_band=(0.05, 0.40), l1d_miss_band=(0.0, 0.20),
    register_pressure="tight", table2_kernel="new_dbox_a"))

# --------------------------------------------------------------------- #
# SPECfp-like.
# --------------------------------------------------------------------- #

_register(WorkloadTraits(
    "wupwise", "specfp",
    "dense complex arithmetic, unrolled with rotated fp registers",
    mispredict_band=(0.0, 0.06), l1d_miss_band=(0.0, 0.20),
    register_pressure="generous"))

_register(WorkloadTraits(
    "swim", "specfp",
    "shallow-water stencil (calc3): tight fp accumulator reuse drives "
    "n-SP bank stalls",
    mispredict_band=(0.0, 0.06), l1d_miss_band=(0.0, 0.35),
    register_pressure="tight", table2_kernel="calc3"))

_register(WorkloadTraits(
    "mgrid", "specfp",
    "multigrid residual (resid): 27-point stencil accumulating into "
    "one fp register",
    mispredict_band=(0.0, 0.06), l1d_miss_band=(0.0, 0.35),
    register_pressure="tight", table2_kernel="resid"))

_register(WorkloadTraits(
    "applu", "specfp",
    "blocked SSOR sweeps, moderate register rotation",
    mispredict_band=(0.0, 0.08), l1d_miss_band=(0.0, 0.30),
    register_pressure="generous"))

_register(WorkloadTraits(
    "mesa", "specfp",
    "rasterisation-style int/fp mix, predictable spans",
    mispredict_band=(0.0, 0.16), l1d_miss_band=(0.0, 0.15),
    register_pressure="generous"))

_register(WorkloadTraits(
    "art", "specfp",
    "neural-net scan: streaming fp over >L1 arrays, accumulate chains",
    mispredict_band=(0.0, 0.10), l1d_miss_band=(0.05, 0.60),
    register_pressure="generous"))

_register(WorkloadTraits(
    "equake", "specfp",
    "sparse matrix-vector (smvp): gather loads through an index array "
    "into one tight fp accumulator",
    mispredict_band=(0.0, 0.12), l1d_miss_band=(0.02, 0.50),
    register_pressure="tight", table2_kernel="smvp"))

_register(WorkloadTraits(
    "ammp", "specfp",
    "molecular dynamics: fp divides, generous register use",
    mispredict_band=(0.0, 0.08), l1d_miss_band=(0.0, 0.30),
    register_pressure="generous"))

_register(WorkloadTraits(
    "lucas", "specfp",
    "FFT-style strided passes, rotated fp registers",
    mispredict_band=(0.0, 0.08), l1d_miss_band=(0.0, 0.40),
    register_pressure="generous"))

_register(WorkloadTraits(
    "fma3d", "specfp",
    "finite-element elements with fully rotated registers: the low-"
    "stall fp benchmark where even 8-SP beats CPR",
    mispredict_band=(0.0, 0.08), l1d_miss_band=(0.0, 0.25),
    register_pressure="generous"))
